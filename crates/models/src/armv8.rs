//! ARMv8 AArch64 axiomatic model (simplified from ARM's released cat
//! model — the one the paper §1.2 says made the earlier academic models
//! obsolete and drove a LKMM revision).
//!
//! The model is built around *ordered-before* (`ob`): external
//! observations (`obs`), dependency-ordered-before (`dob`),
//! atomic-ordered-before (`aob`) and barrier-ordered-before (`bob`),
//! required to be acyclic, plus internal per-location coherence and RMW
//! atomicity.
//!
//! The LK barrier mapping on AArch64: `smp_mb` → `dmb ish` (full),
//! `smp_wmb` → `dmb ishst`, `smp_rmb` → `dmb ishld`,
//! `smp_load_acquire` → `LDAR` (acquire, `A`), `smp_store_release` →
//! `STLR` (release, `L`). Dependencies are respected in hardware —
//! including read-read address dependencies, which is why
//! `smp_read_barrier_depends` is a no-op here (only Alpha needs it).
//!
//! `synchronize_rcu` has no hardware meaning; like [`crate::X86Tso`],
//! this model conservatively treats it as a full barrier and RCU litmus
//! tests should use `lkmm-sim`'s operational grace periods instead.

use lkmm_exec::{ConsistencyModel, ExecFacts, Execution};
use lkmm_litmus::FenceKind;
use lkmm_relation::Relation;

/// The simplified ARMv8 axiomatic model.
///
/// # Examples
///
/// ```
/// use lkmm_exec::{check_test, enumerate::EnumOptions, Verdict};
/// use lkmm_models::Armv8;
///
/// // WRC is observable on ARMv8 (Table 5: 13k/5.2G) via load-load
/// // reordering, even though the architecture is multi-copy atomic.
/// let wrc = lkmm_litmus::library::by_name("WRC").unwrap().test();
/// assert_eq!(check_test(&Armv8, &wrc, &EnumOptions::default()).unwrap().verdict,
///            Verdict::Allowed);
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct Armv8;

impl Armv8 {
    /// The `ob` (ordered-before) relation whose acyclicity is the
    /// external-visibility requirement.
    pub fn ob(x: &Execution) -> Relation {
        Self::ob_with(x, &ExecFacts::new(x))
    }

    /// [`Self::ob`] against a pre-computed facts layer.
    pub fn ob_with(x: &Execution, facts: &ExecFacts<'_>) -> Relation {
        let po = &x.po;
        let r = facts.reads();
        let w = facts.writes();
        let m = facts.mem();
        let rfi = facts.rfi();

        // obs: external observations.
        let obs = facts.rfe().union(facts.fre()).union(facts.coe());

        // dob: dependency-ordered-before. ARMv8 respects address, data
        // and control(-to-write) dependencies, dependency-into-rfi
        // forwarding, and address-dependency-then-po to a write.
        let dep = x.addr.union(&x.data);
        let ctrl_w = x.ctrl.intersection(&r.cross(&w));
        let dob = dep
            .union(&ctrl_w)
            .union(&dep.seq(&rfi))
            .union(&x.addr.seq(po).intersection(&r.cross(&w)));

        // aob: atomic-ordered-before.
        let rmw_w = x.rmw.range().as_identity();
        let acq = facts.acquires().as_identity();
        let aob = x.rmw.union(&rmw_w.seq(rfi).seq(&acq));

        // bob: barrier-ordered-before.
        let full = facts
            .fencerel(FenceKind::Mb)
            .union(facts.fencerel(FenceKind::SyncRcu))
            .intersection(&m.cross(m));
        let dmb_st =
            facts.fencerel(FenceKind::Wmb).intersection(&w.cross(w));
        let dmb_ld =
            facts.fencerel(FenceKind::Rmb).intersection(&r.cross(m));
        let rel = facts.releases().as_identity();
        let bob = full
            .union(&dmb_st)
            .union(&dmb_ld)
            .union(&acq.seq(po)) // [A]; po
            .union(&po.seq(&rel)) // po; [L]
            .union(&rel.seq(po).seq(&acq)); // [L]; po; [A]

        obs.union(&dob).union(&aob).union(&bob)
    }
}

impl ConsistencyModel for Armv8 {
    fn name(&self) -> &str {
        "ARMv8"
    }

    fn allows(&self, x: &Execution) -> bool {
        self.allows_with(x, &ExecFacts::new(x))
    }

    fn allows_with(&self, x: &Execution, facts: &ExecFacts<'_>) -> bool {
        // Internal visibility (per-location coherence), then atomicity.
        if !facts.sc_per_loc_ok() || !facts.atomicity_ok() {
            return false;
        }
        // External visibility.
        Self::ob_with(x, facts).is_acyclic()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lkmm_exec::enumerate::{for_each_execution, EnumOptions};
    use lkmm_exec::{check_test, Verdict};
    use lkmm_litmus::library;

    #[test]
    fn table5_armv8_shape() {
        // Observed on ARMv8 in Table 5: WRC (13k), SB (2.4G), MP (104M),
        // PeterZ-No-Synchro (3.6M), RWC (94M). Never observed (and
        // forbidden by the architecture): every fenced/dep-ordered row.
        let expect_allowed = ["WRC", "SB", "MP", "PeterZ-No-Synchro", "RWC", "LB"];
        let expect_forbidden = [
            "LB+ctrl+mb",
            "WRC+po-rel+rmb",
            "SB+mbs",
            "MP+wmb+rmb",
            "PeterZ",
            "RWC+mbs",
            "MP+po-rel+acq",
            "ISA2+po-rel+po-rel+acq",
            "LB+datas",
        ];
        for name in expect_allowed {
            let t = library::by_name(name).unwrap().test();
            let r = check_test(&Armv8, &t, &EnumOptions::default()).unwrap();
            assert_eq!(r.verdict, Verdict::Allowed, "{name}");
        }
        for name in expect_forbidden {
            let t = library::by_name(name).unwrap().test();
            let r = check_test(&Armv8, &t, &EnumOptions::default()).unwrap();
            assert_eq!(r.verdict, Verdict::Forbidden, "{name}");
        }
    }

    #[test]
    fn armv8_respects_plain_address_dependencies() {
        // Unlike the LKMM (which must accommodate Alpha), ARMv8 orders
        // read-read address dependencies without any barrier: a reader
        // chasing a freshly published pointer cannot see stale data.
        let t = lkmm_litmus::parse(
            r"C MP+wmb+addr-chase
{ w=0; y=&z; z=0; }
P0(int *w, int **y) { WRITE_ONCE(*w, 1); smp_wmb(); WRITE_ONCE(*y, &w); }
P1(int **y) { int *r1; int r2; r1 = READ_ONCE(*y); r2 = READ_ONCE(*r1); }
exists (1:r1=&w /\ 1:r2=0)",
        )
        .unwrap();
        let r = check_test(&Armv8, &t, &EnumOptions::default()).unwrap();
        assert_eq!(r.verdict, Verdict::Forbidden);
        // The LKMM allows it without smp_read_barrier_depends — ARMv8 is
        // strictly stronger here (the Alpha accommodation, §3.2.2).
        let l = check_test(&lkmm::Lkmm::new(), &t, &EnumOptions::default()).unwrap();
        assert_eq!(l.verdict, Verdict::Allowed);
    }

    #[test]
    fn armv8_sits_between_sc_and_lkmm() {
        let model = lkmm::Lkmm::new();
        for pt in library::all().iter().filter(|p| !p.name.starts_with("RCU")) {
            let t = pt.test();
            for_each_execution(&t, &EnumOptions::default(), &mut |x| {
                if crate::Sc.allows(x) {
                    assert!(Armv8.allows(x), "{}: SC ⊄ ARMv8", pt.name);
                }
                if Armv8.allows(x) {
                    assert!(model.allows(x), "{}: ARMv8 ⊄ LKMM\n{x}", pt.name);
                }
            })
            .unwrap();
        }
    }
}
