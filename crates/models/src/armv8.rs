//! ARMv8 AArch64 axiomatic model (simplified from ARM's released cat
//! model — the one the paper §1.2 says made the earlier academic models
//! obsolete and drove a LKMM revision).
//!
//! The model is built around *ordered-before* (`ob`): external
//! observations (`obs`), dependency-ordered-before (`dob`),
//! atomic-ordered-before (`aob`) and barrier-ordered-before (`bob`),
//! required to be acyclic, plus internal per-location coherence and RMW
//! atomicity.
//!
//! The LK barrier mapping on AArch64: `smp_mb` → `dmb ish` (full),
//! `smp_wmb` → `dmb ishst`, `smp_rmb` → `dmb ishld`,
//! `smp_load_acquire` → `LDAR` (acquire, `A`), `smp_store_release` →
//! `STLR` (release, `L`). Dependencies are respected in hardware —
//! including read-read address dependencies, which is why
//! `smp_read_barrier_depends` is a no-op here (only Alpha needs it).
//!
//! `synchronize_rcu` has no hardware meaning; like [`crate::X86Tso`],
//! this model conservatively treats it as a full barrier and RCU litmus
//! tests should use `lkmm-sim`'s operational grace periods instead.

use lkmm_exec::{ConsistencyModel, ExecFacts, Execution};
use lkmm_litmus::FenceKind;
use lkmm_relation::{acquire_rel, acquire_set, ArenaRel, Relation};

/// The simplified ARMv8 axiomatic model.
///
/// # Examples
///
/// ```
/// use lkmm_exec::{check_test, enumerate::EnumOptions, Verdict};
/// use lkmm_models::Armv8;
///
/// // WRC is observable on ARMv8 (Table 5: 13k/5.2G) via load-load
/// // reordering, even though the architecture is multi-copy atomic.
/// let wrc = lkmm_litmus::library::by_name("WRC").unwrap().test();
/// assert_eq!(check_test(&Armv8, &wrc, &EnumOptions::default()).unwrap().verdict,
///            Verdict::Allowed);
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct Armv8;

impl Armv8 {
    /// The `ob` (ordered-before) relation whose acyclicity is the
    /// external-visibility requirement.
    pub fn ob(x: &Execution) -> Relation {
        Self::ob_with(x, &ExecFacts::new(x))
    }

    /// [`Self::ob`] against a pre-computed facts layer.
    pub fn ob_with(x: &Execution, facts: &ExecFacts<'_>) -> Relation {
        Self::ob_pooled(x, facts).take()
    }

    /// The `ob` computation itself, accumulated in place into storage
    /// from the facts' arena. Every `[S] ; r ; [T]` shape is a pair of
    /// row restrictions — word-parallel maskings — instead of
    /// identity-relation compositions, and nothing intermediate outlives
    /// the call.
    fn ob_pooled(x: &Execution, facts: &ExecFacts<'_>) -> ArenaRel {
        let pool = facts.arena();
        let n = x.po.universe();
        let po = &x.po;
        let r = facts.reads();
        let w = facts.writes();
        let m = facts.mem();
        let rfi = facts.rfi();
        let mut ob = acquire_rel(pool, n);
        let mut t = acquire_rel(pool, n);

        // obs: external observations.
        ob.copy_from(facts.rfe());
        ob.union_in_place(facts.fre());
        ob.union_in_place(facts.coe());

        // dob: dependency-ordered-before. ARMv8 respects address, data
        // and control(-to-write) dependencies, dependency-into-rfi
        // forwarding, and address-dependency-then-po to a write.
        let mut dep = acquire_rel(pool, n);
        dep.copy_from(&x.addr);
        dep.union_in_place(&x.data);
        ob.union_in_place(&dep);
        t.copy_from(&x.ctrl); // ctrl ∩ (R × W)
        t.restrict_domain_in_place(r);
        t.restrict_range_in_place(w);
        ob.union_in_place(&t);
        dep.seq_into(rfi, &mut t); // dep ; rfi
        ob.union_in_place(&t);
        x.addr.seq_into(po, &mut t); // (addr ; po) ∩ (R × W)
        t.restrict_domain_in_place(r);
        t.restrict_range_in_place(w);
        ob.union_in_place(&t);

        // aob: atomic-ordered-before — rmw ∪ [ran(rmw)] ; rfi ; [A].
        ob.union_in_place(&x.rmw);
        let mut rmw_w = acquire_set(pool, n);
        x.rmw.range_into(&mut rmw_w);
        t.copy_from(rfi);
        t.restrict_domain_in_place(&rmw_w);
        t.restrict_range_in_place(facts.acquires());
        ob.union_in_place(&t);

        // bob: barrier-ordered-before.
        t.copy_from(facts.fencerel(FenceKind::Mb)); // full ∩ (M × M)
        t.union_in_place(facts.fencerel(FenceKind::SyncRcu));
        t.restrict_domain_in_place(m);
        t.restrict_range_in_place(m);
        ob.union_in_place(&t);
        t.copy_from(facts.fencerel(FenceKind::Wmb)); // dmb.st ∩ (W × W)
        t.restrict_domain_in_place(w);
        t.restrict_range_in_place(w);
        ob.union_in_place(&t);
        t.copy_from(facts.fencerel(FenceKind::Rmb)); // dmb.ld ∩ (R × M)
        t.restrict_domain_in_place(r);
        t.restrict_range_in_place(m);
        ob.union_in_place(&t);
        t.copy_from(po); // [A] ; po
        t.restrict_domain_in_place(facts.acquires());
        ob.union_in_place(&t);
        t.copy_from(po); // po ; [L]
        t.restrict_range_in_place(facts.releases());
        ob.union_in_place(&t);
        t.copy_from(po); // [L] ; po ; [A]
        t.restrict_domain_in_place(facts.releases());
        t.restrict_range_in_place(facts.acquires());
        ob.union_in_place(&t);
        ob
    }
}

impl ConsistencyModel for Armv8 {
    fn name(&self) -> &str {
        "ARMv8"
    }

    fn allows(&self, x: &Execution) -> bool {
        self.allows_with(x, &ExecFacts::new(x))
    }

    fn allows_with(&self, x: &Execution, facts: &ExecFacts<'_>) -> bool {
        // Internal visibility (per-location coherence), then atomicity.
        if !facts.sc_per_loc_ok() || !facts.atomicity_ok() {
            return false;
        }
        // External visibility.
        Self::ob_pooled(x, facts).is_acyclic()
    }

    fn eval_cost_hint(&self) -> usize {
        3
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lkmm_exec::enumerate::{for_each_execution, EnumOptions};
    use lkmm_exec::{check_test, Verdict};
    use lkmm_litmus::library;

    #[test]
    fn table5_armv8_shape() {
        // Observed on ARMv8 in Table 5: WRC (13k), SB (2.4G), MP (104M),
        // PeterZ-No-Synchro (3.6M), RWC (94M). Never observed (and
        // forbidden by the architecture): every fenced/dep-ordered row.
        let expect_allowed = ["WRC", "SB", "MP", "PeterZ-No-Synchro", "RWC", "LB"];
        let expect_forbidden = [
            "LB+ctrl+mb",
            "WRC+po-rel+rmb",
            "SB+mbs",
            "MP+wmb+rmb",
            "PeterZ",
            "RWC+mbs",
            "MP+po-rel+acq",
            "ISA2+po-rel+po-rel+acq",
            "LB+datas",
        ];
        for name in expect_allowed {
            let t = library::by_name(name).unwrap().test();
            let r = check_test(&Armv8, &t, &EnumOptions::default()).unwrap();
            assert_eq!(r.verdict, Verdict::Allowed, "{name}");
        }
        for name in expect_forbidden {
            let t = library::by_name(name).unwrap().test();
            let r = check_test(&Armv8, &t, &EnumOptions::default()).unwrap();
            assert_eq!(r.verdict, Verdict::Forbidden, "{name}");
        }
    }

    #[test]
    fn armv8_respects_plain_address_dependencies() {
        // Unlike the LKMM (which must accommodate Alpha), ARMv8 orders
        // read-read address dependencies without any barrier: a reader
        // chasing a freshly published pointer cannot see stale data.
        let t = lkmm_litmus::parse(
            r"C MP+wmb+addr-chase
{ w=0; y=&z; z=0; }
P0(int *w, int **y) { WRITE_ONCE(*w, 1); smp_wmb(); WRITE_ONCE(*y, &w); }
P1(int **y) { int *r1; int r2; r1 = READ_ONCE(*y); r2 = READ_ONCE(*r1); }
exists (1:r1=&w /\ 1:r2=0)",
        )
        .unwrap();
        let r = check_test(&Armv8, &t, &EnumOptions::default()).unwrap();
        assert_eq!(r.verdict, Verdict::Forbidden);
        // The LKMM allows it without smp_read_barrier_depends — ARMv8 is
        // strictly stronger here (the Alpha accommodation, §3.2.2).
        let l = check_test(&lkmm::Lkmm::new(), &t, &EnumOptions::default()).unwrap();
        assert_eq!(l.verdict, Verdict::Allowed);
    }

    #[test]
    fn armv8_sits_between_sc_and_lkmm() {
        let model = lkmm::Lkmm::new();
        for pt in library::all().iter().filter(|p| !p.name.starts_with("RCU")) {
            let t = pt.test();
            for_each_execution(&t, &EnumOptions::default(), &mut |x| {
                if crate::Sc.allows(x) {
                    assert!(Armv8.allows(x), "{}: SC ⊄ ARMv8", pt.name);
                }
                if Armv8.allows(x) {
                    assert!(model.allows(x), "{}: ARMv8 ⊄ LKMM\n{x}", pt.name);
                }
            })
            .unwrap();
        }
    }
}
