//! IBM Power axiomatic model in the "herding cats" style \[12\] — the
//! formalisation lineage the paper's LKMM grew out of (§1.2: "we
//! axiomatised models of IBM Power \[74, 75\] in cat; we modified this
//! formalisation…").
//!
//! Power is the weakest machine the kernel targets: out-of-order,
//! non-multi-copy-atomic, with the `lwsync`/`sync` fence pair. The model
//! has five axioms:
//!
//! * **SC per location**: `acyclic(po-loc ∪ com)`;
//! * **atomicity**: `empty(rmw ∩ (fre ; coe))`;
//! * **no thin air**: `acyclic(hb)` with `hb = ppo ∪ fences ∪ rfe`;
//! * **observation**: `irreflexive(fre ; prop ; hb*)`;
//! * **propagation**: `acyclic(co ∪ prop)`;
//!
//! where `ppo` is the preserved-program-order fixpoint over the
//! `ii/ic/ci/cc` families (Herding Cats, Fig. 18) and `prop` captures the
//! cumulativity of `lwsync`/`sync`.
//!
//! LK mapping on Power: `smp_mb` → `sync`; `smp_wmb`/`smp_rmb` →
//! `lwsync`; `smp_store_release` → `lwsync; st`; `smp_load_acquire` →
//! `ld; lwsync`-strength ordering. `synchronize_rcu` is treated as
//! `sync` (conservative; grace periods live in `lkmm-sim`).

use lkmm_exec::{ConsistencyModel, ExecFacts, Execution};
use lkmm_litmus::FenceKind;
use lkmm_relation::Relation;

/// The Power axiomatic model.
///
/// # Examples
///
/// ```
/// use lkmm_exec::{check_test, enumerate::EnumOptions, Verdict};
/// use lkmm_models::Power;
///
/// // WRC without barriers is the signature non-multi-copy-atomic
/// // behaviour: Power allows it (Table 5: 741k observations).
/// let wrc = lkmm_litmus::library::by_name("WRC").unwrap().test();
/// assert_eq!(check_test(&Power, &wrc, &EnumOptions::default()).unwrap().verdict,
///            Verdict::Allowed);
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct Power;

/// The relations the axioms constrain.
pub struct PowerRelations {
    pub ppo: Relation,
    pub fences: Relation,
    pub hb: Relation,
    pub prop: Relation,
}

impl Power {
    /// Compute `ppo`, the fence relations, `hb` and `prop`.
    pub fn relations(x: &Execution) -> PowerRelations {
        Self::relations_with(x, &ExecFacts::new(x))
    }

    /// [`Self::relations`] against a pre-computed facts layer.
    pub fn relations_with(x: &Execution, facts: &ExecFacts<'_>) -> PowerRelations {
        let n = x.universe();
        let r = facts.reads();
        let w = facts.writes();
        let m = facts.mem();
        let po = &x.po;
        let po_loc = facts.po_loc();
        let rfi = facts.rfi();
        let rfe = facts.rfe();
        let fre = facts.fre();
        let coe = facts.coe();

        // --- ppo fixpoint (Herding Cats, Fig. 18) ---
        let dp = x.addr.union(&x.data);
        let rdw = po_loc.intersection(&fre.seq(&rfe));
        let detour = po_loc.intersection(&coe.seq(&rfe));
        let addr_po = x.addr.seq(po);

        let ii0 = dp.union(&rdw).union(&rfi);
        let ic0 = Relation::empty(n);
        // On Power, acquire loads compile to ld;ctrl;isync (or stronger):
        // model the acquire ordering as ctrl+isync from the acquire read.
        let acq_po = facts.acquires().as_identity().seq(po);
        let ci0 = x.ctrl.union(&acq_po).union(&detour);
        let cc0 = dp.union(&po_loc).union(&x.ctrl).union(&addr_po);

        let mut ii = ii0.clone();
        let mut ic = ic0.clone();
        let mut ci = ci0.clone();
        let mut cc = cc0.clone();
        loop {
            let nii = ii0
                .union(&ci)
                .union(&ic.seq(&ci))
                .union(&ii.seq(&ii));
            let nic = ic0
                .union(&ii)
                .union(&cc)
                .union(&ic.seq(&cc))
                .union(&ii.seq(&ic));
            let nci = ci0.union(&ci.seq(&ii)).union(&cc.seq(&ci));
            let ncc = cc0
                .union(&ci)
                .union(&ci.seq(&ic))
                .union(&cc.seq(&cc));
            if nii == ii && nic == ic && nci == ci && ncc == cc {
                break;
            }
            ii = nii;
            ic = nic;
            ci = nci;
            cc = ncc;
        }
        let ppo = ii
            .intersection(&r.cross(&r))
            .union(&ic.intersection(&r.cross(&w)));

        // --- fences ---
        // sync: smp_mb (and synchronize_rcu, conservatively).
        let ffence = facts
            .fencerel(FenceKind::Mb)
            .union(facts.fencerel(FenceKind::SyncRcu))
            .intersection(&m.cross(m));
        // lwsync: smp_wmb, smp_rmb, and the release-store / acquire-load
        // mappings; lwsync does not order W→R.
        let lw_raw = facts
            .fencerel(FenceKind::Wmb)
            .union(facts.fencerel(FenceKind::Rmb))
            .union(&po.seq(&facts.releases().as_identity()))
            .union(&facts.acquires().as_identity().seq(po));
        let no_wr = r.cross(m).union(&m.cross(w));
        let lwfence = lw_raw.intersection(&no_wr);
        let fences = ffence.union(&lwfence);

        // --- hb, prop ---
        let hb = ppo.union(&fences).union(rfe);
        let hb_star = hb.reflexive_transitive_closure();
        let prop_base = fences.union(&rfe.seq(&fences)).seq(&hb_star);
        let com_star = facts.com().reflexive_transitive_closure();
        let prop = w
            .cross(w)
            .intersection(&prop_base)
            .union(
                &com_star
                    .seq(&prop_base.reflexive_transitive_closure())
                    .seq(&ffence)
                    .seq(&hb_star),
            );
        PowerRelations { ppo, fences, hb, prop }
    }
}

impl ConsistencyModel for Power {
    fn name(&self) -> &str {
        "Power"
    }

    fn allows(&self, x: &Execution) -> bool {
        self.allows_with(x, &ExecFacts::new(x))
    }

    fn allows_with(&self, x: &Execution, facts: &ExecFacts<'_>) -> bool {
        if !facts.sc_per_loc_ok() || !facts.atomicity_ok() {
            return false;
        }
        let r = Self::relations_with(x, facts);
        if !r.hb.is_acyclic() {
            return false;
        }
        // Observation.
        let hb_star = r.hb.reflexive_transitive_closure();
        if !facts.fre().seq(&r.prop).seq(&hb_star).is_irreflexive() {
            return false;
        }
        // Propagation.
        x.co.union(&r.prop).is_acyclic()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lkmm_exec::enumerate::{for_each_execution, EnumOptions};
    use lkmm_exec::{check_test, Verdict};
    use lkmm_litmus::library;

    #[test]
    fn table5_power_shape() {
        // Observed on Power8 in Table 5: WRC (741k), SB (4.4G), MP (57M),
        // PeterZ-No-Synchro (26M), RWC (88M). The fenced rows are
        // architecturally forbidden.
        let expect_allowed =
            ["WRC", "SB", "MP", "PeterZ-No-Synchro", "RWC", "LB", "2+2W", "S", "R"];
        let expect_forbidden = [
            "LB+ctrl+mb",
            "WRC+po-rel+rmb",
            "SB+mbs",
            "MP+wmb+rmb",
            "PeterZ",
            "RWC+mbs",
            "MP+po-rel+acq",
            "LB+datas",
            "R+mbs",
            "Z6.0+mbs",
        ];
        for name in expect_allowed {
            let t = library::by_name(name).unwrap().test();
            let r = check_test(&Power, &t, &EnumOptions::default()).unwrap();
            assert_eq!(r.verdict, Verdict::Allowed, "{name}");
        }
        for name in expect_forbidden {
            let t = library::by_name(name).unwrap().test();
            let r = check_test(&Power, &t, &EnumOptions::default()).unwrap();
            assert_eq!(r.verdict, Verdict::Forbidden, "{name}");
        }
    }

    #[test]
    fn power_allows_non_mca_wrc_but_cumulativity_forbids_the_fenced_one() {
        // WRC+wmb+acq: lwsync on the middle thread is A-cumulative on
        // Power — the famous reason LKMM's wmb is *weaker* than lwsync.
        // Power forbids it; the LKMM allows it (Figure 14).
        let t = library::by_name("WRC+wmb+acq").unwrap().test();
        let p = check_test(&Power, &t, &EnumOptions::default()).unwrap();
        assert_eq!(p.verdict, Verdict::Forbidden, "lwsync is A-cumulative");
        let l = check_test(&lkmm::Lkmm::new(), &t, &EnumOptions::default()).unwrap();
        assert_eq!(l.verdict, Verdict::Allowed, "LKMM wmb is not");
    }

    #[test]
    fn power_sits_between_sc_and_lkmm() {
        let model = lkmm::Lkmm::new();
        for pt in library::all().iter().filter(|p| !p.name.starts_with("RCU")) {
            let t = pt.test();
            for_each_execution(&t, &EnumOptions::default(), &mut |x| {
                if crate::Sc.allows(x) {
                    assert!(Power.allows(x), "{}: SC ⊄ Power", pt.name);
                }
                if Power.allows(x) {
                    assert!(model.allows(x), "{}: Power ⊄ LKMM\n{x}", pt.name);
                }
            })
            .unwrap();
        }
    }

    #[test]
    fn z6_cumulativity_subtlety() {
        // Z6.0+mb+po-rel+acq: Power's lwsync-based release is
        // B-cumulative, so the PROPAGATION axiom forbids the pattern —
        // while the LKMM deliberately keeps release/acquire weaker than
        // any current hardware and allows it (the real LKMM also says
        // "Sometimes" for this shape).
        let t = library::by_name("Z6.0+mb+po-rel+acq").unwrap().test();
        let p = check_test(&Power, &t, &EnumOptions::default()).unwrap();
        assert_eq!(p.verdict, Verdict::Forbidden);
        let l = check_test(&lkmm::Lkmm::new(), &t, &EnumOptions::default()).unwrap();
        assert_eq!(l.verdict, Verdict::Allowed);
    }
}
