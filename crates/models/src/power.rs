//! IBM Power axiomatic model in the "herding cats" style \[12\] — the
//! formalisation lineage the paper's LKMM grew out of (§1.2: "we
//! axiomatised models of IBM Power \[74, 75\] in cat; we modified this
//! formalisation…").
//!
//! Power is the weakest machine the kernel targets: out-of-order,
//! non-multi-copy-atomic, with the `lwsync`/`sync` fence pair. The model
//! has five axioms:
//!
//! * **SC per location**: `acyclic(po-loc ∪ com)`;
//! * **atomicity**: `empty(rmw ∩ (fre ; coe))`;
//! * **no thin air**: `acyclic(hb)` with `hb = ppo ∪ fences ∪ rfe`;
//! * **observation**: `irreflexive(fre ; prop ; hb*)`;
//! * **propagation**: `acyclic(co ∪ prop)`;
//!
//! where `ppo` is the preserved-program-order fixpoint over the
//! `ii/ic/ci/cc` families (Herding Cats, Fig. 18) and `prop` captures the
//! cumulativity of `lwsync`/`sync`.
//!
//! LK mapping on Power: `smp_mb` → `sync`; `smp_wmb`/`smp_rmb` →
//! `lwsync`; `smp_store_release` → `lwsync; st`; `smp_load_acquire` →
//! `ld; lwsync`-strength ordering. `synchronize_rcu` is treated as
//! `sync` (conservative; grace periods live in `lkmm-sim`).

use lkmm_exec::{ConsistencyModel, ExecFacts, Execution};
use lkmm_litmus::FenceKind;
use lkmm_relation::{acquire_rel, scratch_words, with_scratch, ArenaRel, Relation};

/// The Power axiomatic model.
///
/// # Examples
///
/// ```
/// use lkmm_exec::{check_test, enumerate::EnumOptions, Verdict};
/// use lkmm_models::Power;
///
/// // WRC without barriers is the signature non-multi-copy-atomic
/// // behaviour: Power allows it (Table 5: 741k observations).
/// let wrc = lkmm_litmus::library::by_name("WRC").unwrap().test();
/// assert_eq!(check_test(&Power, &wrc, &EnumOptions::default()).unwrap().verdict,
///            Verdict::Allowed);
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct Power;

/// The relations the axioms constrain.
pub struct PowerRelations {
    pub ppo: Relation,
    pub fences: Relation,
    pub hb: Relation,
    pub prop: Relation,
}

/// The pooled counterpart of [`PowerRelations`], carrying `hb*` too so
/// the OBSERVATION axiom never recomputes the closure.
struct PowerRelationsPooled {
    fences: ArenaRel,
    hb: ArenaRel,
    hb_star: ArenaRel,
    prop: ArenaRel,
    ppo: ArenaRel,
}

impl Power {
    /// Compute `ppo`, the fence relations, `hb` and `prop`.
    pub fn relations(x: &Execution) -> PowerRelations {
        Self::relations_with(x, &ExecFacts::new(x))
    }

    /// [`Self::relations`] against a pre-computed facts layer.
    pub fn relations_with(x: &Execution, facts: &ExecFacts<'_>) -> PowerRelations {
        let p = Self::relations_pooled(x, facts);
        PowerRelations {
            ppo: p.ppo.take(),
            fences: p.fences.take(),
            hb: p.hb.take(),
            prop: p.prop.take(),
        }
    }

    /// The relation stack, accumulated in place into storage from the
    /// facts' arena: the `ii/ic/ci/cc` fixpoint swaps two pooled
    /// generations instead of allocating four relations per round, and
    /// every `[S] ; r ; [T]` shape is a pair of row restrictions.
    fn relations_pooled(x: &Execution, facts: &ExecFacts<'_>) -> PowerRelationsPooled {
        let pool = facts.arena();
        let n = x.universe();
        let r = facts.reads();
        let w = facts.writes();
        let m = facts.mem();
        let po = &x.po;
        let po_loc = facts.po_loc();
        let rfi = facts.rfi();
        let rfe = facts.rfe();
        let fre = facts.fre();
        let coe = facts.coe();
        let mut t = acquire_rel(pool, n);
        let mut t2 = acquire_rel(pool, n);

        // --- ppo fixpoint (Herding Cats, Fig. 18) ---
        let mut dp = acquire_rel(pool, n);
        dp.copy_from(&x.addr);
        dp.union_in_place(&x.data);

        // ii0 = dp ∪ rdw ∪ rfi, rdw = po-loc ∩ (fre ; rfe).
        let mut ii0 = acquire_rel(pool, n);
        fre.seq_into(rfe, &mut ii0);
        ii0.intersection_in_place(po_loc);
        ii0.union_in_place(&dp);
        ii0.union_in_place(rfi);
        // detour = po-loc ∩ (coe ; rfe).
        let mut detour = acquire_rel(pool, n);
        coe.seq_into(rfe, &mut detour);
        detour.intersection_in_place(po_loc);
        // On Power, acquire loads compile to ld;ctrl;isync (or stronger):
        // model the acquire ordering as ctrl+isync from the acquire read.
        // ci0 = ctrl ∪ [A] ; po ∪ detour.
        let mut ci0 = acquire_rel(pool, n);
        ci0.copy_from(po);
        ci0.restrict_domain_in_place(facts.acquires());
        ci0.union_in_place(&x.ctrl);
        ci0.union_in_place(&detour);
        // cc0 = dp ∪ po-loc ∪ ctrl ∪ addr ; po.
        let mut cc0 = acquire_rel(pool, n);
        x.addr.seq_into(po, &mut cc0);
        cc0.union_in_place(&dp);
        cc0.union_in_place(po_loc);
        cc0.union_in_place(&x.ctrl);
        // ic0 = ∅ (no separate handle needed — nic starts from ii ∪ cc).

        let mut ii = acquire_rel(pool, n);
        ii.copy_from(&ii0);
        let mut ic = acquire_rel(pool, n);
        let mut ci = acquire_rel(pool, n);
        ci.copy_from(&ci0);
        let mut cc = acquire_rel(pool, n);
        cc.copy_from(&cc0);
        let mut nii = acquire_rel(pool, n);
        let mut nic = acquire_rel(pool, n);
        let mut nci = acquire_rel(pool, n);
        let mut ncc = acquire_rel(pool, n);
        loop {
            nii.copy_from(&ii0);
            nii.union_in_place(&ci);
            ic.seq_into(&ci, &mut t);
            nii.union_in_place(&t);
            ii.seq_into(&ii, &mut t);
            nii.union_in_place(&t);

            nic.copy_from(&ii);
            nic.union_in_place(&cc);
            ic.seq_into(&cc, &mut t);
            nic.union_in_place(&t);
            ii.seq_into(&ic, &mut t);
            nic.union_in_place(&t);

            nci.copy_from(&ci0);
            ci.seq_into(&ii, &mut t);
            nci.union_in_place(&t);
            cc.seq_into(&ci, &mut t);
            nci.union_in_place(&t);

            ncc.copy_from(&cc0);
            ncc.union_in_place(&ci);
            ci.seq_into(&ic, &mut t);
            ncc.union_in_place(&t);
            cc.seq_into(&cc, &mut t);
            ncc.union_in_place(&t);

            let fixed = nii == ii && nic == ic && nci == ci && ncc == cc;
            std::mem::swap(&mut ii, &mut nii);
            std::mem::swap(&mut ic, &mut nic);
            std::mem::swap(&mut ci, &mut nci);
            std::mem::swap(&mut cc, &mut ncc);
            if fixed {
                break;
            }
        }
        // ppo = (ii ∩ R×R) ∪ (ic ∩ R×W).
        let mut ppo = acquire_rel(pool, n);
        ppo.copy_from(&ii);
        ppo.restrict_domain_in_place(r);
        ppo.restrict_range_in_place(r);
        t.copy_from(&ic);
        t.restrict_domain_in_place(r);
        t.restrict_range_in_place(w);
        ppo.union_in_place(&t);

        // --- fences ---
        // sync: smp_mb (and synchronize_rcu, conservatively).
        let mut ffence = acquire_rel(pool, n);
        ffence.copy_from(facts.fencerel(FenceKind::Mb));
        ffence.union_in_place(facts.fencerel(FenceKind::SyncRcu));
        ffence.restrict_domain_in_place(m);
        ffence.restrict_range_in_place(m);
        // lwsync: smp_wmb, smp_rmb, and the release-store / acquire-load
        // mappings; lwsync does not order W→R, so keep
        // lw ∩ (R×M ∪ M×W) = ([R] ; lw ; [M]) ∪ ([M] ; lw ; [W]).
        t.copy_from(facts.fencerel(FenceKind::Wmb));
        t.union_in_place(facts.fencerel(FenceKind::Rmb));
        t2.copy_from(po); // po ; [L]
        t2.restrict_range_in_place(facts.releases());
        t.union_in_place(&t2);
        t2.copy_from(po); // [A] ; po
        t2.restrict_domain_in_place(facts.acquires());
        t.union_in_place(&t2);
        t2.copy_from(&t);
        t2.restrict_domain_in_place(r);
        t2.restrict_range_in_place(m);
        t.restrict_domain_in_place(m);
        t.restrict_range_in_place(w);
        t.union_in_place(&t2);
        let mut fences = acquire_rel(pool, n);
        fences.copy_from(&ffence);
        fences.union_in_place(&t);

        // --- hb, prop ---
        let mut hb = acquire_rel(pool, n);
        hb.copy_from(&ppo);
        hb.union_in_place(&fences);
        hb.union_in_place(rfe);
        let mut hb_star = acquire_rel(pool, n);
        hb_star.copy_from(&hb);
        with_scratch(pool, scratch_words(n), |row| {
            hb_star.transitive_close_with(row);
            hb_star.reflexive_in_place();

            // prop_base = (fences ∪ rfe ; fences) ; hb*.
            rfe.seq_into(&fences, &mut t);
            t.union_in_place(&fences);
            let mut prop_base = acquire_rel(pool, n);
            t.seq_into(&hb_star, &mut prop_base);

            // prop = (W×W ∩ prop_base)
            //      ∪ (com* ; prop_base* ; sync-fence ; hb*).
            let mut prop = acquire_rel(pool, n);
            prop.copy_from(&prop_base);
            prop.restrict_domain_in_place(w);
            prop.restrict_range_in_place(w);
            t.copy_from(&prop_base); // prop_base*
            t.transitive_close_with(row);
            t.reflexive_in_place();
            t2.copy_from(facts.com()); // com*
            t2.transitive_close_with(row);
            t2.reflexive_in_place();
            t2.seq_into(&t, &mut prop_base); // com* ; prop_base*
            prop_base.seq_into(&ffence, &mut t);
            t.seq_into(&hb_star, &mut t2);
            prop.union_in_place(&t2);
            PowerRelationsPooled { fences, hb, hb_star, prop, ppo }
        })
    }
}

impl ConsistencyModel for Power {
    fn name(&self) -> &str {
        "Power"
    }

    fn allows(&self, x: &Execution) -> bool {
        self.allows_with(x, &ExecFacts::new(x))
    }

    fn allows_with(&self, x: &Execution, facts: &ExecFacts<'_>) -> bool {
        if !facts.sc_per_loc_ok() || !facts.atomicity_ok() {
            return false;
        }
        let rel = Self::relations_pooled(x, facts);
        if !rel.hb.is_acyclic() {
            return false;
        }
        let pool = facts.arena();
        let n = x.universe();
        let mut t = acquire_rel(pool, n);
        let mut t2 = acquire_rel(pool, n);
        // Observation: irreflexive(fre ; prop ; hb*), with hb* carried
        // over from the relation stack instead of re-closed here.
        facts.fre().seq_into(&rel.prop, &mut t);
        t.seq_into(&rel.hb_star, &mut t2);
        if !t2.is_irreflexive() {
            return false;
        }
        // Propagation: acyclic(co ∪ prop).
        t.copy_from(&x.co);
        t.union_in_place(&rel.prop);
        t.is_acyclic()
    }

    fn eval_cost_hint(&self) -> usize {
        4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lkmm_exec::enumerate::{for_each_execution, EnumOptions};
    use lkmm_exec::{check_test, Verdict};
    use lkmm_litmus::library;

    #[test]
    fn table5_power_shape() {
        // Observed on Power8 in Table 5: WRC (741k), SB (4.4G), MP (57M),
        // PeterZ-No-Synchro (26M), RWC (88M). The fenced rows are
        // architecturally forbidden.
        let expect_allowed =
            ["WRC", "SB", "MP", "PeterZ-No-Synchro", "RWC", "LB", "2+2W", "S", "R"];
        let expect_forbidden = [
            "LB+ctrl+mb",
            "WRC+po-rel+rmb",
            "SB+mbs",
            "MP+wmb+rmb",
            "PeterZ",
            "RWC+mbs",
            "MP+po-rel+acq",
            "LB+datas",
            "R+mbs",
            "Z6.0+mbs",
        ];
        for name in expect_allowed {
            let t = library::by_name(name).unwrap().test();
            let r = check_test(&Power, &t, &EnumOptions::default()).unwrap();
            assert_eq!(r.verdict, Verdict::Allowed, "{name}");
        }
        for name in expect_forbidden {
            let t = library::by_name(name).unwrap().test();
            let r = check_test(&Power, &t, &EnumOptions::default()).unwrap();
            assert_eq!(r.verdict, Verdict::Forbidden, "{name}");
        }
    }

    #[test]
    fn power_allows_non_mca_wrc_but_cumulativity_forbids_the_fenced_one() {
        // WRC+wmb+acq: lwsync on the middle thread is A-cumulative on
        // Power — the famous reason LKMM's wmb is *weaker* than lwsync.
        // Power forbids it; the LKMM allows it (Figure 14).
        let t = library::by_name("WRC+wmb+acq").unwrap().test();
        let p = check_test(&Power, &t, &EnumOptions::default()).unwrap();
        assert_eq!(p.verdict, Verdict::Forbidden, "lwsync is A-cumulative");
        let l = check_test(&lkmm::Lkmm::new(), &t, &EnumOptions::default()).unwrap();
        assert_eq!(l.verdict, Verdict::Allowed, "LKMM wmb is not");
    }

    #[test]
    fn power_sits_between_sc_and_lkmm() {
        let model = lkmm::Lkmm::new();
        for pt in library::all().iter().filter(|p| !p.name.starts_with("RCU")) {
            let t = pt.test();
            for_each_execution(&t, &EnumOptions::default(), &mut |x| {
                if crate::Sc.allows(x) {
                    assert!(Power.allows(x), "{}: SC ⊄ Power", pt.name);
                }
                if Power.allows(x) {
                    assert!(model.allows(x), "{}: Power ⊄ LKMM\n{x}", pt.name);
                }
            })
            .unwrap();
        }
    }

    #[test]
    fn z6_cumulativity_subtlety() {
        // Z6.0+mb+po-rel+acq: Power's lwsync-based release is
        // B-cumulative, so the PROPAGATION axiom forbids the pattern —
        // while the LKMM deliberately keeps release/acquire weaker than
        // any current hardware and allows it (the real LKMM also says
        // "Sometimes" for this shape).
        let t = library::by_name("Z6.0+mb+po-rel+acq").unwrap().test();
        let p = check_test(&Power, &t, &EnumOptions::default()).unwrap();
        assert_eq!(p.verdict, Verdict::Forbidden);
        let l = check_test(&lkmm::Lkmm::new(), &t, &EnumOptions::default()).unwrap();
        assert_eq!(l.verdict, Verdict::Allowed);
    }
}
