//! x86-TSO in the "herding cats" axiomatic style.

use lkmm_exec::{ConsistencyModel, ExecFacts, Execution};
use lkmm_litmus::FenceKind;
use lkmm_relation::{acquire_rel, acquire_set, Relation};

/// x86-TSO: program order is preserved except write→read; a full fence
/// (`smp_mb`, mapped to `mfence`) and LOCK-prefixed RMWs restore it.
///
/// The LK barrier mapping on x86: `smp_mb` → `mfence`; `smp_wmb`,
/// `smp_rmb`, acquire/release → compiler-only (TSO already orders R→R,
/// R→W and W→W, and its stores/loads have release/acquire semantics).
///
/// `synchronize_rcu` is treated as a full fence — which is *weaker* than
/// its real grace-period semantics; RCU litmus tests should be run
/// against the operational simulator (`lkmm-sim`) instead.
///
/// # Examples
///
/// ```
/// use lkmm_exec::{check_test, enumerate::EnumOptions, Verdict};
/// use lkmm_models::X86Tso;
///
/// // Store buffering is x86's one relaxation...
/// let sb = lkmm_litmus::library::by_name("SB").unwrap().test();
/// assert_eq!(check_test(&X86Tso, &sb, &EnumOptions::default()).unwrap().verdict,
///            Verdict::Allowed);
/// // ...and message passing is not observable.
/// let mp = lkmm_litmus::library::by_name("MP").unwrap().test();
/// assert_eq!(check_test(&X86Tso, &mp, &EnumOptions::default()).unwrap().verdict,
///            Verdict::Forbidden);
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct X86Tso;

impl X86Tso {
    /// The TSO global-happens-before relation whose acyclicity defines the
    /// model (beyond per-location coherence and atomicity).
    pub fn ghb(x: &Execution) -> Relation {
        Self::ghb_with(x, &ExecFacts::new(x))
    }

    /// [`Self::ghb`] against a pre-computed facts layer.
    pub fn ghb_with(x: &Execution, facts: &ExecFacts<'_>) -> Relation {
        Self::ghb_pooled(x, facts).take()
    }

    /// The ghb computation itself. Built with the in-place kernels into
    /// storage drawn from the facts' arena (when one is attached): `po ;
    /// [dom(rmw)]` and `[ran(rmw)] ; po` are row maskings, not
    /// relational compositions, and `po \ (W × R)` never materialises
    /// the product. The pooled handle lets the hot path recycle the
    /// storage on drop.
    fn ghb_pooled(x: &Execution, facts: &ExecFacts<'_>) -> lkmm_relation::ArenaRel {
        let pool = facts.arena();
        let n = x.po.universe();
        let mut ghb = acquire_rel(pool, n);
        ghb.copy_from(&x.po);
        ghb.subtract_cross(facts.writes(), facts.reads()); // ppo_tso
        ghb.union_in_place(facts.fencerel(FenceKind::Mb));
        ghb.union_in_place(facts.fencerel(FenceKind::SyncRcu));
        // LOCK-prefixed RMWs behave like full fences around the
        // operation: po ; [dom(rmw)] and [ran(rmw)] ; po.
        let mut ends = acquire_set(pool, n);
        let mut tmp = acquire_rel(pool, n);
        x.rmw.domain_into(&mut ends);
        tmp.copy_from(&x.po);
        tmp.restrict_range_in_place(&ends);
        ghb.union_in_place(&tmp);
        x.rmw.range_into(&mut ends);
        tmp.copy_from(&x.po);
        tmp.restrict_domain_in_place(&ends);
        ghb.union_in_place(&tmp);
        ghb.union_in_place(facts.rfe());
        ghb.union_in_place(&x.co);
        ghb.union_in_place(facts.fr());
        ghb
    }
}

impl ConsistencyModel for X86Tso {
    fn name(&self) -> &str {
        "x86-TSO"
    }

    fn allows(&self, x: &Execution) -> bool {
        self.allows_with(x, &ExecFacts::new(x))
    }

    fn allows_with(&self, x: &Execution, facts: &ExecFacts<'_>) -> bool {
        // Per-location coherence, then atomicity of RMWs.
        if !facts.sc_per_loc_ok() || !facts.atomicity_ok() {
            return false;
        }
        Self::ghb_pooled(x, facts).is_acyclic()
    }

    fn eval_cost_hint(&self) -> usize {
        2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lkmm_exec::enumerate::{for_each_execution, EnumOptions};
    use lkmm_exec::{check_test, Verdict};
    use lkmm_litmus::library;

    #[test]
    fn table5_x86_shape() {
        // Observed on x86 in Table 5: SB (765M), PeterZ-No-Synchro (351k),
        // RWC (5.6M). Never observed: LB, WRC, MP, and every fenced test.
        let expect_allowed = ["SB", "PeterZ-No-Synchro", "RWC"];
        let expect_forbidden = ["LB", "WRC", "MP", "SB+mbs", "MP+wmb+rmb", "PeterZ", "RWC+mbs"];
        for name in expect_allowed {
            let t = library::by_name(name).unwrap().test();
            let r = check_test(&X86Tso, &t, &EnumOptions::default()).unwrap();
            assert_eq!(r.verdict, Verdict::Allowed, "{name}");
        }
        for name in expect_forbidden {
            let t = library::by_name(name).unwrap().test();
            let r = check_test(&X86Tso, &t, &EnumOptions::default()).unwrap();
            assert_eq!(r.verdict, Verdict::Forbidden, "{name}");
        }
    }

    #[test]
    fn tso_is_stronger_than_lkmm_and_weaker_than_sc() {
        let lkmm = lkmm::Lkmm::new();
        let sc = crate::Sc;
        for pt in library::all().iter().filter(|t| !t.name.starts_with("RCU")) {
            let t = pt.test();
            for_each_execution(&t, &EnumOptions::default(), &mut |x| {
                if sc.allows(x) {
                    assert!(X86Tso.allows(x), "{}: SC ⊆ TSO violated", pt.name);
                }
                if X86Tso.allows(x) {
                    assert!(lkmm.allows(x), "{}: TSO ⊆ LKMM violated\n{x}", pt.name);
                }
            })
            .unwrap();
        }
    }

    #[test]
    fn native_tso_agrees_with_cat_tso() {
        use lkmm_cat::CatModel;
        let cat = CatModel::parse(lkmm_cat::builtin::X86_TSO_CAT).unwrap();
        for pt in library::all().iter().filter(|t| !t.name.starts_with("RCU")) {
            let t = pt.test();
            for_each_execution(&t, &EnumOptions::default(), &mut |x| {
                assert_eq!(cat.allows(x), X86Tso.allows(x), "{}\n{x}", pt.name);
            })
            .unwrap();
        }
    }
}
