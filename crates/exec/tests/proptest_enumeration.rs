//! NOTE: this suite is gated behind the off-by-default `heavy-tests`
//! feature: its `proptest` dev-dependency cannot be fetched in offline
//! builds. Enable with `--features heavy-tests` after restoring the
//! `proptest` dev-dependency in this crate's Cargo.toml.
#![cfg(feature = "heavy-tests")]

//! Property-based tests on candidate-execution enumeration: structural
//! invariants of the witnesses, for randomly chosen generated cycles.

use lkmm_exec::enumerate::{for_each_execution, EnumOptions};
use lkmm_exec::EventKind;
use lkmm_generator::{cycles_up_to, default_alphabet, generate};
use proptest::prelude::*;

fn cycles() -> Vec<Vec<lkmm_generator::Edge>> {
    cycles_up_to(4, &default_alphabet())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn witness_invariants(idx in 0usize..161) {
        let all = cycles();
        let cycle = &all[idx % all.len()];
        let test = generate(cycle).unwrap();
        let mut count = 0usize;
        for_each_execution(&test, &EnumOptions::default(), &mut |x| {
            count += 1;
            let n = x.universe();
            // Every read has exactly one rf source, to the same location
            // and with the same value.
            for e in &x.events {
                if let EventKind::Read { loc, val, .. } = e.kind {
                    let sources: Vec<usize> =
                        (0..n).filter(|&w| x.rf.contains(w, e.id)).collect();
                    assert_eq!(sources.len(), 1, "read {e} has {} sources", sources.len());
                    let w = &x.events[sources[0]];
                    assert_eq!(w.loc(), Some(loc));
                    assert_eq!(w.val(), Some(val));
                    assert!(w.is_write());
                }
            }
            // co is a strict total order per location, rooted at the
            // initialising write.
            for e in &x.events {
                if !e.is_write() { continue; }
                assert!(!x.co.contains(e.id, e.id), "co reflexive at {e}");
                for f in &x.events {
                    if f.id == e.id || !f.is_write() || e.loc() != f.loc() { continue; }
                    assert!(
                        x.co.contains(e.id, f.id) ^ x.co.contains(f.id, e.id),
                        "co not total between {e} and {f}"
                    );
                }
                if e.is_init() {
                    // Init writes are co-minimal.
                    assert!((0..n).all(|w| !x.co.contains(w, e.id)));
                }
            }
            // With pruning on, Scpv holds by construction.
            assert!(x.po_loc().union(&x.com()).is_acyclic());
            // Dependencies originate at reads and stay in-thread po.
            for (a, b) in x.addr.iter().chain(x.ctrl.iter()).chain(x.data.iter()) {
                assert!(x.events[a].is_read());
                assert!(x.po.contains(a, b));
            }
            // rmw pairs are same-location adjacent read/write.
            for (r, w) in x.rmw.iter() {
                assert!(x.events[r].is_read() && x.events[w].is_write());
                assert_eq!(x.events[r].loc(), x.events[w].loc());
                assert!(x.po.contains(r, w));
            }
        }).unwrap();
        prop_assert!(count > 0, "{}: no candidates", test.name);
    }

    #[test]
    fn pruned_is_subset_of_raw(idx in 0usize..161) {
        let all = cycles();
        let cycle = &all[idx % all.len()];
        let test = generate(cycle).unwrap();
        let mut pruned = 0usize;
        let mut raw = 0usize;
        for_each_execution(&test, &EnumOptions::default(), &mut |_| pruned += 1).unwrap();
        for_each_execution(
            &test,
            &EnumOptions { prune_scpv: false, ..Default::default() },
            &mut |_| raw += 1,
        )
        .unwrap();
        prop_assert!(pruned <= raw, "{}: pruned {pruned} > raw {raw}", test.name);
    }

    #[test]
    fn final_values_are_co_maximal(idx in 0usize..161) {
        let all = cycles();
        let cycle = &all[idx % all.len()];
        let test = generate(cycle).unwrap();
        for_each_execution(&test, &EnumOptions::default(), &mut |x| {
            let finals = x.final_values();
            for e in &x.events {
                if let EventKind::Write { loc, val, .. } = e.kind {
                    if x.co.successors(e.id).next().is_none() {
                        assert_eq!(finals[&loc], val);
                    }
                }
            }
        })
        .unwrap();
    }
}
