//! Exhaustive enumeration of candidate executions.
//!
//! Follows herd's recipe: (1) compute the set of values each location can
//! hold (a fixpoint, since written values may be computed from read
//! values); (2) run every thread under every read oracle drawn from those
//! domains; (3) for every combination of thread outcomes, enumerate every
//! reads-from assignment and every coherence order.
//!
//! Step (3) has two interchangeable strategies (see [`EnumStrategy`]).
//! The default *pruned* strategy assigns `rf` read-by-read over an
//! incrementally maintained topological order, derives the coherence
//! edges each assignment forces (the uniproc CoWR/CoRW/CoRR shapes), and
//! abandons a prefix the moment the order becomes cyclic; at the leaves
//! it only branches on write pairs the derived order leaves genuinely
//! unconstrained. The *naive* strategy materialises every `rf`
//! combination and every per-location write permutation and filters at
//! the leaves. Both emit exactly the same candidate sequence; the naive
//! path remains as the differential oracle and for `prune_scpv: false`.

use crate::event::{Event, EventKind, LocId, Val, WriteAnnot};
use crate::execution::Execution;
use crate::thread::{run_thread, ThreadOutcome, ThreadStop};
use lkmm_core::budget::{Budget, BudgetKind, Meter};
use lkmm_core::faultpoint;
use lkmm_litmus::ast::{InitVal, Test};
use lkmm_litmus::FenceKind;
use lkmm_relation::{IncrementalOrder, Relation};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::Arc;

/// Witness-enumeration strategy for step (3).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EnumStrategy {
    /// Consistency-driven enumeration: prune `rf` prefixes via an online
    /// cycle check and saturate forced coherence edges before branching.
    /// Emits exactly the candidates the naive strategy emits, in the same
    /// order, skipping doomed subtrees. Only effective when `prune_scpv`
    /// is on (raw mode has no axiom to drive the pruning).
    #[default]
    Pruned,
    /// Generate-then-judge: full `rf` odometer and per-location write
    /// permutations, filtered at the leaves. Kept as the differential
    /// oracle for the pruned path and for ablation benchmarks.
    Naive,
}

/// Shared pruning counters, updated with relaxed atomics so one instance
/// can be observed across pipeline worker threads.
#[derive(Debug, Default)]
pub struct EnumStats {
    /// Partial `rf` assignments abandoned because `po-loc ∪ rf ∪
    /// derived-co` became cyclic (naive strategy: complete `rf` vectors
    /// rejected by the acyclicity pre-check).
    pub rf_prefixes_pruned: AtomicU64,
    /// Same-location write pairs whose coherence direction was forced by
    /// saturation (pruned strategy only).
    pub co_pairs_saturated: AtomicU64,
    /// Same-location write pairs genuinely unconstrained, i.e. branched on
    /// (pruned strategy only).
    pub co_pairs_branched: AtomicU64,
    /// Coherence-order leaves built and tested (naive: every permutation
    /// product; pruned: only linear extensions of the forced order).
    pub co_leaves_tested: AtomicU64,
    /// Candidates that survived pruning and were emitted downstream.
    pub candidates_emitted: AtomicU64,
}

impl EnumStats {
    /// A plain-value copy of the counters.
    pub fn snapshot(&self) -> EnumSnapshot {
        EnumSnapshot {
            rf_prefixes_pruned: self.rf_prefixes_pruned.load(AtomicOrdering::Relaxed),
            co_pairs_saturated: self.co_pairs_saturated.load(AtomicOrdering::Relaxed),
            co_pairs_branched: self.co_pairs_branched.load(AtomicOrdering::Relaxed),
            co_leaves_tested: self.co_leaves_tested.load(AtomicOrdering::Relaxed),
            candidates_emitted: self.candidates_emitted.load(AtomicOrdering::Relaxed),
        }
    }
}

/// Point-in-time copy of [`EnumStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EnumSnapshot {
    pub rf_prefixes_pruned: u64,
    pub co_pairs_saturated: u64,
    pub co_pairs_branched: u64,
    pub co_leaves_tested: u64,
    pub candidates_emitted: u64,
}

/// Tuning knobs for the enumerator.
#[derive(Clone)]
pub struct EnumOptions {
    /// Discard candidates violating *sequential consistency per variable*
    /// (the `Scpv` axiom, `acyclic(po-loc ∪ com)`) during enumeration.
    /// Every model this workspace implements includes Scpv, so pruning is
    /// sound for them and dramatically cheaper; disable to obtain the raw
    /// candidate set (used by the ablation bench).
    pub prune_scpv: bool,
    /// Hard cap on emitted executions.
    pub max_executions: usize,
    /// Hard cap on value-domain fixpoint rounds (the enumerator already
    /// stops after `#reads + 1` rounds, which is sound: a realisable value
    /// flows through at most one read event per dataflow step, and a
    /// candidate execution has finitely many distinct reads — any value
    /// needing a longer derivation chain cannot be matched by `rf`).
    pub max_domain_iterations: usize,
    /// Cap on oracle branches explored per thread.
    pub max_oracle_branches: usize,
    /// Resource budget governing this enumeration (and, through the
    /// pipeline, the model evaluation fed from it). Unlimited by default.
    ///
    /// Unlike the caps above — which are semantic knobs changing *which*
    /// error a pathological test reports — a budget never changes any
    /// completed verdict, only whether the check runs to completion. It
    /// is therefore excluded from the [`fmt::Debug`] form, which the
    /// verdict store folds into cache keys.
    pub budget: Budget,
    /// Witness-enumeration strategy. Both strategies emit the identical
    /// candidate sequence whenever `prune_scpv` is on, so — like `budget`
    /// — the strategy is excluded from the [`fmt::Debug`] cache-key form:
    /// stores written by either strategy replay byte-identically.
    pub strategy: EnumStrategy,
    /// Optional shared pruning counters; `None` (the default) costs
    /// nothing. Excluded from [`fmt::Debug`] for the same reason as
    /// `budget`: observability cannot change a verdict.
    pub stats: Option<Arc<EnumStats>>,
}

impl Default for EnumOptions {
    fn default() -> Self {
        EnumOptions {
            prune_scpv: true,
            max_executions: 4_000_000,
            max_domain_iterations: 16,
            max_oracle_branches: 200_000,
            budget: Budget::default(),
            strategy: EnumStrategy::default(),
            stats: None,
        }
    }
}

/// Manual impl printing exactly the pre-budget derived form. The verdict
/// store salts cache keys with `{:?}` of these options; keeping the
/// budget — and the later `strategy`/`stats` knobs — out of it
/// (a) preserves every existing store byte-for-byte and (b) is
/// semantically right — budgets cannot change a completed verdict,
/// inconclusive results are never cached, both strategies emit identical
/// candidate sequences, and counters observe without influencing.
impl fmt::Debug for EnumOptions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EnumOptions")
            .field("prune_scpv", &self.prune_scpv)
            .field("max_executions", &self.max_executions)
            .field("max_domain_iterations", &self.max_domain_iterations)
            .field("max_oracle_branches", &self.max_oracle_branches)
            .finish()
    }
}

/// Enumeration failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EnumError {
    /// The test has no threads.
    NoThreads,
    /// More candidate executions than [`EnumOptions::max_executions`].
    TooManyExecutions,
    /// Too many oracle branches in one thread.
    TooManyBranches,
    /// `rcu_read_lock`/`rcu_read_unlock` are not balanced on some path.
    UnbalancedRcu { thread: usize },
    /// The [`EnumOptions::budget`] ran out mid-enumeration.
    BudgetExceeded(BudgetKind),
}

impl fmt::Display for EnumError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnumError::NoThreads => write!(f, "litmus test has no threads"),
            EnumError::TooManyExecutions => write!(f, "too many candidate executions"),
            EnumError::TooManyBranches => write!(f, "too many oracle branches"),
            EnumError::UnbalancedRcu { thread } => {
                write!(f, "unbalanced RCU critical section in thread {thread}")
            }
            EnumError::BudgetExceeded(kind) => write!(f, "{kind}"),
        }
    }
}

impl std::error::Error for EnumError {}

/// Enumerate all candidate executions of `test` into a vector.
///
/// # Errors
///
/// See [`EnumError`]. Litmus-scale tests enumerate in microseconds; the
/// caps exist to keep pathological inputs from running away.
///
/// # Examples
///
/// ```
/// use lkmm_exec::enumerate::{enumerate, EnumOptions};
///
/// let test = lkmm_litmus::library::by_name("MP").unwrap().test();
/// let execs = enumerate(&test, &EnumOptions::default()).unwrap();
/// assert!(!execs.is_empty());
/// ```
pub fn enumerate(test: &Test, opts: &EnumOptions) -> Result<Vec<Execution>, EnumError> {
    let mut out = Vec::new();
    let _ = try_for_each_execution(test, opts, &mut |x| {
        out.push(x);
        ControlFlow::Continue(())
    })?;
    Ok(out)
}

/// Streaming variant of [`enumerate`]: calls `visit` on each candidate
/// execution without retaining them.
///
/// # Errors
///
/// See [`EnumError`].
pub fn for_each_execution(
    test: &Test,
    opts: &EnumOptions,
    visit: &mut dyn FnMut(&Execution),
) -> Result<(), EnumError> {
    try_for_each_execution(test, opts, &mut |x| {
        visit(&x);
        ControlFlow::Continue(())
    })
    .map(drop)
}

/// Abortable streaming enumeration: each candidate is passed to `visit`
/// *by value* (candidates share their pre-witness structure behind `Arc`s,
/// so this is cheap), and the visitor may stop the enumeration early by
/// returning [`ControlFlow::Break`]. This is the primitive the parallel
/// check pipeline feeds from — both the move (no clone per candidate) and
/// the abort (early-exit once a verdict is decided) matter there.
///
/// Returns [`ControlFlow::Break`] if the visitor stopped the run, and
/// [`ControlFlow::Continue`] if the candidate space was exhausted.
///
/// # Errors
///
/// See [`EnumError`].
pub fn try_for_each_execution(
    test: &Test,
    opts: &EnumOptions,
    visit: &mut dyn FnMut(Execution) -> ControlFlow<()>,
) -> Result<ControlFlow<()>, EnumError> {
    if test.threads.is_empty() {
        return Err(EnumError::NoThreads);
    }
    let mut meter = opts.budget.meter();
    let locs = test.shared_locations();
    let init_vals: Vec<Val> = locs
        .iter()
        .map(|name| match test.init.get(name) {
            Some(InitVal::Int(i)) => Val::Int(*i),
            Some(InitVal::Ptr(t)) => {
                Val::Loc(LocId(locs.iter().position(|l| l == t).expect("ptr target exists")))
            }
            None => Val::Int(0),
        })
        .collect();

    // Which threads statically write each location; a location written by
    // no thread other than the reader has deterministic read values.
    let writers = static_writers(test, &locs);

    // --- value-domain fixpoint -------------------------------------------
    let mut domains: Vec<BTreeSet<Val>> =
        init_vals.iter().map(|&v| BTreeSet::from([v])).collect();
    let mut outcomes: Vec<Vec<ThreadOutcome>> = Vec::new();
    let stmt_count: usize = test.threads.iter().map(|t| count_stmts(&t.body)).sum();
    let rounds = (stmt_count + 1).min(opts.max_domain_iterations.max(1));
    for _round in 0..rounds {
        meter.poll_now().map_err(EnumError::BudgetExceeded)?;
        outcomes = test
            .threads
            .iter()
            .enumerate()
            .map(|(tid, t)| {
                explore_thread(&t.body, tid, &locs, &init_vals, &writers, &domains, opts, &mut meter)
            })
            .collect::<Result<_, _>>()?;
        let mut changed = false;
        for outs in &outcomes {
            for out in outs {
                for ev in &out.events {
                    if let EventKind::Write { loc, val, .. } = ev.kind {
                        changed |= domains[loc.0].insert(val);
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // A thread whose `__assume`s filter out every local outcome leaves
    // the test with no candidate executions at all (the exists-condition
    // is then vacuously unsatisfiable) — without this guard the odometer
    // below would index into the empty outcome list.
    if outcomes.iter().any(Vec::is_empty) {
        return Ok(ControlFlow::Continue(()));
    }

    // --- assemble pre-executions and enumerate witnesses -----------------
    let mut emitted = 0usize;
    let mut combo = vec![0usize; test.threads.len()];
    loop {
        meter.poll_now().map_err(EnumError::BudgetExceeded)?;
        let chosen: Vec<&ThreadOutcome> =
            combo.iter().enumerate().map(|(t, &i)| &outcomes[t][i]).collect();
        let pre = build_pre_execution(&locs, &init_vals, &chosen)?;
        if enumerate_witnesses(&pre, opts, &mut emitted, &mut meter, visit)?.is_break() {
            return Ok(ControlFlow::Break(()));
        }

        // Advance the per-thread outcome combination (odometer).
        let mut t = 0;
        loop {
            if t == combo.len() {
                return Ok(ControlFlow::Continue(()));
            }
            combo[t] += 1;
            if combo[t] < outcomes[t].len() {
                break;
            }
            combo[t] = 0;
            t += 1;
        }
    }
}

fn count_stmts(body: &[lkmm_litmus::Stmt]) -> usize {
    body.iter()
        .map(|s| match s {
            lkmm_litmus::Stmt::If { then_, else_, .. } => {
                1 + count_stmts(then_) + count_stmts(else_)
            }
            _ => 1,
        })
        .sum()
}

/// Statically determine, per location, which threads may write it. A
/// thread containing a write through a register pointer may write any
/// location.
fn static_writers(test: &Test, locs: &[String]) -> Vec<BTreeSet<usize>> {
    use lkmm_litmus::ast::{AddrExpr, Stmt};
    let mut writers = vec![BTreeSet::new(); locs.len()];
    fn scan(
        stmts: &[Stmt],
        tid: usize,
        locs: &[String],
        writers: &mut [BTreeSet<usize>],
    ) {
        let mark = |addr: &AddrExpr, locs: &[String], writers: &mut [BTreeSet<usize>]| {
            match addr {
                AddrExpr::Var(name) => {
                    if let Some(i) = locs.iter().position(|l| l == name) {
                        writers[i].insert(tid);
                    }
                }
                // A pointer write may target anything.
                AddrExpr::Reg(_) => {
                    for w in writers.iter_mut() {
                        w.insert(tid);
                    }
                }
            }
        };
        for s in stmts {
            match s {
                Stmt::WriteOnce { addr, .. }
                | Stmt::StoreRelease { addr, .. }
                | Stmt::RcuAssignPointer { addr, .. }
                | Stmt::Xchg { addr, .. }
                | Stmt::CmpXchg { addr, .. }
                | Stmt::AtomicOp { addr, .. }
                | Stmt::SpinLock { addr }
                | Stmt::SpinUnlock { addr } => mark(addr, locs, writers),
                Stmt::If { then_, else_, .. } => {
                    scan(then_, tid, locs, writers);
                    scan(else_, tid, locs, writers);
                }
                // SRCU domain arguments are markers, not writes.
                _ => {}
            }
        }
    }
    for (tid, t) in test.threads.iter().enumerate() {
        scan(&t.body, tid, locs, &mut writers);
    }
    writers
}

#[allow(clippy::too_many_arguments)]
fn explore_thread(
    body: &[lkmm_litmus::Stmt],
    tid: usize,
    locs: &[String],
    init_vals: &[Val],
    writers: &[BTreeSet<usize>],
    domains: &[BTreeSet<Val>],
    opts: &EnumOptions,
    meter: &mut Meter,
) -> Result<Vec<ThreadOutcome>, EnumError> {
    let mut done = Vec::new();
    let mut stack: Vec<Vec<Val>> = vec![Vec::new()];
    let mut branches = 0usize;
    while let Some(oracle) = stack.pop() {
        branches += 1;
        if branches > opts.max_oracle_branches {
            return Err(EnumError::TooManyBranches);
        }
        meter.poll().map_err(EnumError::BudgetExceeded)?;
        match run_thread(body, &oracle, locs) {
            Ok(out) => done.push(out),
            Err(ThreadStop::NeedValue { loc, last_local_write }) => {
                // Determinisation of thread-local reads is justified by
                // per-location coherence, so it only applies when Scpv
                // pruning is on; raw mode keeps the full candidate set.
                let local =
                    opts.prune_scpv && writers[loc.0].iter().all(|&w| w == tid);
                if local {
                    // Deterministic under coherence: the read must return
                    // this thread's latest prior write (or the initial
                    // value).
                    let mut next = oracle.clone();
                    next.push(last_local_write.unwrap_or(init_vals[loc.0]));
                    stack.push(next);
                } else {
                    for &v in &domains[loc.0] {
                        let mut next = oracle.clone();
                        next.push(v);
                        stack.push(next);
                    }
                }
            }
            Err(ThreadStop::Stuck(_)) => {}
        }
    }
    Ok(done)
}

/// Everything fixed before `rf`/`co` are chosen. The shared parts are
/// already behind `Arc`s so every candidate built from this pre-execution
/// clones reference counts, not data.
struct PreExecution {
    locs: Arc<Vec<String>>,
    events: Arc<Vec<Event>>,
    n_threads: usize,
    po: Arc<Relation>,
    addr: Arc<Relation>,
    data: Arc<Relation>,
    ctrl: Arc<Relation>,
    rmw: Arc<Relation>,
    final_regs: Arc<Vec<BTreeMap<String, Val>>>,
    /// Global indices of reads, with (loc, val).
    reads: Vec<(usize, LocId, Val)>,
    /// Global indices of non-init writes per location.
    writes_per_loc: Vec<Vec<usize>>,
    /// Global index of the initialising write per location.
    init_write: Vec<usize>,
    /// `po ∩ loc`, shared with every emitted [`Execution`] (and from
    /// there with the checkers' fact caches) instead of being recomputed
    /// per candidate.
    po_loc: Arc<Relation>,
}

fn build_pre_execution(
    locs: &[String],
    init_vals: &[Val],
    chosen: &[&ThreadOutcome],
) -> Result<PreExecution, EnumError> {
    let n_init = locs.len();
    let total: usize = n_init + chosen.iter().map(|o| o.events.len()).sum::<usize>();
    let mut events = Vec::with_capacity(total);
    for (i, &v) in init_vals.iter().enumerate() {
        events.push(Event {
            id: i,
            thread: None,
            kind: EventKind::Write {
                loc: LocId(i),
                val: v,
                annot: WriteAnnot::Once,
                is_init: true,
            },
        });
    }
    let mut po = Relation::empty(total);
    let mut addr = Relation::empty(total);
    let mut data = Relation::empty(total);
    let mut ctrl = Relation::empty(total);
    let mut rmw = Relation::empty(total);
    let mut final_regs = Vec::with_capacity(chosen.len());
    for (t, out) in chosen.iter().enumerate() {
        let base = events.len();
        // RCU and per-domain SRCU balance checks for this outcome.
        let mut depth = 0i64;
        let mut srcu_depth: std::collections::HashMap<crate::event::LocId, i64> =
            std::collections::HashMap::new();
        for ev in &out.events {
            match ev.kind {
                EventKind::Fence(FenceKind::RcuLock) => depth += 1,
                EventKind::Fence(FenceKind::RcuUnlock) => depth -= 1,
                EventKind::Srcu { kind: crate::event::SrcuKind::Lock, domain } => {
                    *srcu_depth.entry(domain).or_insert(0) += 1;
                }
                EventKind::Srcu { kind: crate::event::SrcuKind::Unlock, domain } => {
                    *srcu_depth.entry(domain).or_insert(0) -= 1;
                }
                _ => {}
            }
            if depth < 0 || srcu_depth.values().any(|&d| d < 0) {
                return Err(EnumError::UnbalancedRcu { thread: t });
            }
        }
        if depth != 0 || srcu_depth.values().any(|&d| d != 0) {
            return Err(EnumError::UnbalancedRcu { thread: t });
        }
        for (i, ev) in out.events.iter().enumerate() {
            events.push(Event { id: base + i, thread: Some(t), kind: ev.kind });
            for j in 0..i {
                po.insert(base + j, base + i);
            }
        }
        for &(a, b) in &out.deps.addr {
            addr.insert(base + a, base + b);
        }
        for &(a, b) in &out.deps.data {
            data.insert(base + a, base + b);
        }
        for &(a, b) in &out.deps.ctrl {
            ctrl.insert(base + a, base + b);
        }
        for &(a, b) in &out.deps.rmw {
            rmw.insert(base + a, base + b);
        }
        final_regs.push(out.final_regs.clone());
    }

    let mut reads = Vec::new();
    let mut writes_per_loc = vec![Vec::new(); locs.len()];
    for e in &events {
        match e.kind {
            EventKind::Read { loc, val, .. } => reads.push((e.id, loc, val)),
            EventKind::Write { loc, is_init: false, .. } => writes_per_loc[loc.0].push(e.id),
            _ => {}
        }
    }
    let init_write = (0..locs.len()).collect();

    // po-loc for pruning.
    let mut po_loc = Relation::empty(total);
    for (a, b) in po.iter() {
        if let (Some(la), Some(lb)) = (events[a].loc(), events[b].loc()) {
            if la == lb {
                po_loc.insert(a, b);
            }
        }
    }

    Ok(PreExecution {
        locs: Arc::new(locs.to_vec()),
        events: Arc::new(events),
        n_threads: chosen.len(),
        po: Arc::new(po),
        addr: Arc::new(addr),
        data: Arc::new(data),
        ctrl: Arc::new(ctrl),
        rmw: Arc::new(rmw),
        final_regs: Arc::new(final_regs),
        reads,
        writes_per_loc,
        init_write,
        po_loc: Arc::new(po_loc),
    })
}

fn enumerate_witnesses(
    pre: &PreExecution,
    opts: &EnumOptions,
    emitted: &mut usize,
    meter: &mut Meter,
    visit: &mut dyn FnMut(Execution) -> ControlFlow<()>,
) -> Result<ControlFlow<()>, EnumError> {
    // Candidate rf sources per read: same location, same value.
    let mut candidates: Vec<Vec<usize>> = Vec::with_capacity(pre.reads.len());
    for &(_, loc, val) in &pre.reads {
        let mut c: Vec<usize> = Vec::new();
        let init = pre.init_write[loc.0];
        if pre.events[init].val() == Some(val) {
            c.push(init);
        }
        for &w in &pre.writes_per_loc[loc.0] {
            if pre.events[w].val() == Some(val) {
                c.push(w);
            }
        }
        if c.is_empty() {
            // This oracle assignment is unrealisable.
            return Ok(ControlFlow::Continue(()));
        }
        candidates.push(c);
    }

    // The pruned strategy represents forced-predecessor sets as one-word
    // bitmasks per location; litmus tests are far below 64 writes per
    // location, but fall back to the (semantically identical) naive path
    // rather than assert if one is not.
    let saturable = opts.prune_scpv
        && opts.strategy == EnumStrategy::Pruned
        && pre.writes_per_loc.iter().all(|ws| ws.len() <= 64);
    if saturable {
        return enumerate_witnesses_pruned(pre, &candidates, opts, emitted, meter, visit);
    }

    // Scratch write orders, permuted in place by enumerate_co; one
    // allocation per pre-execution instead of one per (rf, location).
    let mut orders: Vec<Vec<usize>> = pre.writes_per_loc.clone();
    let mut rf_choice = vec![0usize; pre.reads.len()];
    loop {
        meter.poll().map_err(EnumError::BudgetExceeded)?;
        let mut rf = Relation::empty(pre.events.len());
        for (ri, &(read_id, _, _)) in pre.reads.iter().enumerate() {
            rf.insert(candidates[ri][rf_choice[ri]], read_id);
        }
        // Textbook generate-then-judge: every complete `(rf, co)`
        // candidate is materialised and judged by the leaf-level Scpv
        // filter alone. An rf with cyclic `po-loc ∪ rf` has no acyclic
        // completion, so skipping any pre-check here cannot change the
        // emitted set — it only makes this path an honest baseline (and
        // differential twin) for the pruned strategy.
        if enumerate_co(pre, &rf, opts, &mut orders, emitted, meter, visit)?.is_break() {
            return Ok(ControlFlow::Break(()));
        }

        let mut i = 0;
        loop {
            if i == rf_choice.len() {
                return Ok(ControlFlow::Continue(()));
            }
            rf_choice[i] += 1;
            if rf_choice[i] < candidates[i].len() {
                break;
            }
            rf_choice[i] = 0;
            i += 1;
        }
    }
}

/// Build the coherence order from the per-location write orders, apply
/// the leaf-level Scpv filter if requested, and emit the candidate.
/// Shared by both strategies so metering, caps, faultpoints, and the
/// emission itself stay textually identical.
#[allow(clippy::too_many_arguments)]
fn emit_leaf(
    pre: &PreExecution,
    rf: &Relation,
    opts: &EnumOptions,
    orders: &[Vec<usize>],
    filter_scpv: bool,
    emitted: &mut usize,
    meter: &mut Meter,
    visit: &mut dyn FnMut(Execution) -> ControlFlow<()>,
) -> Result<ControlFlow<()>, EnumError> {
    meter.poll().map_err(EnumError::BudgetExceeded)?;
    if let Some(stats) = &opts.stats {
        stats.co_leaves_tested.fetch_add(1, AtomicOrdering::Relaxed);
    }
    let mut co = Relation::empty(pre.events.len());
    for (l, order) in orders.iter().enumerate() {
        let mut prev = pre.init_write[l];
        for &w in order {
            co.insert(prev, w);
            prev = w;
        }
    }
    co.transitive_close();
    if filter_scpv {
        // acyclic(po-loc ∪ rf ∪ co ∪ fr), built with in-place
        // unions on top of fr = rf⁻¹ ; co.
        let mut com = rf.inverse().seq(&co);
        com.union_in_place(rf);
        com.union_in_place(&co);
        com.union_in_place(&pre.po_loc);
        if !com.is_acyclic() {
            return Ok(ControlFlow::Continue(()));
        }
    } else if opts.prune_scpv {
        // The saturating enumerator reaches a leaf only through a linear
        // extension of the forced coherence order, which the uniproc
        // characterisation guarantees is Scpv-consistent; re-check the
        // theorem in debug builds.
        debug_assert!(
            {
                let mut com = rf.inverse().seq(&co);
                com.union_in_place(rf);
                com.union_in_place(&co);
                com.union_in_place(&pre.po_loc);
                com.is_acyclic()
            },
            "saturated coherence order violates scpv"
        );
    }
    *emitted += 1;
    if *emitted > opts.max_executions {
        return Err(EnumError::TooManyExecutions);
    }
    if faultpoint::should_fail("enum.budget") {
        return Err(EnumError::BudgetExceeded(BudgetKind::Candidates));
    }
    meter.spend_candidate().map_err(EnumError::BudgetExceeded)?;
    if let Some(stats) = &opts.stats {
        stats.candidates_emitted.fetch_add(1, AtomicOrdering::Relaxed);
    }
    let x = Execution {
        locs: Arc::clone(&pre.locs),
        events: Arc::clone(&pre.events),
        n_threads: pre.n_threads,
        po: Arc::clone(&pre.po),
        addr: Arc::clone(&pre.addr),
        data: Arc::clone(&pre.data),
        ctrl: Arc::clone(&pre.ctrl),
        rmw: Arc::clone(&pre.rmw),
        rf: rf.clone(),
        co,
        po_loc: Arc::clone(&pre.po_loc),
        final_regs: Arc::clone(&pre.final_regs),
    };
    Ok(visit(x))
}

fn enumerate_co(
    pre: &PreExecution,
    rf: &Relation,
    opts: &EnumOptions,
    orders: &mut [Vec<usize>],
    emitted: &mut usize,
    meter: &mut Meter,
    visit: &mut dyn FnMut(Execution) -> ControlFlow<()>,
) -> Result<ControlFlow<()>, EnumError> {
    // Per-location write permutations via in-place swap recursion over
    // the shared scratch `orders`; position `k` of location `loc` is
    // being chosen. Each level restores the swap it made, so the scratch
    // is back to its entry state when the call returns.
    #[allow(clippy::too_many_arguments)]
    fn rec(
        pre: &PreExecution,
        rf: &Relation,
        opts: &EnumOptions,
        orders: &mut [Vec<usize>],
        loc: usize,
        k: usize,
        emitted: &mut usize,
        meter: &mut Meter,
        visit: &mut dyn FnMut(Execution) -> ControlFlow<()>,
    ) -> Result<ControlFlow<()>, EnumError> {
        if loc == pre.locs.len() {
            return emit_leaf(pre, rf, opts, orders, opts.prune_scpv, emitted, meter, visit);
        }
        if k == orders[loc].len() {
            return rec(pre, rf, opts, orders, loc + 1, 0, emitted, meter, visit);
        }
        for i in k..orders[loc].len() {
            orders[loc].swap(k, i);
            let flow = rec(pre, rf, opts, orders, loc, k + 1, emitted, meter, visit);
            orders[loc].swap(k, i);
            if flow?.is_break() {
                return Ok(ControlFlow::Break(()));
            }
        }
        Ok(ControlFlow::Continue(()))
    }
    rec(pre, rf, opts, orders, 0, 0, emitted, meter, visit)
}

// --- pruned strategy -----------------------------------------------------

/// Mutable state threaded through the pruned enumeration of one
/// pre-execution. Allocated once; the recursion mutates and restores it.
struct PrunedState {
    /// Chosen `rf` source per read index; `usize::MAX` = unassigned.
    srcs: Vec<usize>,
    /// `po-loc ∪ rf ∪ init-co ∪ derived-co`, maintained incrementally.
    order: IncrementalOrder,
    /// Scratch per-location write orders for the co phase (same shape as
    /// the naive path's scratch, so `emit_leaf` is shared).
    orders: Vec<Vec<usize>>,
    /// Per location: bitmask of forced direct coherence predecessors per
    /// canonical write position, recomputed at each complete `rf`.
    preds: Vec<Vec<u64>>,
    /// Canonical position of each write event inside its location's
    /// write list (indexed by global event id).
    pos_in_loc: Vec<usize>,
    /// For each read index: other read indices on the same location.
    peers: Vec<Vec<usize>>,
}

/// Consistency-driven witness enumeration. Reads are assigned from the
/// highest index down so the lowest index varies fastest — the exact
/// nesting of the naive odometer — and every coherence edge a partial
/// assignment forces (the uniproc CoWW/CoWR/CoRW/CoRR shapes) is
/// inserted into an incrementally checked order immediately. A rejected
/// insertion means every completion of the prefix dies at the naive
/// leaf filter, so the whole subtree is skipped without changing the
/// emitted sequence.
fn enumerate_witnesses_pruned(
    pre: &PreExecution,
    candidates: &[Vec<usize>],
    opts: &EnumOptions,
    emitted: &mut usize,
    meter: &mut Meter,
    visit: &mut dyn FnMut(Execution) -> ControlFlow<()>,
) -> Result<ControlFlow<()>, EnumError> {
    let n = pre.events.len();
    let mut order = IncrementalOrder::new(n);
    for (a, b) in pre.po_loc.iter() {
        if !order.add_edge(a, b) {
            // po is a strict order, so po-loc cannot be cyclic; be
            // defensive anyway — a cyclic base order admits no witness.
            return Ok(ControlFlow::Continue(()));
        }
    }
    for (l, ws) in pre.writes_per_loc.iter().enumerate() {
        for &w in ws {
            // The initialising write is coherence-first at its location.
            if !order.add_edge(pre.init_write[l], w) {
                return Ok(ControlFlow::Continue(()));
            }
        }
    }

    let nr = pre.reads.len();
    let mut peers: Vec<Vec<usize>> = vec![Vec::new(); nr];
    for i in 0..nr {
        for j in 0..nr {
            if i != j && pre.reads[i].1 == pre.reads[j].1 {
                peers[i].push(j);
            }
        }
    }
    let mut pos_in_loc = vec![0usize; n];
    for ws in &pre.writes_per_loc {
        for (p, &w) in ws.iter().enumerate() {
            pos_in_loc[w] = p;
        }
    }
    let mut st = PrunedState {
        srcs: vec![usize::MAX; nr],
        order,
        orders: pre.writes_per_loc.clone(),
        preds: pre.writes_per_loc.iter().map(|ws| vec![0u64; ws.len()]).collect(),
        pos_in_loc,
        peers,
    };
    if nr == 0 {
        let rf = Relation::empty(n);
        return co_phase(pre, &rf, opts, &mut st, emitted, meter, visit);
    }
    rf_rec(pre, candidates, opts, &mut st, nr - 1, emitted, meter, visit)
}

/// Insert the `rf` edge for read `i` ← write `w` plus every coherence
/// edge the assignment forces, into `st.order`. Returns `false` (with
/// the order in an arbitrary but undoable state — the caller rewinds to
/// its checkpoint) if any insertion closes a cycle:
///
/// - `w → read`: the `rf` edge itself; rejects CoRW1 (`rf ∩ po-loc⁻¹`)
///   against the seeded po-loc edges.
/// - CoWR: a different write po-loc-before the read must be
///   coherence-before the read's source.
/// - CoRW2: a write po-loc-after the read must be coherence-after the
///   read's source.
/// - CoRR: reads of the same location ordered by po observe
///   coherence-ordered sources (applied against already-assigned peers;
///   later assignments re-derive the mirror cases).
///
/// CoWW needs no rule here: same-location writes are po-loc-ordered in
/// the seeded base order already.
fn assign(pre: &PreExecution, st: &mut PrunedState, i: usize, w: usize) -> bool {
    let (rid, loc, _) = pre.reads[i];
    if !st.order.add_edge(w, rid) {
        return false;
    }
    for wi in 0..pre.writes_per_loc[loc.0].len() {
        let w2 = pre.writes_per_loc[loc.0][wi];
        if w2 == w {
            continue;
        }
        if pre.po_loc.contains(w2, rid) && !st.order.add_edge(w2, w) {
            return false;
        }
        if pre.po_loc.contains(rid, w2) && !st.order.add_edge(w, w2) {
            return false;
        }
    }
    for pi in 0..st.peers[i].len() {
        let j = st.peers[i][pi];
        let w2 = st.srcs[j];
        if w2 == usize::MAX || w2 == w {
            continue;
        }
        let rid2 = pre.reads[j].0;
        if pre.po_loc.contains(rid2, rid) && !st.order.add_edge(w2, w) {
            return false;
        }
        if pre.po_loc.contains(rid, rid2) && !st.order.add_edge(w, w2) {
            return false;
        }
    }
    true
}

#[allow(clippy::too_many_arguments)]
fn rf_rec(
    pre: &PreExecution,
    candidates: &[Vec<usize>],
    opts: &EnumOptions,
    st: &mut PrunedState,
    i: usize,
    emitted: &mut usize,
    meter: &mut Meter,
    visit: &mut dyn FnMut(Execution) -> ControlFlow<()>,
) -> Result<ControlFlow<()>, EnumError> {
    meter.poll().map_err(EnumError::BudgetExceeded)?;
    for ci in 0..candidates[i].len() {
        let w = candidates[i][ci];
        let mark = st.order.checkpoint();
        if assign(pre, st, i, w) {
            st.srcs[i] = w;
            let flow = if i == 0 {
                rf_leaf(pre, opts, st, emitted, meter, visit)
            } else {
                rf_rec(pre, candidates, opts, st, i - 1, emitted, meter, visit)
            };
            st.srcs[i] = usize::MAX;
            st.order.undo_to(mark);
            if flow?.is_break() {
                return Ok(ControlFlow::Break(()));
            }
        } else {
            st.order.undo_to(mark);
            if let Some(stats) = &opts.stats {
                stats.rf_prefixes_pruned.fetch_add(1, AtomicOrdering::Relaxed);
            }
        }
    }
    Ok(ControlFlow::Continue(()))
}

fn rf_leaf(
    pre: &PreExecution,
    opts: &EnumOptions,
    st: &mut PrunedState,
    emitted: &mut usize,
    meter: &mut Meter,
    visit: &mut dyn FnMut(Execution) -> ControlFlow<()>,
) -> Result<ControlFlow<()>, EnumError> {
    let mut rf = Relation::empty(pre.events.len());
    for (i, &(rid, _, _)) in pre.reads.iter().enumerate() {
        rf.insert(st.srcs[i], rid);
    }
    co_phase(pre, &rf, opts, st, emitted, meter, visit)
}

/// Enumerate exactly the linear extensions of the forced coherence
/// order at each location, in the same relative order the naive
/// permutation recursion visits them.
fn co_phase(
    pre: &PreExecution,
    rf: &Relation,
    opts: &EnumOptions,
    st: &mut PrunedState,
    emitted: &mut usize,
    meter: &mut Meter,
    visit: &mut dyn FnMut(Execution) -> ControlFlow<()>,
) -> Result<ControlFlow<()>, EnumError> {
    let PrunedState { order, orders, preds, pos_in_loc, .. } = st;
    // Read the forced write-write edges off the incremental order into
    // per-location direct-predecessor masks over canonical positions.
    // Transitive consequences need no closure here: gating every slot on
    // its direct predecessors already yields exactly the linear
    // extensions of the transitive relation.
    for (l, ws) in pre.writes_per_loc.iter().enumerate() {
        let pl = &mut preds[l];
        for m in pl.iter_mut() {
            *m = 0;
        }
        for (pb, &b) in ws.iter().enumerate() {
            for (pa, &a) in ws.iter().enumerate() {
                if pa != pb && order.contains(a, b) {
                    pl[pb] |= 1 << pa;
                }
            }
        }
    }
    if let Some(stats) = &opts.stats {
        // Classify unordered write pairs: saturated (direction forced,
        // possibly transitively) vs genuinely branched.
        let mut saturated = 0u64;
        let mut branched = 0u64;
        for pl in preds.iter() {
            let w = pl.len();
            let mut reach = pl.clone();
            loop {
                let mut changed = false;
                for j in 0..w {
                    let mut m = reach[j];
                    let mut bits = reach[j];
                    while bits != 0 {
                        let i = bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        m |= reach[i];
                    }
                    if m != reach[j] {
                        reach[j] = m;
                        changed = true;
                    }
                }
                if !changed {
                    break;
                }
            }
            for j in 0..w {
                for i in 0..j {
                    if reach[j] & (1 << i) != 0 || reach[i] & (1 << j) != 0 {
                        saturated += 1;
                    } else {
                        branched += 1;
                    }
                }
            }
        }
        stats.co_pairs_saturated.fetch_add(saturated, AtomicOrdering::Relaxed);
        stats.co_pairs_branched.fetch_add(branched, AtomicOrdering::Relaxed);
    }
    co_rec(pre, rf, opts, orders, preds, pos_in_loc, 0, 0, 0, emitted, meter, visit)
}

#[allow(clippy::too_many_arguments)]
fn co_rec(
    pre: &PreExecution,
    rf: &Relation,
    opts: &EnumOptions,
    orders: &mut [Vec<usize>],
    preds: &[Vec<u64>],
    pos_in_loc: &[usize],
    loc: usize,
    k: usize,
    placed: u64,
    emitted: &mut usize,
    meter: &mut Meter,
    visit: &mut dyn FnMut(Execution) -> ControlFlow<()>,
) -> Result<ControlFlow<()>, EnumError> {
    if loc == pre.locs.len() {
        return emit_leaf(pre, rf, opts, orders, false, emitted, meter, visit);
    }
    if k == orders[loc].len() {
        return co_rec(
            pre, rf, opts, orders, preds, pos_in_loc, loc + 1, 0, 0, emitted, meter, visit,
        );
    }
    for i in k..orders[loc].len() {
        let p = pos_in_loc[orders[loc][i]];
        // A write may take the next coherence slot only once every write
        // forced before it is already placed; skipping the subtree
        // otherwise discards only permutations the naive leaf filter
        // would reject.
        if preds[loc][p] & !placed != 0 {
            continue;
        }
        orders[loc].swap(k, i);
        let flow = co_rec(
            pre,
            rf,
            opts,
            orders,
            preds,
            pos_in_loc,
            loc,
            k + 1,
            placed | (1 << p),
            emitted,
            meter,
            visit,
        );
        orders[loc].swap(k, i);
        if flow?.is_break() {
            return Ok(ControlFlow::Break(()));
        }
    }
    Ok(ControlFlow::Continue(()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lkmm_litmus::library;
    use lkmm_litmus::parse;

    fn count(name: &str) -> usize {
        let test = library::by_name(name).unwrap().test();
        enumerate(&test, &EnumOptions::default()).unwrap().len()
    }

    #[test]
    fn sb_has_coherent_executions() {
        let test = library::by_name("SB").unwrap().test();
        let execs = enumerate(&test, &EnumOptions::default()).unwrap();
        // Each read sees 0 (init) or 1 (other thread's write): with Scpv
        // pruning, a read of its own thread's location is impossible here
        // (different locations), so 2 × 2 = 4 executions.
        assert_eq!(execs.len(), 4);
        // The SB weak outcome (both read 0) must be among them.
        assert!(execs.iter().any(|x| x.satisfies_prop(&test.condition.prop)));
    }

    #[test]
    fn mp_final_values_and_prop() {
        let test = library::by_name("MP").unwrap().test();
        let execs = enumerate(&test, &EnumOptions::default()).unwrap();
        // All executions end with x=1, y=1 (single writer).
        for x in &execs {
            let f = x.final_values();
            assert_eq!(f[&x.loc_id("x").unwrap()], Val::Int(1));
        }
        // The MP weak outcome exists among raw candidates.
        assert!(execs.iter().any(|x| x.satisfies_prop(&test.condition.prop)));
    }

    #[test]
    fn scpv_prune_removes_po_loc_violations() {
        // A thread writing then reading the same location must read its own
        // write or a later one — never the initial value.
        let t = parse(
            "C t\n{ x=0; }\n\
             P0(int *x) { int r; WRITE_ONCE(*x, 1); r = READ_ONCE(*x); }\n\
             exists (0:r=0)",
        )
        .unwrap();
        let execs = enumerate(&t, &EnumOptions::default()).unwrap();
        assert!(!execs.is_empty());
        assert!(execs.iter().all(|x| !x.satisfies_prop(&t.condition.prop)));
        // Without pruning the incoherent candidate exists.
        let raw = enumerate(&t, &EnumOptions { prune_scpv: false, ..Default::default() })
            .unwrap();
        assert!(raw.iter().any(|x| x.satisfies_prop(&t.condition.prop)));
        assert!(raw.len() > execs.len());
    }

    #[test]
    fn control_flow_branches_enumerate_both_paths() {
        let t = library::by_name("LB+ctrl+mb").unwrap().test();
        let execs = enumerate(&t, &EnumOptions::default()).unwrap();
        // Some executions take the branch (write y), some do not.
        let with_branch = execs.iter().any(|x| {
            x.events.iter().any(|e| {
                e.thread == Some(0)
                    && matches!(e.kind, EventKind::Write { is_init: false, .. })
            })
        });
        let without_branch = execs.iter().any(|x| {
            !x.events.iter().any(|e| {
                e.thread == Some(0)
                    && matches!(e.kind, EventKind::Write { is_init: false, .. })
            })
        });
        assert!(with_branch && without_branch);
    }

    #[test]
    fn pointer_chase_has_address_dependency() {
        let t = library::by_name("MP+wmb+addr").unwrap().test();
        let execs = enumerate(&t, &EnumOptions::default()).unwrap();
        assert!(execs.iter().all(|x| !x.addr.is_empty() || x.events.len() < 8));
        assert!(execs.iter().any(|x| x.satisfies_prop(&t.condition.prop)));
    }

    #[test]
    fn rcu_crit_matches_lock_unlock() {
        let t = library::by_name("RCU-MP").unwrap().test();
        let execs = enumerate(&t, &EnumOptions::default()).unwrap();
        let x = &execs[0];
        let crit = x.crit();
        assert_eq!(crit.len(), 1);
        let (l, u) = crit.iter().next().unwrap();
        assert!(x.events[l].is_fence(FenceKind::RcuLock));
        assert!(x.events[u].is_fence(FenceKind::RcuUnlock));
        assert!(x.po.contains(l, u));
    }

    #[test]
    fn unbalanced_rcu_is_an_error() {
        let t = parse(
            "C t\n{ x=0; }\nP0(int *x) { rcu_read_lock(); WRITE_ONCE(*x, 1); }\nexists (x=1)",
        )
        .unwrap();
        assert_eq!(
            enumerate(&t, &EnumOptions::default()).unwrap_err(),
            EnumError::UnbalancedRcu { thread: 0 }
        );
    }

    #[test]
    fn value_domain_fixpoint_propagates_computed_values() {
        // P0 writes x+1 computed from a read of x written by P1: the value
        // 2 must flow into x's domain so P1's read can observe it.
        let t = parse(
            "C t\n{ x=0; }\n\
             P0(int *x) { int r; r = READ_ONCE(*x); WRITE_ONCE(*x, r + 1); }\n\
             P1(int *x) { int s; s = READ_ONCE(*x); }\n\
             exists (1:s=2)",
        )
        .unwrap();
        let execs = enumerate(&t, &EnumOptions::default()).unwrap();
        // 1:s=2 requires P0 to read 1 — but nothing writes 1 except P0
        // itself computing 0+1. So s=2 is impossible, s=1 is possible.
        assert!(!execs.iter().any(|x| x.satisfies_prop(&t.condition.prop)));
        let t2 = parse(
            "C t\n{ x=0; }\n\
             P0(int *x) { int r; r = READ_ONCE(*x); WRITE_ONCE(*x, r + 1); }\n\
             P1(int *x) { int s; s = READ_ONCE(*x); }\n\
             exists (1:s=1)",
        )
        .unwrap();
        let execs2 = enumerate(&t2, &EnumOptions::default()).unwrap();
        assert!(execs2.iter().any(|x| x.satisfies_prop(&t2.condition.prop)));
    }

    #[test]
    fn table5_tests_all_enumerate() {
        for pt in library::table5() {
            let t = pt.test();
            let execs = enumerate(&t, &EnumOptions::default())
                .unwrap_or_else(|e| panic!("{}: {e}", pt.name));
            assert!(!execs.is_empty(), "{} has no executions", pt.name);
        }
    }

    #[test]
    fn execution_counts_are_stable() {
        // Pin down the candidate counts so enumerator changes are noticed.
        assert_eq!(count("SB"), 4);
        assert_eq!(count("MP"), 4);
        assert_eq!(count("LB"), 4);
    }
}
