//! Exhaustive enumeration of candidate executions.
//!
//! Follows herd's recipe: (1) compute the set of values each location can
//! hold (a fixpoint, since written values may be computed from read
//! values); (2) run every thread under every read oracle drawn from those
//! domains; (3) for every combination of thread outcomes, enumerate every
//! reads-from assignment and every coherence order.

use crate::event::{Event, EventKind, LocId, Val, WriteAnnot};
use crate::execution::Execution;
use crate::thread::{run_thread, ThreadOutcome, ThreadStop};
use lkmm_core::budget::{Budget, BudgetKind, Meter};
use lkmm_core::faultpoint;
use lkmm_litmus::ast::{InitVal, Test};
use lkmm_litmus::FenceKind;
use lkmm_relation::Relation;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::ops::ControlFlow;
use std::sync::Arc;

/// Tuning knobs for the enumerator.
#[derive(Clone)]
pub struct EnumOptions {
    /// Discard candidates violating *sequential consistency per variable*
    /// (the `Scpv` axiom, `acyclic(po-loc ∪ com)`) during enumeration.
    /// Every model this workspace implements includes Scpv, so pruning is
    /// sound for them and dramatically cheaper; disable to obtain the raw
    /// candidate set (used by the ablation bench).
    pub prune_scpv: bool,
    /// Hard cap on emitted executions.
    pub max_executions: usize,
    /// Hard cap on value-domain fixpoint rounds (the enumerator already
    /// stops after `#reads + 1` rounds, which is sound: a realisable value
    /// flows through at most one read event per dataflow step, and a
    /// candidate execution has finitely many distinct reads — any value
    /// needing a longer derivation chain cannot be matched by `rf`).
    pub max_domain_iterations: usize,
    /// Cap on oracle branches explored per thread.
    pub max_oracle_branches: usize,
    /// Resource budget governing this enumeration (and, through the
    /// pipeline, the model evaluation fed from it). Unlimited by default.
    ///
    /// Unlike the caps above — which are semantic knobs changing *which*
    /// error a pathological test reports — a budget never changes any
    /// completed verdict, only whether the check runs to completion. It
    /// is therefore excluded from the [`fmt::Debug`] form, which the
    /// verdict store folds into cache keys.
    pub budget: Budget,
}

impl Default for EnumOptions {
    fn default() -> Self {
        EnumOptions {
            prune_scpv: true,
            max_executions: 4_000_000,
            max_domain_iterations: 16,
            max_oracle_branches: 200_000,
            budget: Budget::default(),
        }
    }
}

/// Manual impl printing exactly the pre-budget derived form. The verdict
/// store salts cache keys with `{:?}` of these options; keeping the
/// budget out of it (a) preserves every existing store byte-for-byte and
/// (b) is semantically right — budgets cannot change a completed
/// verdict, and inconclusive results are never cached.
impl fmt::Debug for EnumOptions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EnumOptions")
            .field("prune_scpv", &self.prune_scpv)
            .field("max_executions", &self.max_executions)
            .field("max_domain_iterations", &self.max_domain_iterations)
            .field("max_oracle_branches", &self.max_oracle_branches)
            .finish()
    }
}

/// Enumeration failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EnumError {
    /// The test has no threads.
    NoThreads,
    /// More candidate executions than [`EnumOptions::max_executions`].
    TooManyExecutions,
    /// Too many oracle branches in one thread.
    TooManyBranches,
    /// `rcu_read_lock`/`rcu_read_unlock` are not balanced on some path.
    UnbalancedRcu { thread: usize },
    /// The [`EnumOptions::budget`] ran out mid-enumeration.
    BudgetExceeded(BudgetKind),
}

impl fmt::Display for EnumError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnumError::NoThreads => write!(f, "litmus test has no threads"),
            EnumError::TooManyExecutions => write!(f, "too many candidate executions"),
            EnumError::TooManyBranches => write!(f, "too many oracle branches"),
            EnumError::UnbalancedRcu { thread } => {
                write!(f, "unbalanced RCU critical section in thread {thread}")
            }
            EnumError::BudgetExceeded(kind) => write!(f, "{kind}"),
        }
    }
}

impl std::error::Error for EnumError {}

/// Enumerate all candidate executions of `test` into a vector.
///
/// # Errors
///
/// See [`EnumError`]. Litmus-scale tests enumerate in microseconds; the
/// caps exist to keep pathological inputs from running away.
///
/// # Examples
///
/// ```
/// use lkmm_exec::enumerate::{enumerate, EnumOptions};
///
/// let test = lkmm_litmus::library::by_name("MP").unwrap().test();
/// let execs = enumerate(&test, &EnumOptions::default()).unwrap();
/// assert!(!execs.is_empty());
/// ```
pub fn enumerate(test: &Test, opts: &EnumOptions) -> Result<Vec<Execution>, EnumError> {
    let mut out = Vec::new();
    let _ = try_for_each_execution(test, opts, &mut |x| {
        out.push(x);
        ControlFlow::Continue(())
    })?;
    Ok(out)
}

/// Streaming variant of [`enumerate`]: calls `visit` on each candidate
/// execution without retaining them.
///
/// # Errors
///
/// See [`EnumError`].
pub fn for_each_execution(
    test: &Test,
    opts: &EnumOptions,
    visit: &mut dyn FnMut(&Execution),
) -> Result<(), EnumError> {
    try_for_each_execution(test, opts, &mut |x| {
        visit(&x);
        ControlFlow::Continue(())
    })
    .map(drop)
}

/// Abortable streaming enumeration: each candidate is passed to `visit`
/// *by value* (candidates share their pre-witness structure behind `Arc`s,
/// so this is cheap), and the visitor may stop the enumeration early by
/// returning [`ControlFlow::Break`]. This is the primitive the parallel
/// check pipeline feeds from — both the move (no clone per candidate) and
/// the abort (early-exit once a verdict is decided) matter there.
///
/// Returns [`ControlFlow::Break`] if the visitor stopped the run, and
/// [`ControlFlow::Continue`] if the candidate space was exhausted.
///
/// # Errors
///
/// See [`EnumError`].
pub fn try_for_each_execution(
    test: &Test,
    opts: &EnumOptions,
    visit: &mut dyn FnMut(Execution) -> ControlFlow<()>,
) -> Result<ControlFlow<()>, EnumError> {
    if test.threads.is_empty() {
        return Err(EnumError::NoThreads);
    }
    let mut meter = opts.budget.meter();
    let locs = test.shared_locations();
    let init_vals: Vec<Val> = locs
        .iter()
        .map(|name| match test.init.get(name) {
            Some(InitVal::Int(i)) => Val::Int(*i),
            Some(InitVal::Ptr(t)) => {
                Val::Loc(LocId(locs.iter().position(|l| l == t).expect("ptr target exists")))
            }
            None => Val::Int(0),
        })
        .collect();

    // Which threads statically write each location; a location written by
    // no thread other than the reader has deterministic read values.
    let writers = static_writers(test, &locs);

    // --- value-domain fixpoint -------------------------------------------
    let mut domains: Vec<BTreeSet<Val>> =
        init_vals.iter().map(|&v| BTreeSet::from([v])).collect();
    let mut outcomes: Vec<Vec<ThreadOutcome>> = Vec::new();
    let stmt_count: usize = test.threads.iter().map(|t| count_stmts(&t.body)).sum();
    let rounds = (stmt_count + 1).min(opts.max_domain_iterations.max(1));
    for _round in 0..rounds {
        meter.poll_now().map_err(EnumError::BudgetExceeded)?;
        outcomes = test
            .threads
            .iter()
            .enumerate()
            .map(|(tid, t)| {
                explore_thread(&t.body, tid, &locs, &init_vals, &writers, &domains, opts, &mut meter)
            })
            .collect::<Result<_, _>>()?;
        let mut changed = false;
        for outs in &outcomes {
            for out in outs {
                for ev in &out.events {
                    if let EventKind::Write { loc, val, .. } = ev.kind {
                        changed |= domains[loc.0].insert(val);
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // --- assemble pre-executions and enumerate witnesses -----------------
    let mut emitted = 0usize;
    let mut combo = vec![0usize; test.threads.len()];
    loop {
        meter.poll_now().map_err(EnumError::BudgetExceeded)?;
        let chosen: Vec<&ThreadOutcome> =
            combo.iter().enumerate().map(|(t, &i)| &outcomes[t][i]).collect();
        let pre = build_pre_execution(&locs, &init_vals, &chosen)?;
        if enumerate_witnesses(&pre, opts, &mut emitted, &mut meter, visit)?.is_break() {
            return Ok(ControlFlow::Break(()));
        }

        // Advance the per-thread outcome combination (odometer).
        let mut t = 0;
        loop {
            if t == combo.len() {
                return Ok(ControlFlow::Continue(()));
            }
            combo[t] += 1;
            if combo[t] < outcomes[t].len() {
                break;
            }
            combo[t] = 0;
            t += 1;
        }
    }
}

fn count_stmts(body: &[lkmm_litmus::Stmt]) -> usize {
    body.iter()
        .map(|s| match s {
            lkmm_litmus::Stmt::If { then_, else_, .. } => {
                1 + count_stmts(then_) + count_stmts(else_)
            }
            _ => 1,
        })
        .sum()
}

/// Statically determine, per location, which threads may write it. A
/// thread containing a write through a register pointer may write any
/// location.
fn static_writers(test: &Test, locs: &[String]) -> Vec<BTreeSet<usize>> {
    use lkmm_litmus::ast::{AddrExpr, Stmt};
    let mut writers = vec![BTreeSet::new(); locs.len()];
    fn scan(
        stmts: &[Stmt],
        tid: usize,
        locs: &[String],
        writers: &mut [BTreeSet<usize>],
    ) {
        let mark = |addr: &AddrExpr, locs: &[String], writers: &mut [BTreeSet<usize>]| {
            match addr {
                AddrExpr::Var(name) => {
                    if let Some(i) = locs.iter().position(|l| l == name) {
                        writers[i].insert(tid);
                    }
                }
                // A pointer write may target anything.
                AddrExpr::Reg(_) => {
                    for w in writers.iter_mut() {
                        w.insert(tid);
                    }
                }
            }
        };
        for s in stmts {
            match s {
                Stmt::WriteOnce { addr, .. }
                | Stmt::StoreRelease { addr, .. }
                | Stmt::RcuAssignPointer { addr, .. }
                | Stmt::Xchg { addr, .. }
                | Stmt::CmpXchg { addr, .. }
                | Stmt::AtomicOp { addr, .. }
                | Stmt::SpinLock { addr }
                | Stmt::SpinUnlock { addr } => mark(addr, locs, writers),
                Stmt::If { then_, else_, .. } => {
                    scan(then_, tid, locs, writers);
                    scan(else_, tid, locs, writers);
                }
                // SRCU domain arguments are markers, not writes.
                _ => {}
            }
        }
    }
    for (tid, t) in test.threads.iter().enumerate() {
        scan(&t.body, tid, locs, &mut writers);
    }
    writers
}

#[allow(clippy::too_many_arguments)]
fn explore_thread(
    body: &[lkmm_litmus::Stmt],
    tid: usize,
    locs: &[String],
    init_vals: &[Val],
    writers: &[BTreeSet<usize>],
    domains: &[BTreeSet<Val>],
    opts: &EnumOptions,
    meter: &mut Meter,
) -> Result<Vec<ThreadOutcome>, EnumError> {
    let mut done = Vec::new();
    let mut stack: Vec<Vec<Val>> = vec![Vec::new()];
    let mut branches = 0usize;
    while let Some(oracle) = stack.pop() {
        branches += 1;
        if branches > opts.max_oracle_branches {
            return Err(EnumError::TooManyBranches);
        }
        meter.poll().map_err(EnumError::BudgetExceeded)?;
        match run_thread(body, &oracle, locs) {
            Ok(out) => done.push(out),
            Err(ThreadStop::NeedValue { loc, last_local_write }) => {
                // Determinisation of thread-local reads is justified by
                // per-location coherence, so it only applies when Scpv
                // pruning is on; raw mode keeps the full candidate set.
                let local =
                    opts.prune_scpv && writers[loc.0].iter().all(|&w| w == tid);
                if local {
                    // Deterministic under coherence: the read must return
                    // this thread's latest prior write (or the initial
                    // value).
                    let mut next = oracle.clone();
                    next.push(last_local_write.unwrap_or(init_vals[loc.0]));
                    stack.push(next);
                } else {
                    for &v in &domains[loc.0] {
                        let mut next = oracle.clone();
                        next.push(v);
                        stack.push(next);
                    }
                }
            }
            Err(ThreadStop::Stuck(_)) => {}
        }
    }
    Ok(done)
}

/// Everything fixed before `rf`/`co` are chosen. The shared parts are
/// already behind `Arc`s so every candidate built from this pre-execution
/// clones reference counts, not data.
struct PreExecution {
    locs: Arc<Vec<String>>,
    events: Arc<Vec<Event>>,
    n_threads: usize,
    po: Arc<Relation>,
    addr: Arc<Relation>,
    data: Arc<Relation>,
    ctrl: Arc<Relation>,
    rmw: Arc<Relation>,
    final_regs: Arc<Vec<BTreeMap<String, Val>>>,
    /// Global indices of reads, with (loc, val).
    reads: Vec<(usize, LocId, Val)>,
    /// Global indices of non-init writes per location.
    writes_per_loc: Vec<Vec<usize>>,
    /// Global index of the initialising write per location.
    init_write: Vec<usize>,
    po_loc: Relation,
}

fn build_pre_execution(
    locs: &[String],
    init_vals: &[Val],
    chosen: &[&ThreadOutcome],
) -> Result<PreExecution, EnumError> {
    let n_init = locs.len();
    let total: usize = n_init + chosen.iter().map(|o| o.events.len()).sum::<usize>();
    let mut events = Vec::with_capacity(total);
    for (i, &v) in init_vals.iter().enumerate() {
        events.push(Event {
            id: i,
            thread: None,
            kind: EventKind::Write {
                loc: LocId(i),
                val: v,
                annot: WriteAnnot::Once,
                is_init: true,
            },
        });
    }
    let mut po = Relation::empty(total);
    let mut addr = Relation::empty(total);
    let mut data = Relation::empty(total);
    let mut ctrl = Relation::empty(total);
    let mut rmw = Relation::empty(total);
    let mut final_regs = Vec::with_capacity(chosen.len());
    for (t, out) in chosen.iter().enumerate() {
        let base = events.len();
        // RCU and per-domain SRCU balance checks for this outcome.
        let mut depth = 0i64;
        let mut srcu_depth: std::collections::HashMap<crate::event::LocId, i64> =
            std::collections::HashMap::new();
        for ev in &out.events {
            match ev.kind {
                EventKind::Fence(FenceKind::RcuLock) => depth += 1,
                EventKind::Fence(FenceKind::RcuUnlock) => depth -= 1,
                EventKind::Srcu { kind: crate::event::SrcuKind::Lock, domain } => {
                    *srcu_depth.entry(domain).or_insert(0) += 1;
                }
                EventKind::Srcu { kind: crate::event::SrcuKind::Unlock, domain } => {
                    *srcu_depth.entry(domain).or_insert(0) -= 1;
                }
                _ => {}
            }
            if depth < 0 || srcu_depth.values().any(|&d| d < 0) {
                return Err(EnumError::UnbalancedRcu { thread: t });
            }
        }
        if depth != 0 || srcu_depth.values().any(|&d| d != 0) {
            return Err(EnumError::UnbalancedRcu { thread: t });
        }
        for (i, ev) in out.events.iter().enumerate() {
            events.push(Event { id: base + i, thread: Some(t), kind: ev.kind });
            for j in 0..i {
                po.insert(base + j, base + i);
            }
        }
        for &(a, b) in &out.deps.addr {
            addr.insert(base + a, base + b);
        }
        for &(a, b) in &out.deps.data {
            data.insert(base + a, base + b);
        }
        for &(a, b) in &out.deps.ctrl {
            ctrl.insert(base + a, base + b);
        }
        for &(a, b) in &out.deps.rmw {
            rmw.insert(base + a, base + b);
        }
        final_regs.push(out.final_regs.clone());
    }

    let mut reads = Vec::new();
    let mut writes_per_loc = vec![Vec::new(); locs.len()];
    for e in &events {
        match e.kind {
            EventKind::Read { loc, val, .. } => reads.push((e.id, loc, val)),
            EventKind::Write { loc, is_init: false, .. } => writes_per_loc[loc.0].push(e.id),
            _ => {}
        }
    }
    let init_write = (0..locs.len()).collect();

    // po-loc for pruning.
    let mut po_loc = Relation::empty(total);
    for (a, b) in po.iter() {
        if let (Some(la), Some(lb)) = (events[a].loc(), events[b].loc()) {
            if la == lb {
                po_loc.insert(a, b);
            }
        }
    }

    Ok(PreExecution {
        locs: Arc::new(locs.to_vec()),
        events: Arc::new(events),
        n_threads: chosen.len(),
        po: Arc::new(po),
        addr: Arc::new(addr),
        data: Arc::new(data),
        ctrl: Arc::new(ctrl),
        rmw: Arc::new(rmw),
        final_regs: Arc::new(final_regs),
        reads,
        writes_per_loc,
        init_write,
        po_loc,
    })
}

fn enumerate_witnesses(
    pre: &PreExecution,
    opts: &EnumOptions,
    emitted: &mut usize,
    meter: &mut Meter,
    visit: &mut dyn FnMut(Execution) -> ControlFlow<()>,
) -> Result<ControlFlow<()>, EnumError> {
    // Candidate rf sources per read: same location, same value.
    let mut candidates: Vec<Vec<usize>> = Vec::with_capacity(pre.reads.len());
    for &(_, loc, val) in &pre.reads {
        let mut c: Vec<usize> = Vec::new();
        let init = pre.init_write[loc.0];
        if pre.events[init].val() == Some(val) {
            c.push(init);
        }
        for &w in &pre.writes_per_loc[loc.0] {
            if pre.events[w].val() == Some(val) {
                c.push(w);
            }
        }
        if c.is_empty() {
            // This oracle assignment is unrealisable.
            return Ok(ControlFlow::Continue(()));
        }
        candidates.push(c);
    }

    let mut rf_choice = vec![0usize; pre.reads.len()];
    loop {
        meter.poll().map_err(EnumError::BudgetExceeded)?;
        let mut rf = Relation::empty(pre.events.len());
        for (ri, &(read_id, _, _)) in pre.reads.iter().enumerate() {
            rf.insert(candidates[ri][rf_choice[ri]], read_id);
        }
        // Cheap pre-co prune: a read may not observe a po-later write.
        let rf_ok =
            !opts.prune_scpv || pre.po_loc.union(&rf).is_acyclic();
        if rf_ok && enumerate_co(pre, &rf, opts, emitted, meter, visit)?.is_break() {
            return Ok(ControlFlow::Break(()));
        }

        let mut i = 0;
        loop {
            if i == rf_choice.len() {
                return Ok(ControlFlow::Continue(()));
            }
            rf_choice[i] += 1;
            if rf_choice[i] < candidates[i].len() {
                break;
            }
            rf_choice[i] = 0;
            i += 1;
        }
    }
}

fn enumerate_co(
    pre: &PreExecution,
    rf: &Relation,
    opts: &EnumOptions,
    emitted: &mut usize,
    meter: &mut Meter,
    visit: &mut dyn FnMut(Execution) -> ControlFlow<()>,
) -> Result<ControlFlow<()>, EnumError> {
    // Per-location write permutations, enumerated recursively.
    #[allow(clippy::too_many_arguments)]
    fn rec(
        pre: &PreExecution,
        rf: &Relation,
        opts: &EnumOptions,
        loc: usize,
        orders: &mut Vec<Vec<usize>>,
        emitted: &mut usize,
        meter: &mut Meter,
        visit: &mut dyn FnMut(Execution) -> ControlFlow<()>,
    ) -> Result<ControlFlow<()>, EnumError> {
        if loc == pre.locs.len() {
            meter.poll().map_err(EnumError::BudgetExceeded)?;
            let mut co = Relation::empty(pre.events.len());
            for (l, order) in orders.iter().enumerate() {
                let mut prev = pre.init_write[l];
                for &w in order {
                    co.insert(prev, w);
                    prev = w;
                }
            }
            co.transitive_close();
            if opts.prune_scpv {
                // acyclic(po-loc ∪ rf ∪ co ∪ fr), built with in-place
                // unions on top of fr = rf⁻¹ ; co.
                let mut com = rf.inverse().seq(&co);
                com.union_in_place(rf);
                com.union_in_place(&co);
                com.union_in_place(&pre.po_loc);
                if !com.is_acyclic() {
                    return Ok(ControlFlow::Continue(()));
                }
            }
            *emitted += 1;
            if *emitted > opts.max_executions {
                return Err(EnumError::TooManyExecutions);
            }
            if faultpoint::should_fail("enum.budget") {
                return Err(EnumError::BudgetExceeded(BudgetKind::Candidates));
            }
            meter.spend_candidate().map_err(EnumError::BudgetExceeded)?;
            let x = Execution {
                locs: Arc::clone(&pre.locs),
                events: Arc::clone(&pre.events),
                n_threads: pre.n_threads,
                po: Arc::clone(&pre.po),
                addr: Arc::clone(&pre.addr),
                data: Arc::clone(&pre.data),
                ctrl: Arc::clone(&pre.ctrl),
                rmw: Arc::clone(&pre.rmw),
                rf: rf.clone(),
                co,
                final_regs: Arc::clone(&pre.final_regs),
            };
            return Ok(visit(x));
        }
        let writes = pre.writes_per_loc[loc].clone();
        permute(writes, &mut |perm| {
            orders.push(perm.to_vec());
            let r = rec(pre, rf, opts, loc + 1, orders, emitted, meter, visit);
            orders.pop();
            r
        })
    }
    let mut orders = Vec::new();
    rec(pre, rf, opts, 0, &mut orders, emitted, meter, visit)
}

/// Call `f` on every permutation of `items` (simple recursive generation),
/// stopping early if `f` breaks.
fn permute<E>(
    mut items: Vec<usize>,
    f: &mut dyn FnMut(&[usize]) -> Result<ControlFlow<()>, E>,
) -> Result<ControlFlow<()>, E> {
    fn rec<E>(
        items: &mut Vec<usize>,
        k: usize,
        f: &mut dyn FnMut(&[usize]) -> Result<ControlFlow<()>, E>,
    ) -> Result<ControlFlow<()>, E> {
        if k == items.len() {
            return f(items);
        }
        for i in k..items.len() {
            items.swap(k, i);
            let flow = rec(items, k + 1, f)?;
            items.swap(k, i);
            if flow.is_break() {
                return Ok(ControlFlow::Break(()));
            }
        }
        Ok(ControlFlow::Continue(()))
    }
    rec(&mut items, 0, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lkmm_litmus::library;
    use lkmm_litmus::parse;

    fn count(name: &str) -> usize {
        let test = library::by_name(name).unwrap().test();
        enumerate(&test, &EnumOptions::default()).unwrap().len()
    }

    #[test]
    fn sb_has_coherent_executions() {
        let test = library::by_name("SB").unwrap().test();
        let execs = enumerate(&test, &EnumOptions::default()).unwrap();
        // Each read sees 0 (init) or 1 (other thread's write): with Scpv
        // pruning, a read of its own thread's location is impossible here
        // (different locations), so 2 × 2 = 4 executions.
        assert_eq!(execs.len(), 4);
        // The SB weak outcome (both read 0) must be among them.
        assert!(execs.iter().any(|x| x.satisfies_prop(&test.condition.prop)));
    }

    #[test]
    fn mp_final_values_and_prop() {
        let test = library::by_name("MP").unwrap().test();
        let execs = enumerate(&test, &EnumOptions::default()).unwrap();
        // All executions end with x=1, y=1 (single writer).
        for x in &execs {
            let f = x.final_values();
            assert_eq!(f[&x.loc_id("x").unwrap()], Val::Int(1));
        }
        // The MP weak outcome exists among raw candidates.
        assert!(execs.iter().any(|x| x.satisfies_prop(&test.condition.prop)));
    }

    #[test]
    fn scpv_prune_removes_po_loc_violations() {
        // A thread writing then reading the same location must read its own
        // write or a later one — never the initial value.
        let t = parse(
            "C t\n{ x=0; }\n\
             P0(int *x) { int r; WRITE_ONCE(*x, 1); r = READ_ONCE(*x); }\n\
             exists (0:r=0)",
        )
        .unwrap();
        let execs = enumerate(&t, &EnumOptions::default()).unwrap();
        assert!(!execs.is_empty());
        assert!(execs.iter().all(|x| !x.satisfies_prop(&t.condition.prop)));
        // Without pruning the incoherent candidate exists.
        let raw = enumerate(&t, &EnumOptions { prune_scpv: false, ..Default::default() })
            .unwrap();
        assert!(raw.iter().any(|x| x.satisfies_prop(&t.condition.prop)));
        assert!(raw.len() > execs.len());
    }

    #[test]
    fn control_flow_branches_enumerate_both_paths() {
        let t = library::by_name("LB+ctrl+mb").unwrap().test();
        let execs = enumerate(&t, &EnumOptions::default()).unwrap();
        // Some executions take the branch (write y), some do not.
        let with_branch = execs.iter().any(|x| {
            x.events.iter().any(|e| {
                e.thread == Some(0)
                    && matches!(e.kind, EventKind::Write { is_init: false, .. })
            })
        });
        let without_branch = execs.iter().any(|x| {
            !x.events.iter().any(|e| {
                e.thread == Some(0)
                    && matches!(e.kind, EventKind::Write { is_init: false, .. })
            })
        });
        assert!(with_branch && without_branch);
    }

    #[test]
    fn pointer_chase_has_address_dependency() {
        let t = library::by_name("MP+wmb+addr").unwrap().test();
        let execs = enumerate(&t, &EnumOptions::default()).unwrap();
        assert!(execs.iter().all(|x| !x.addr.is_empty() || x.events.len() < 8));
        assert!(execs.iter().any(|x| x.satisfies_prop(&t.condition.prop)));
    }

    #[test]
    fn rcu_crit_matches_lock_unlock() {
        let t = library::by_name("RCU-MP").unwrap().test();
        let execs = enumerate(&t, &EnumOptions::default()).unwrap();
        let x = &execs[0];
        let crit = x.crit();
        assert_eq!(crit.len(), 1);
        let (l, u) = crit.iter().next().unwrap();
        assert!(x.events[l].is_fence(FenceKind::RcuLock));
        assert!(x.events[u].is_fence(FenceKind::RcuUnlock));
        assert!(x.po.contains(l, u));
    }

    #[test]
    fn unbalanced_rcu_is_an_error() {
        let t = parse(
            "C t\n{ x=0; }\nP0(int *x) { rcu_read_lock(); WRITE_ONCE(*x, 1); }\nexists (x=1)",
        )
        .unwrap();
        assert_eq!(
            enumerate(&t, &EnumOptions::default()).unwrap_err(),
            EnumError::UnbalancedRcu { thread: 0 }
        );
    }

    #[test]
    fn value_domain_fixpoint_propagates_computed_values() {
        // P0 writes x+1 computed from a read of x written by P1: the value
        // 2 must flow into x's domain so P1's read can observe it.
        let t = parse(
            "C t\n{ x=0; }\n\
             P0(int *x) { int r; r = READ_ONCE(*x); WRITE_ONCE(*x, r + 1); }\n\
             P1(int *x) { int s; s = READ_ONCE(*x); }\n\
             exists (1:s=2)",
        )
        .unwrap();
        let execs = enumerate(&t, &EnumOptions::default()).unwrap();
        // 1:s=2 requires P0 to read 1 — but nothing writes 1 except P0
        // itself computing 0+1. So s=2 is impossible, s=1 is possible.
        assert!(!execs.iter().any(|x| x.satisfies_prop(&t.condition.prop)));
        let t2 = parse(
            "C t\n{ x=0; }\n\
             P0(int *x) { int r; r = READ_ONCE(*x); WRITE_ONCE(*x, r + 1); }\n\
             P1(int *x) { int s; s = READ_ONCE(*x); }\n\
             exists (1:s=1)",
        )
        .unwrap();
        let execs2 = enumerate(&t2, &EnumOptions::default()).unwrap();
        assert!(execs2.iter().any(|x| x.satisfies_prop(&t2.condition.prop)));
    }

    #[test]
    fn table5_tests_all_enumerate() {
        for pt in library::table5() {
            let t = pt.test();
            let execs = enumerate(&t, &EnumOptions::default())
                .unwrap_or_else(|e| panic!("{}: {e}", pt.name));
            assert!(!execs.is_empty(), "{} has no executions", pt.name);
        }
    }

    #[test]
    fn execution_counts_are_stable() {
        // Pin down the candidate counts so enumerator changes are noticed.
        assert_eq!(count("SB"), 4);
        assert_eq!(count("MP"), 4);
        assert_eq!(count("LB"), 4);
    }
}
