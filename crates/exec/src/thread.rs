//! Concrete per-thread execution under a read oracle.
//!
//! Thread bodies are run with an *oracle*: a list of values that successive
//! reads return. Dependencies are tracked by tainting register values with
//! the set of read events they derive from — exactly the address, data and
//! control dependency relations of the paper (§2).

use crate::event::{EventKind, LocId, ReadAnnot, SrcuKind, Val, WriteAnnot};
use lkmm_litmus::ast::{AddrExpr, BinOp, Expr, FenceKind, RmwOrder, Stmt};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// An event emitted by a thread, with *local* (per-thread) indices.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LocalEvent {
    pub kind: EventKind,
}

/// Dependency edges between local event indices.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LocalDeps {
    pub addr: Vec<(usize, usize)>,
    pub data: Vec<(usize, usize)>,
    pub ctrl: Vec<(usize, usize)>,
    pub rmw: Vec<(usize, usize)>,
}

/// The result of running one thread to completion under an oracle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ThreadOutcome {
    /// Events in program order.
    pub events: Vec<LocalEvent>,
    /// Dependency edges (local indices into `events`).
    pub deps: LocalDeps,
    /// Final register values.
    pub final_regs: BTreeMap<String, Val>,
    /// The oracle prefix actually consumed (one entry per read executed).
    pub oracle_used: Vec<Val>,
}

/// Why a thread run did not complete.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ThreadStop {
    /// The oracle ran out: the next read is of this location. The caller
    /// should extend the oracle with each value in the location's domain —
    /// or, if no other thread writes the location, with exactly
    /// `last_local_write` (the value is deterministic under per-location
    /// coherence: a read may not see a po-later own write, nor skip back
    /// over a po-earlier one).
    NeedValue {
        loc: LocId,
        /// Value of this thread's latest program-order-earlier write to
        /// `loc`, if any.
        last_local_write: Option<Val>,
    },
    /// The branch is semantically stuck (e.g. an integer was dereferenced);
    /// the oracle assignment is unrealisable and should be dropped.
    Stuck(String),
}

/// Run `body` under `oracle`, mapping location names through `locs`.
///
/// Returns the completed outcome, or [`ThreadStop::NeedValue`] when the
/// oracle is too short, or [`ThreadStop::Stuck`] for unrealisable branches.
///
/// # Examples
///
/// ```
/// use lkmm_exec::thread::{run_thread, ThreadStop};
/// use lkmm_exec::event::Val;
/// use lkmm_litmus::parse;
///
/// let t = parse("C t\n{ x=0; }\nP0(int *x) { int r; r = READ_ONCE(*x); }\nexists (0:r=0)")
///     .unwrap();
/// let locs = vec!["x".to_string()];
/// // Empty oracle: the read needs a value.
/// assert!(matches!(run_thread(&t.threads[0].body, &[], &locs),
///                  Err(ThreadStop::NeedValue { .. })));
/// // With a value the thread completes.
/// let out = run_thread(&t.threads[0].body, &[Val::Int(7)], &locs).unwrap();
/// assert_eq!(out.final_regs["r"], Val::Int(7));
/// ```
pub fn run_thread(
    body: &[Stmt],
    oracle: &[Val],
    locs: &[String],
) -> Result<ThreadOutcome, ThreadStop> {
    let loc_ids: HashMap<&str, LocId> =
        locs.iter().enumerate().map(|(i, n)| (n.as_str(), LocId(i))).collect();
    let mut st = ThreadState {
        oracle,
        next_oracle: 0,
        loc_ids,
        regs: HashMap::new(),
        events: Vec::new(),
        deps: LocalDeps::default(),
        ctrl_taint: Vec::new(),
        local_writes: HashMap::new(),
    };
    st.run_block(body)?;
    let final_regs = st
        .regs
        .iter()
        .map(|(name, tv)| (name.clone(), tv.val))
        .collect();
    Ok(ThreadOutcome {
        events: st.events,
        deps: st.deps,
        final_regs,
        oracle_used: oracle[..st.next_oracle].to_vec(),
    })
}

/// A value plus the set of (local indices of) read events it derives from.
#[derive(Clone, Debug)]
struct Tainted {
    val: Val,
    taint: BTreeSet<usize>,
}

struct ThreadState<'a> {
    oracle: &'a [Val],
    next_oracle: usize,
    loc_ids: HashMap<&'a str, LocId>,
    regs: HashMap<String, Tainted>,
    events: Vec<LocalEvent>,
    deps: LocalDeps,
    /// Stack of control-dependency sources: reads feeding enclosing `if`s.
    ctrl_taint: Vec<BTreeSet<usize>>,
    /// Latest value written to each location by this thread.
    local_writes: HashMap<LocId, Val>,
}

impl<'a> ThreadState<'a> {
    fn run_block(&mut self, body: &[Stmt]) -> Result<(), ThreadStop> {
        for stmt in body {
            self.run_stmt(stmt)?;
        }
        Ok(())
    }

    fn emit(&mut self, kind: EventKind) -> usize {
        let idx = self.events.len();
        self.events.push(LocalEvent { kind });
        // Control dependencies from every enclosing branch condition.
        let sources: BTreeSet<usize> =
            self.ctrl_taint.iter().flat_map(|s| s.iter().copied()).collect();
        for src in sources {
            self.deps.ctrl.push((src, idx));
        }
        idx
    }

    fn resolve_addr(&mut self, addr: &AddrExpr) -> Result<(LocId, BTreeSet<usize>), ThreadStop> {
        match addr {
            AddrExpr::Var(name) => {
                let loc = *self
                    .loc_ids
                    .get(name.as_str())
                    .ok_or_else(|| ThreadStop::Stuck(format!("unknown location {name}")))?;
                Ok((loc, BTreeSet::new()))
            }
            AddrExpr::Reg(reg) => {
                let tv = self
                    .regs
                    .get(reg)
                    .ok_or_else(|| ThreadStop::Stuck(format!("uninitialised register {reg}")))?;
                match tv.val {
                    Val::Loc(l) => Ok((l, tv.taint.clone())),
                    Val::Int(i) => Err(ThreadStop::Stuck(format!("dereferencing integer {i}"))),
                }
            }
        }
    }

    fn eval(&self, e: &Expr) -> Result<Tainted, ThreadStop> {
        match e {
            Expr::Const(c) => Ok(Tainted { val: Val::Int(*c), taint: BTreeSet::new() }),
            Expr::Reg(r) => self
                .regs
                .get(r)
                .cloned()
                .ok_or_else(|| ThreadStop::Stuck(format!("uninitialised register {r}"))),
            Expr::LocRef(name) => {
                let loc = *self
                    .loc_ids
                    .get(name.as_str())
                    .ok_or_else(|| ThreadStop::Stuck(format!("unknown location {name}")))?;
                Ok(Tainted { val: Val::Loc(loc), taint: BTreeSet::new() })
            }
            Expr::Not(inner) => {
                let t = self.eval(inner)?;
                Ok(Tainted { val: Val::Int(i64::from(!t.val.truthy())), taint: t.taint })
            }
            Expr::Bin(op, a, b) => {
                let ta = self.eval(a)?;
                let tb = self.eval(b)?;
                let taint: BTreeSet<usize> = ta.taint.union(&tb.taint).copied().collect();
                let val = match op {
                    BinOp::Eq => Val::Int(i64::from(ta.val == tb.val)),
                    BinOp::Ne => Val::Int(i64::from(ta.val != tb.val)),
                    // `&x + 0` keeps the pointer: the only pointer
                    // arithmetic needed (diy-style false address
                    // dependencies, `&x + (r ^ r)`).
                    BinOp::Add if matches!((ta.val, tb.val), (Val::Loc(_), Val::Int(0))) => {
                        ta.val
                    }
                    BinOp::Add if matches!((ta.val, tb.val), (Val::Int(0), Val::Loc(_))) => {
                        tb.val
                    }
                    _ => {
                        let (x, y) = match (ta.val.as_int(), tb.val.as_int()) {
                            (Some(x), Some(y)) => (x, y),
                            _ => {
                                return Err(ThreadStop::Stuck(
                                    "pointer arithmetic is not modelled".into(),
                                ))
                            }
                        };
                        Val::Int(match op {
                            BinOp::Add => x.wrapping_add(y),
                            BinOp::Sub => x.wrapping_sub(y),
                            BinOp::Mul => x.wrapping_mul(y),
                            BinOp::Xor => x ^ y,
                            BinOp::And => x & y,
                            BinOp::Or => x | y,
                            BinOp::Lt => i64::from(x < y),
                            BinOp::Le => i64::from(x <= y),
                            BinOp::Gt => i64::from(x > y),
                            BinOp::Ge => i64::from(x >= y),
                            BinOp::Eq | BinOp::Ne => unreachable!(),
                        })
                    }
                };
                Ok(Tainted { val, taint })
            }
        }
    }

    fn next_read_value(&mut self, loc: LocId) -> Result<Val, ThreadStop> {
        match self.oracle.get(self.next_oracle) {
            Some(&v) => {
                self.next_oracle += 1;
                Ok(v)
            }
            None => Err(ThreadStop::NeedValue {
                loc,
                last_local_write: self.local_writes.get(&loc).copied(),
            }),
        }
    }

    fn do_read(
        &mut self,
        dst: &str,
        addr: &AddrExpr,
        annot: ReadAnnot,
    ) -> Result<usize, ThreadStop> {
        let (loc, addr_taint) = self.resolve_addr(addr)?;
        let val = self.next_read_value(loc)?;
        let idx = self.emit(EventKind::Read { loc, val, annot });
        for src in &addr_taint {
            self.deps.addr.push((*src, idx));
        }
        self.regs.insert(dst.to_string(), Tainted { val, taint: BTreeSet::from([idx]) });
        Ok(idx)
    }

    fn do_write(
        &mut self,
        addr: &AddrExpr,
        value: &Expr,
        annot: WriteAnnot,
    ) -> Result<usize, ThreadStop> {
        let (loc, addr_taint) = self.resolve_addr(addr)?;
        let tv = self.eval(value)?;
        let idx =
            self.emit(EventKind::Write { loc, val: tv.val, annot, is_init: false });
        self.local_writes.insert(loc, tv.val);
        for src in &addr_taint {
            self.deps.addr.push((*src, idx));
        }
        for src in &tv.taint {
            self.deps.data.push((*src, idx));
        }
        Ok(idx)
    }

    fn run_stmt(&mut self, stmt: &Stmt) -> Result<(), ThreadStop> {
        match stmt {
            Stmt::ReadOnce { dst, addr } => {
                self.do_read(dst, addr, ReadAnnot::Once)?;
            }
            Stmt::LoadAcquire { dst, addr } => {
                self.do_read(dst, addr, ReadAnnot::Acquire)?;
            }
            Stmt::RcuDereference { dst, addr } => {
                // Table 4: R[once] followed by F[rb-dep].
                self.do_read(dst, addr, ReadAnnot::Once)?;
                self.emit(EventKind::Fence(FenceKind::RbDep));
            }
            Stmt::WriteOnce { addr, value } => {
                self.do_write(addr, value, WriteAnnot::Once)?;
            }
            Stmt::StoreRelease { addr, value } | Stmt::RcuAssignPointer { addr, value } => {
                // Table 4: rcu_assign_pointer is W[release].
                self.do_write(addr, value, WriteAnnot::Release)?;
            }
            Stmt::Fence(kind) => {
                self.emit(EventKind::Fence(*kind));
            }
            Stmt::Xchg { order, dst, addr, value } => {
                // Table 3: xchg() is F[mb], R, W, F[mb]; the lighter
                // variants annotate the read (acquire) or write (release).
                let (rannot, wannot, fenced) = match order {
                    RmwOrder::Relaxed => (ReadAnnot::Once, WriteAnnot::Once, false),
                    RmwOrder::Acquire => (ReadAnnot::Acquire, WriteAnnot::Once, false),
                    RmwOrder::Release => (ReadAnnot::Once, WriteAnnot::Release, false),
                    RmwOrder::Full => (ReadAnnot::Once, WriteAnnot::Once, true),
                };
                if fenced {
                    self.emit(EventKind::Fence(FenceKind::Mb));
                }
                let r = self.do_read(dst, addr, rannot)?;
                let w = self.do_write(addr, value, wannot)?;
                self.deps.rmw.push((r, w));
                if fenced {
                    self.emit(EventKind::Fence(FenceKind::Mb));
                }
            }
            Stmt::CmpXchg { order, dst, addr, expected, new } => {
                let (rannot, wannot, fenced) = match order {
                    RmwOrder::Relaxed => (ReadAnnot::Once, WriteAnnot::Once, false),
                    RmwOrder::Acquire => (ReadAnnot::Acquire, WriteAnnot::Once, false),
                    RmwOrder::Release => (ReadAnnot::Once, WriteAnnot::Release, false),
                    RmwOrder::Full => (ReadAnnot::Once, WriteAnnot::Once, true),
                };
                let exp = self.eval(expected)?;
                if fenced {
                    self.emit(EventKind::Fence(FenceKind::Mb));
                }
                let r = self.do_read(dst, addr, rannot)?;
                let old = self.regs[dst].val;
                if old == exp.val {
                    let w = self.do_write(addr, new, wannot)?;
                    self.deps.rmw.push((r, w));
                }
                if fenced {
                    self.emit(EventKind::Fence(FenceKind::Mb));
                }
            }
            Stmt::AtomicOp { order, dst, addr, op, operand } => {
                let (rannot, wannot, fenced) = match order {
                    RmwOrder::Relaxed => (ReadAnnot::Once, WriteAnnot::Once, false),
                    RmwOrder::Acquire => (ReadAnnot::Acquire, WriteAnnot::Once, false),
                    RmwOrder::Release => (ReadAnnot::Once, WriteAnnot::Release, false),
                    RmwOrder::Full => (ReadAnnot::Once, WriteAnnot::Once, true),
                };
                if fenced {
                    self.emit(EventKind::Fence(FenceKind::Mb));
                }
                let (loc, addr_taint) = self.resolve_addr(addr)?;
                let old = self.next_read_value(loc)?;
                let r = self.emit(EventKind::Read { loc, val: old, annot: rannot });
                let operand_tv = self.eval(operand)?;
                let (Some(x), Some(y)) = (old.as_int(), operand_tv.val.as_int()) else {
                    return Err(ThreadStop::Stuck("atomic arithmetic on pointer".into()));
                };
                let new = Val::Int(match op {
                    BinOp::Add => x.wrapping_add(y),
                    BinOp::Sub => x.wrapping_sub(y),
                    BinOp::And => x & y,
                    BinOp::Or => x | y,
                    BinOp::Xor => x ^ y,
                    _ => return Err(ThreadStop::Stuck("unsupported atomic op".into())),
                });
                let w = self.emit(EventKind::Write { loc, val: new, annot: wannot, is_init: false });
                self.local_writes.insert(loc, new);
                self.deps.rmw.push((r, w));
                // The written value depends on the read and the operand.
                self.deps.data.push((r, w));
                for src in &operand_tv.taint {
                    self.deps.data.push((*src, w));
                }
                for src in &addr_taint {
                    self.deps.addr.push((*src, r));
                    self.deps.addr.push((*src, w));
                }
                if let Some((d, kind)) = dst {
                    let (val, taint) = match kind {
                        lkmm_litmus::ast::AtomicDst::Old => (old, BTreeSet::from([r])),
                        lkmm_litmus::ast::AtomicDst::New => (new, BTreeSet::from([r])),
                    };
                    self.regs.insert(d.clone(), Tainted { val, taint });
                }
                if fenced {
                    self.emit(EventKind::Fence(FenceKind::Mb));
                }
            }
            Stmt::Assign { dst, value } => {
                let tv = self.eval(value)?;
                self.regs.insert(dst.clone(), Tainted { val: tv.val, taint: tv.taint });
            }
            Stmt::Assume(cond) => {
                let c = self.eval(cond)?;
                if !c.val.truthy() {
                    return Err(ThreadStop::Stuck("assumption failed".into()));
                }
            }
            Stmt::If { cond, then_, else_ } => {
                let c = self.eval(cond)?;
                self.ctrl_taint.push(c.taint.clone());
                let result = if c.val.truthy() {
                    self.run_block(then_)
                } else {
                    self.run_block(else_)
                };
                self.ctrl_taint.pop();
                result?;
            }
            Stmt::SrcuReadLock { domain }
            | Stmt::SrcuReadUnlock { domain }
            | Stmt::SynchronizeSrcu { domain } => {
                let (loc, _taint) = self.resolve_addr(domain)?;
                let kind = match stmt {
                    Stmt::SrcuReadLock { .. } => SrcuKind::Lock,
                    Stmt::SrcuReadUnlock { .. } => SrcuKind::Unlock,
                    _ => SrcuKind::Sync,
                };
                self.emit(EventKind::Srcu { kind, domain: loc });
            }
            Stmt::SpinLock { addr } => {
                // §7: behaves like xchg_acquire that must observe the lock
                // free — the read value is pinned to 0 (the final,
                // successful loop iteration is the one modelled).
                let (loc, addr_taint) = self.resolve_addr(addr)?;
                let r = self.emit(EventKind::Read {
                    loc,
                    val: Val::Int(0),
                    annot: ReadAnnot::Acquire,
                });
                let w = self.emit(EventKind::Write {
                    loc,
                    val: Val::Int(1),
                    annot: WriteAnnot::Once,
                    is_init: false,
                });
                self.local_writes.insert(loc, Val::Int(1));
                for src in &addr_taint {
                    self.deps.addr.push((*src, r));
                    self.deps.addr.push((*src, w));
                }
                self.deps.rmw.push((r, w));
            }
            Stmt::SpinUnlock { addr } => {
                // §7: behaves like smp_store_release of 0.
                let (loc, addr_taint) = self.resolve_addr(addr)?;
                let w = self.emit(EventKind::Write {
                    loc,
                    val: Val::Int(0),
                    annot: WriteAnnot::Release,
                    is_init: false,
                });
                self.local_writes.insert(loc, Val::Int(0));
                for src in &addr_taint {
                    self.deps.addr.push((*src, w));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lkmm_litmus::parse;

    fn body_of(src: &str, thread: usize) -> (Vec<Stmt>, Vec<String>) {
        let t = parse(src).unwrap();
        let locs = t.shared_locations();
        (t.threads[thread].body.clone(), locs)
    }

    #[test]
    fn data_dependency_via_register_move() {
        let (body, locs) = body_of(
            "C t\n{ x=0; y=0; }\nP0(int *x, int *y) { int r; int s; \
             r = READ_ONCE(*x); s = r + 1; WRITE_ONCE(*y, s); }\nexists (y=1)",
            0,
        );
        let out = run_thread(&body, &[Val::Int(4)], &locs).unwrap();
        assert_eq!(out.events.len(), 2);
        assert_eq!(out.deps.data, vec![(0, 1)]);
        assert_eq!(out.final_regs["s"], Val::Int(5));
        match out.events[1].kind {
            EventKind::Write { val, .. } => assert_eq!(val, Val::Int(5)),
            _ => panic!("expected write"),
        }
    }

    #[test]
    fn address_dependency_via_pointer() {
        let (body, locs) = body_of(
            "C t\n{ p=&x; x=0; }\nP0(int **p, int *x) { int *r; int s; \
             r = READ_ONCE(*p); s = READ_ONCE(*r); }\nexists (0:s=0)",
            0,
        );
        let x = LocId(locs.iter().position(|l| l == "x").unwrap());
        let out = run_thread(&body, &[Val::Loc(x), Val::Int(0)], &locs).unwrap();
        assert_eq!(out.deps.addr, vec![(0, 1)]);
    }

    #[test]
    fn control_dependency_covers_branch_body_only() {
        let (body, locs) = body_of(
            "C t\n{ x=0; y=0; z=0; }\nP0(int *x, int *y, int *z) { int r; \
             r = READ_ONCE(*x); if (r == 1) { WRITE_ONCE(*y, 1); } WRITE_ONCE(*z, 1); }\n\
             exists (y=1)",
            0,
        );
        let out = run_thread(&body, &[Val::Int(1)], &locs).unwrap();
        // Events: read x, write y (in branch), write z (after join).
        assert_eq!(out.events.len(), 3);
        assert_eq!(out.deps.ctrl, vec![(0, 1)]);
    }

    #[test]
    fn untaken_branch_emits_no_events() {
        let (body, locs) = body_of(
            "C t\n{ x=0; y=0; }\nP0(int *x, int *y) { int r; \
             r = READ_ONCE(*x); if (r == 1) { WRITE_ONCE(*y, 1); } }\nexists (y=1)",
            0,
        );
        let out = run_thread(&body, &[Val::Int(0)], &locs).unwrap();
        assert_eq!(out.events.len(), 1);
        assert!(out.deps.ctrl.is_empty());
    }

    #[test]
    fn xchg_full_emits_fences_and_rmw() {
        let (body, locs) = body_of(
            "C t\n{ x=0; }\nP0(int *x) { int r; r = xchg(x, 5); }\nexists (0:r=0)",
            0,
        );
        let out = run_thread(&body, &[Val::Int(0)], &locs).unwrap();
        // F[mb], R, W, F[mb]
        assert_eq!(out.events.len(), 4);
        assert!(matches!(out.events[0].kind, EventKind::Fence(FenceKind::Mb)));
        assert!(matches!(out.events[3].kind, EventKind::Fence(FenceKind::Mb)));
        assert_eq!(out.deps.rmw, vec![(1, 2)]);
    }

    #[test]
    fn cmpxchg_failure_has_no_write() {
        let (body, locs) = body_of(
            "C t\n{ x=0; }\nP0(int *x) { int r; r = cmpxchg_relaxed(x, 1, 9); }\nexists (0:r=0)",
            0,
        );
        let out = run_thread(&body, &[Val::Int(0)], &locs).unwrap();
        assert_eq!(out.events.len(), 1);
        assert!(out.deps.rmw.is_empty());
        let out2 = run_thread(&body, &[Val::Int(1)], &locs).unwrap();
        assert_eq!(out2.events.len(), 2);
        assert_eq!(out2.deps.rmw, vec![(0, 1)]);
    }

    #[test]
    fn rcu_dereference_emits_rb_dep_fence() {
        let (body, locs) = body_of(
            "C t\n{ p=&x; x=0; }\nP0(int **p) { int *r; r = rcu_dereference(*p); }\nexists (x=0)",
            0,
        );
        let x = LocId(locs.iter().position(|l| l == "x").unwrap());
        let out = run_thread(&body, &[Val::Loc(x)], &locs).unwrap();
        assert_eq!(out.events.len(), 2);
        assert!(matches!(out.events[1].kind, EventKind::Fence(FenceKind::RbDep)));
    }

    #[test]
    fn spin_lock_unlock_shapes() {
        let (body, locs) = body_of(
            "C t\n{ s=0; x=0; }\nP0(spinlock_t *s, int *x) { spin_lock(&s); \
             WRITE_ONCE(*x, 1); spin_unlock(&s); }\nexists (x=1)",
            0,
        );
        let out = run_thread(&body, &[], &locs).unwrap();
        assert_eq!(out.events.len(), 4);
        assert!(out.events[0].kind
            == EventKind::Read { loc: LocId(0), val: Val::Int(0), annot: ReadAnnot::Acquire });
        assert!(matches!(out.events[3].kind,
            EventKind::Write { annot: WriteAnnot::Release, .. }));
        assert_eq!(out.deps.rmw, vec![(0, 1)]);
    }

    #[test]
    fn stuck_on_integer_deref() {
        let (body, locs) = body_of(
            "C t\n{ p=&x; x=0; }\nP0(int **p) { int *r; int s; r = READ_ONCE(*p); \
             s = READ_ONCE(*r); }\nexists (x=0)",
            0,
        );
        let res = run_thread(&body, &[Val::Int(3), Val::Int(0)], &locs);
        assert!(matches!(res, Err(ThreadStop::Stuck(_))));
    }

    #[test]
    fn oracle_exhaustion_reports_location() {
        let (body, locs) = body_of(
            "C t\n{ x=0; y=0; }\nP0(int *x, int *y) { int r; int s; \
             r = READ_ONCE(*x); s = READ_ONCE(*y); }\nexists (x=0)",
            0,
        );
        let y = LocId(locs.iter().position(|l| l == "y").unwrap());
        match run_thread(&body, &[Val::Int(0)], &locs) {
            Err(ThreadStop::NeedValue { loc, last_local_write }) => {
                assert_eq!(loc, y);
                assert_eq!(last_local_write, None);
            }
            other => panic!("expected NeedValue, got {other:?}"),
        }
    }
}
