//! Candidate-execution semantics for LK litmus tests.
//!
//! An axiomatic memory model decides which *candidate executions* of a
//! program are allowed. A candidate execution is a graph: *events* (reads,
//! writes, fences — Table 3/4 of the paper) plus relations — the program
//! order `po`, the dependency relations `addr`/`data`/`ctrl`, the
//! read-modify-write pairing `rmw`, and an *execution witness*: the
//! reads-from relation `rf` and the per-location coherence order `co`.
//!
//! This crate turns a [`lkmm_litmus::Test`] into the full set of its
//! candidate executions:
//!
//! 1. [`thread`] runs each thread concretely under a *read oracle* (an
//!    assignment of values to its reads), tracking dependencies by taint;
//! 2. [`enumerate()`](crate::enumerate::enumerate) computes the per-location value domains by fixpoint,
//!    iterates all oracles, then all `rf` choices and all `co` orders;
//! 3. [`Execution`] packages the result with every
//!    derived relation a cat model needs (`fr`, `po-loc`, `rfe`, fence
//!    pair relations, the RCU `crit` matching, …).
//!
//! # Examples
//!
//! ```
//! use lkmm_exec::enumerate::{enumerate, EnumOptions};
//!
//! let test = lkmm_litmus::library::by_name("SB").unwrap().test();
//! let execs = enumerate(&test, &EnumOptions::default()).unwrap();
//! // SB has 2 writes and 2 reads over 2 locations: each read sees the
//! // initial value or the other thread's write.
//! assert!(execs.iter().any(|x| x.satisfies_prop(&test.condition.prop)));
//! ```

pub mod enumerate;
pub mod facts;
pub mod model;
pub mod pipeline;
pub mod states;
pub mod event;
pub mod execution;
pub mod thread;

pub use enumerate::{
    enumerate, for_each_execution, try_for_each_execution, EnumError, EnumOptions, EnumSnapshot,
    EnumStats, EnumStrategy,
};
pub use event::{Event, EventKind, LocId, ReadAnnot, SrcuKind, Val, WriteAnnot};
pub use execution::Execution;
pub use facts::{ExecFacts, FactsCache, SrcuDomainFacts, StaticExecFacts};
pub use lkmm_core::budget::{Budget, BudgetKind, CancelToken, StepFuel};
pub use model::{
    check_test, open_session, ConsistencyModel, EvalStop, ModelSession, TestResult, Verdict,
};
pub use pipeline::{
    check_test_governed, check_test_multi, check_test_multi_governed, check_test_pipelined,
    effective_jobs, CheckOutcome, DataPlaneSnapshot, DataPlaneStats, InconclusiveReason,
    MultiCheckOutcome, PipelineOptions, Tally, MAX_BATCH, MAX_JOBS,
};
pub use states::{collect_states, StateSummary};
