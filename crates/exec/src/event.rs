//! Events: the nodes of a candidate execution.

use lkmm_litmus::FenceKind;
use std::fmt;

/// Index of a shared location in an execution's location table.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LocId(pub usize);

/// A runtime value: an integer or a pointer to a shared location.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Val {
    /// Plain integer.
    Int(i64),
    /// Address of a shared location.
    Loc(LocId),
}

impl Val {
    /// The integer payload, treating pointers as distinct non-zero values.
    ///
    /// Used for truthiness in conditionals: pointers are "true".
    pub fn truthy(self) -> bool {
        match self {
            Val::Int(i) => i != 0,
            Val::Loc(_) => true,
        }
    }

    /// The integer, if this is one.
    pub fn as_int(self) -> Option<i64> {
        match self {
            Val::Int(i) => Some(i),
            Val::Loc(_) => None,
        }
    }
}

impl fmt::Display for Val {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Val::Int(i) => write!(f, "{i}"),
            Val::Loc(l) => write!(f, "&loc{}", l.0),
        }
    }
}

/// Annotation of a read event (Table 3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ReadAnnot {
    /// `READ_ONCE` — `R[once]`.
    Once,
    /// `smp_load_acquire` — `R[acquire]`.
    Acquire,
}

/// Annotation of a write event (Table 3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum WriteAnnot {
    /// `WRITE_ONCE` — `W[once]`.
    Once,
    /// `smp_store_release` — `W[release]`.
    Release,
}

/// The payload of an event.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A read of `loc` returning `val`.
    Read { loc: LocId, val: Val, annot: ReadAnnot },
    /// A write of `val` to `loc`. `is_init` marks the implicit initialising
    /// write (herd's `IW` set); initialising writes belong to no thread.
    Write { loc: LocId, val: Val, annot: WriteAnnot, is_init: bool },
    /// A fence (including the RCU pseudo-fences of Table 4).
    Fence(FenceKind),
    /// An SRCU marker: lock/unlock of, or a grace period of, the SRCU
    /// domain named by `domain`. Grace periods of different domains are
    /// independent.
    Srcu { kind: SrcuKind, domain: LocId },
}

/// The three SRCU primitives.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SrcuKind {
    Lock,
    Unlock,
    Sync,
}

/// One node of a candidate execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Event {
    /// Dense id, the index into [`crate::Execution::events`].
    pub id: usize,
    /// Owning thread; `None` for initialising writes.
    pub thread: Option<usize>,
    /// What the event does.
    pub kind: EventKind,
}

impl Event {
    /// Whether this is a read.
    pub fn is_read(&self) -> bool {
        matches!(self.kind, EventKind::Read { .. })
    }

    /// Whether this is a write (including initialising writes).
    pub fn is_write(&self) -> bool {
        matches!(self.kind, EventKind::Write { .. })
    }

    /// Whether this is the implicit initialising write of a location.
    pub fn is_init(&self) -> bool {
        matches!(self.kind, EventKind::Write { is_init: true, .. })
    }

    /// Whether this is a memory access (read or write).
    pub fn is_mem(&self) -> bool {
        self.is_read() || self.is_write()
    }

    /// Whether this is a fence of the given kind.
    pub fn is_fence(&self, kind: FenceKind) -> bool {
        self.kind == EventKind::Fence(kind)
    }

    /// The location accessed, if this is a memory access.
    pub fn loc(&self) -> Option<LocId> {
        match self.kind {
            EventKind::Read { loc, .. } | EventKind::Write { loc, .. } => Some(loc),
            EventKind::Fence(_) | EventKind::Srcu { .. } => None,
        }
    }

    /// The value read or written, if this is a memory access.
    pub fn val(&self) -> Option<Val> {
        match self.kind {
            EventKind::Read { val, .. } | EventKind::Write { val, .. } => Some(val),
            EventKind::Fence(_) | EventKind::Srcu { .. } => None,
        }
    }

    /// The SRCU marker, if this is one.
    pub fn srcu(&self) -> Option<(SrcuKind, LocId)> {
        match self.kind {
            EventKind::Srcu { kind, domain } => Some((kind, domain)),
            _ => None,
        }
    }

    /// Whether the event is an acquire read.
    pub fn is_acquire(&self) -> bool {
        matches!(self.kind, EventKind::Read { annot: ReadAnnot::Acquire, .. })
    }

    /// Whether the event is a release write.
    pub fn is_release(&self) -> bool {
        matches!(self.kind, EventKind::Write { annot: WriteAnnot::Release, .. })
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tid = match self.thread {
            Some(t) => format!("P{t}"),
            None => "init".to_string(),
        };
        match self.kind {
            EventKind::Read { loc, val, annot } => {
                let a = match annot {
                    ReadAnnot::Once => "once",
                    ReadAnnot::Acquire => "acquire",
                };
                write!(f, "e{}:{tid}:R[{a}] loc{}={val}", self.id, loc.0)
            }
            EventKind::Write { loc, val, annot, is_init } => {
                let a = if is_init {
                    "init"
                } else {
                    match annot {
                        WriteAnnot::Once => "once",
                        WriteAnnot::Release => "release",
                    }
                };
                write!(f, "e{}:{tid}:W[{a}] loc{}={val}", self.id, loc.0)
            }
            EventKind::Fence(k) => write!(f, "e{}:{tid}:F[{}]", self.id, k.as_primitive()),
            EventKind::Srcu { kind, domain } => {
                let k = match kind {
                    SrcuKind::Lock => "srcu-lock",
                    SrcuKind::Unlock => "srcu-unlock",
                    SrcuKind::Sync => "sync-srcu",
                };
                write!(f, "e{}:{tid}:F[{k}(loc{})]", self.id, domain.0)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read(id: usize) -> Event {
        Event {
            id,
            thread: Some(0),
            kind: EventKind::Read { loc: LocId(0), val: Val::Int(1), annot: ReadAnnot::Once },
        }
    }

    #[test]
    fn predicates() {
        let r = read(0);
        assert!(r.is_read() && r.is_mem() && !r.is_write() && !r.is_init());
        assert_eq!(r.loc(), Some(LocId(0)));
        assert_eq!(r.val(), Some(Val::Int(1)));
        let f = Event { id: 1, thread: Some(0), kind: EventKind::Fence(FenceKind::Mb) };
        assert!(f.is_fence(FenceKind::Mb) && !f.is_fence(FenceKind::Rmb) && !f.is_mem());
        assert_eq!(f.loc(), None);
    }

    #[test]
    fn truthiness() {
        assert!(!Val::Int(0).truthy());
        assert!(Val::Int(-3).truthy());
        assert!(Val::Loc(LocId(2)).truthy());
        assert_eq!(Val::Loc(LocId(2)).as_int(), None);
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(read(0).to_string(), "e0:P0:R[once] loc0=1");
    }
}
