//! The consistency-model interface and test-level verdict checking.

use crate::enumerate::{for_each_execution, EnumError, EnumOptions};
use crate::execution::Execution;
use crate::facts::{ExecFacts, FactsCache};
use lkmm_core::budget::StepFuel;
use lkmm_litmus::ast::Test;
use lkmm_litmus::cond::Quantifier;
use std::fmt;
use std::sync::Arc;

/// An axiomatic consistency model: a predicate on candidate executions.
///
/// Models are required to be [`Sync`] so one model instance can be shared
/// by the parallel check pipeline's workers. Every model in this
/// workspace is a plain immutable struct, so the bound costs nothing.
pub trait ConsistencyModel: Sync {
    /// Short model name, e.g. `"LKMM"`.
    fn name(&self) -> &str;

    /// Whether the model allows this candidate execution.
    fn allows(&self, x: &Execution) -> bool;

    /// As [`ConsistencyModel::allows`], reading shared derived relations
    /// from `facts` instead of recomputing them. Models whose axioms use
    /// the common base relations (`fr`, `com`, fence sets, …) override
    /// this so N models checking one candidate share one copy of each;
    /// the default ignores the facts.
    fn allows_with(&self, x: &Execution, facts: &ExecFacts<'_>) -> bool {
        let _ = facts;
        self.allows(x)
    }

    /// A human-readable reason the execution is forbidden, if it is.
    ///
    /// The default implementation reports only allow/forbid.
    fn explain(&self, x: &Execution) -> Option<String> {
        if self.allows(x) {
            None
        } else {
            Some(format!("forbidden by {}", self.name()))
        }
    }

    /// Relative cost of evaluating one candidate under this model, used
    /// by the pipeline to size candidate batches: cheap models get large
    /// batches (amortising queue traffic), expensive ones stay
    /// fine-grained so work spreads across workers. Unitless; `1` is a
    /// single-pass axiomatic check. Interpreted models (the cat
    /// evaluator) and deep derived-relation stacks (native LKMM) return
    /// more.
    fn eval_cost_hint(&self) -> usize {
        1
    }

    /// Open a stateful per-worker evaluation session, if the model has
    /// one. Sessions may carry mutable caches keyed on the candidate's
    /// shared pre-execution (e.g. the cat interpreter's static
    /// environment), which a `&self` [`ConsistencyModel::allows`] cannot.
    ///
    /// Callers should go through [`open_session`], which falls back to a
    /// stateless pass-through for models that return `None` here.
    fn session(&self) -> Option<Box<dyn ModelSession + '_>> {
        None
    }
}

/// Model evaluation stopped because its step fuel ran out. Not an
/// evaluation *error*: the model is fine, the budget is spent. See
/// [`ModelSession::try_allows`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EvalStop;

/// A stateful evaluation handle used by one checking thread. Unlike
/// [`ConsistencyModel::allows`], [`ModelSession::allows`] takes `&mut
/// self`, so implementations can cache work shared by the candidates of
/// one litmus test (static event sets, compiled environments, …) without
/// interior mutability. Sessions are cheap to create: the pipeline opens
/// one per worker.
pub trait ModelSession {
    /// Whether the model allows this candidate execution.
    fn allows(&mut self, x: &Execution) -> bool;

    /// As [`ModelSession::allows`], reading shared derived relations
    /// from `facts`. The default ignores the facts.
    fn allows_with(&mut self, x: &Execution, facts: &ExecFacts<'_>) -> bool {
        let _ = facts;
        self.allows(x)
    }

    /// Budget-aware variant of [`ModelSession::allows`]: returns
    /// `Err(EvalStop)` when the session's installed [`StepFuel`] runs
    /// dry mid-evaluation. The default ignores fuel entirely, which is
    /// correct for models whose per-candidate cost is trivially bounded.
    fn try_allows(&mut self, x: &Execution) -> Result<bool, EvalStop> {
        Ok(self.allows(x))
    }

    /// Budget-aware, facts-sharing evaluation — what the pipeline calls
    /// for every candidate. The default falls back to
    /// [`ModelSession::try_allows`], preserving the fuel behaviour of
    /// sessions that predate the facts layer.
    fn try_allows_with(
        &mut self,
        x: &Execution,
        facts: &ExecFacts<'_>,
    ) -> Result<bool, EvalStop> {
        let _ = facts;
        self.try_allows(x)
    }

    /// Hand the session a shared evaluation-step fuel tank. Sessions
    /// that meter their work (the cat interpreter, the native LKMM)
    /// consume from it inside [`ModelSession::try_allows`]; the default
    /// discards it.
    fn install_step_fuel(&mut self, _fuel: Arc<StepFuel>) {}
}

/// Open an evaluation session for `model`: its own caching session if it
/// provides one, otherwise a stateless adapter over
/// [`ConsistencyModel::allows`].
pub fn open_session(model: &dyn ConsistencyModel) -> Box<dyn ModelSession + '_> {
    model.session().unwrap_or_else(|| Box::new(StatelessSession(model)))
}

struct StatelessSession<'a>(&'a dyn ConsistencyModel);

impl ModelSession for StatelessSession<'_> {
    fn allows(&mut self, x: &Execution) -> bool {
        self.0.allows(x)
    }

    fn allows_with(&mut self, x: &Execution, facts: &ExecFacts<'_>) -> bool {
        self.0.allows_with(x, facts)
    }

    fn try_allows_with(
        &mut self,
        x: &Execution,
        facts: &ExecFacts<'_>,
    ) -> Result<bool, EvalStop> {
        Ok(self.0.allows_with(x, facts))
    }
}

/// Allow/Forbid verdict for a litmus test's `exists` proposition, as in
/// Table 5 of the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Verdict {
    /// Some model-allowed execution satisfies the proposition.
    Allowed,
    /// No model-allowed execution satisfies it.
    Forbidden,
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Allowed => write!(f, "Allow"),
            Verdict::Forbidden => write!(f, "Forbid"),
        }
    }
}

/// Result of checking one litmus test against one model.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TestResult {
    /// Whether the condition's proposition is observable in some allowed
    /// execution (the paper's Allow/Forbid).
    pub verdict: Verdict,
    /// Whether the *quantified* condition holds: `exists` needs a
    /// satisfying allowed execution, `~exists` needs none, `forall` needs
    /// all allowed executions to satisfy the proposition.
    pub condition_holds: bool,
    /// Candidate executions enumerated.
    pub candidates: usize,
    /// Candidates allowed by the model.
    pub allowed: usize,
    /// Allowed candidates satisfying the proposition.
    pub witnesses: usize,
}

/// Check `test` against `model`, enumerating all candidate executions.
///
/// # Errors
///
/// Propagates [`EnumError`] from the enumerator.
///
/// # Examples
///
/// ```
/// use lkmm_exec::model::{check_test, ConsistencyModel, Verdict};
/// use lkmm_exec::{enumerate::EnumOptions, Execution};
///
/// /// A model that allows everything.
/// struct Anything;
/// impl ConsistencyModel for Anything {
///     fn name(&self) -> &str { "anything" }
///     fn allows(&self, _: &Execution) -> bool { true }
/// }
///
/// let test = lkmm_litmus::library::by_name("SB").unwrap().test();
/// let r = check_test(&Anything, &test, &EnumOptions::default()).unwrap();
/// assert_eq!(r.verdict, Verdict::Allowed); // SB is observable without axioms
/// ```
pub fn check_test(
    model: &dyn ConsistencyModel,
    test: &Test,
    opts: &EnumOptions,
) -> Result<TestResult, EnumError> {
    let mut session = open_session(model);
    let mut cache = FactsCache::new();
    let mut candidates = 0usize;
    let mut allowed = 0usize;
    let mut witnesses = 0usize;
    let mut all_allowed_satisfy = true;
    for_each_execution(test, opts, &mut |x| {
        candidates += 1;
        let facts = cache.facts(x);
        if session.allows_with(x, &facts) {
            allowed += 1;
            if x.satisfies_prop(&test.condition.prop) {
                witnesses += 1;
            } else {
                all_allowed_satisfy = false;
            }
        }
    })?;
    let verdict = if witnesses > 0 { Verdict::Allowed } else { Verdict::Forbidden };
    let condition_holds = match test.condition.quantifier {
        Quantifier::Exists => witnesses > 0,
        Quantifier::NotExists => witnesses == 0,
        Quantifier::Forall => all_allowed_satisfy,
    };
    Ok(TestResult { verdict, condition_holds, candidates, allowed, witnesses })
}

/// The model with no axioms beyond coherence pruning: allows every
/// candidate execution. Useful as a baseline and in tests.
#[derive(Clone, Copy, Debug, Default)]
pub struct AllowAll;

impl ConsistencyModel for AllowAll {
    fn name(&self) -> &str {
        "allow-all"
    }

    fn allows(&self, _: &Execution) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lkmm_litmus::library;

    #[test]
    fn allow_all_observes_every_relaxed_outcome() {
        for name in ["LB", "SB", "MP", "WRC", "RWC"] {
            let t = library::by_name(name).unwrap().test();
            let r = check_test(&AllowAll, &t, &EnumOptions::default()).unwrap();
            assert_eq!(r.verdict, Verdict::Allowed, "{name}");
            assert!(r.allowed == r.candidates);
        }
    }

    #[test]
    fn quantifier_semantics() {
        // `~exists` on an observable outcome does not hold.
        let mut t = library::by_name("SB").unwrap().test();
        t.condition.quantifier = Quantifier::NotExists;
        let r = check_test(&AllowAll, &t, &EnumOptions::default()).unwrap();
        assert_eq!(r.verdict, Verdict::Allowed);
        assert!(!r.condition_holds);
        // `forall` fails because not every execution ends in the SB state.
        t.condition.quantifier = Quantifier::Forall;
        let r = check_test(&AllowAll, &t, &EnumOptions::default()).unwrap();
        assert!(!r.condition_holds);
    }
}
