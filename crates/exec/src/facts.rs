//! Shared, lazily-memoised derived relations for candidate executions.
//!
//! Every consistency model in this workspace is a set of axioms over the
//! same base relations: `fr`, `com`, `po-loc`, `loc`, `int`/`ext`, fence
//! and acquire/release sets, RCU critical sections. Before this layer
//! each checker recomputed those privately per candidate — seven models
//! over one candidate meant seven `fr = rf⁻¹ ; co` sequences and seven
//! `O(n²)` `loc`/`int` rebuilds. [`ExecFacts`] computes each fact at
//! most once per candidate and lends it out by reference, so N models
//! checking the same execution share one copy of everything.
//!
//! The facts split into two tiers, mirroring how executions share their
//! pre-witness structure behind `Arc`s:
//!
//! * [`StaticExecFacts`] — facts that depend only on the pre-execution
//!   (events, `po`, dependencies): `loc`, `int`/`ext`, `po-loc`, event
//!   sets, fence relations, `gp`, `crit`, SRCU structure. All candidates
//!   of one thread-outcome combination share these; a [`FactsCache`]
//!   reuses them across candidates, keyed on the identity of the shared
//!   event list (`Arc::ptr_eq`), exactly like the model sessions' own
//!   per-pre-execution caches.
//! * [`ExecFacts`] — the witness-dependent tier (`fr`, `com`, `rfe`,
//!   `fre ; coe`, the shared coherence/atomicity axiom verdicts), fresh
//!   per candidate, borrowing the static tier.
//!
//! Everything is single-threaded by design (`Rc` + `OnceCell`): the
//! pipeline gives each worker its own [`FactsCache`], the same way each
//! worker owns its model sessions.

use crate::event::{Event, LocId};
use crate::execution::Execution;
use lkmm_litmus::FenceKind;
use lkmm_relation::{acquire_rel, ArenaRel, EventSet, Relation, SharedArena};
use std::cell::OnceCell;
use std::rc::Rc;
use std::sync::Arc;

/// Number of [`FenceKind`] variants (the per-kind fact tables are
/// fixed-size arrays indexed by [`fence_index`]).
const N_FENCE_KINDS: usize = 7;

/// Dense index of a fence kind into the per-kind fact tables.
fn fence_index(kind: FenceKind) -> usize {
    match kind {
        FenceKind::Rmb => 0,
        FenceKind::Wmb => 1,
        FenceKind::Mb => 2,
        FenceKind::RbDep => 3,
        FenceKind::RcuLock => 4,
        FenceKind::RcuUnlock => 5,
        FenceKind::SyncRcu => 6,
    }
}

/// The witness-independent facts of one SRCU domain.
#[derive(Clone, Debug)]
pub struct SrcuDomainFacts {
    /// The domain these facts describe.
    pub domain: LocId,
    /// `gp` for this domain: `(po ∩ (_ × SyncSrcu_d)) ; po?`.
    pub gp: Relation,
    /// Outermost lock/unlock matching for this domain.
    pub crit: Relation,
}

/// Lazily-computed facts shared by every candidate of one pre-execution.
///
/// Each field is computed on first access — through an [`ExecFacts`]
/// borrowing this tier — and memoised for every later candidate and
/// every later model. A fresh instance knows nothing; it fills in from
/// whichever execution first asks, which is sound because all candidates
/// sharing it (see [`FactsCache`]) share the identical `Arc`'d
/// pre-execution structure.
#[derive(Debug, Default)]
pub struct StaticExecFacts {
    loc_rel: OnceCell<Relation>,
    int: OnceCell<Relation>,
    ext: OnceCell<Relation>,
    po_loc: OnceCell<Arc<Relation>>,
    reads: OnceCell<EventSet>,
    writes: OnceCell<EventSet>,
    init_writes: OnceCell<EventSet>,
    mem: OnceCell<EventSet>,
    acquires: OnceCell<EventSet>,
    releases: OnceCell<EventSet>,
    fences: [OnceCell<EventSet>; N_FENCE_KINDS],
    fencerels: [OnceCell<Relation>; N_FENCE_KINDS],
    gp: OnceCell<Relation>,
    crit: OnceCell<Relation>,
    srcu: OnceCell<Vec<SrcuDomainFacts>>,
}

/// All derived relations of one candidate execution, computed at most
/// once and borrowed by every checker.
///
/// Construct with [`ExecFacts::new`] for one-off use, or through a
/// [`FactsCache`] to share the static tier across the candidates of a
/// pre-execution. Accessors return references; nothing is recomputed on
/// a second call, whether it comes from the same model or a different
/// one.
#[derive(Debug)]
pub struct ExecFacts<'x> {
    x: &'x Execution,
    statics: Rc<StaticExecFacts>,
    arena: Option<SharedArena>,
    fr: OnceCell<ArenaRel>,
    com: OnceCell<ArenaRel>,
    rfi: OnceCell<ArenaRel>,
    rfe: OnceCell<ArenaRel>,
    coe: OnceCell<ArenaRel>,
    fre: OnceCell<ArenaRel>,
    fre_seq_coe: OnceCell<ArenaRel>,
    sc_per_loc_ok: OnceCell<bool>,
    atomicity_ok: OnceCell<bool>,
}

impl<'x> ExecFacts<'x> {
    /// Facts for `x` with a fresh static tier. Use a [`FactsCache`] when
    /// checking many candidates of one test.
    pub fn new(x: &'x Execution) -> Self {
        Self::with_statics(x, Rc::new(StaticExecFacts::default()), None)
    }

    fn with_statics(
        x: &'x Execution,
        statics: Rc<StaticExecFacts>,
        arena: Option<SharedArena>,
    ) -> Self {
        ExecFacts {
            x,
            statics,
            arena,
            fr: OnceCell::new(),
            com: OnceCell::new(),
            rfi: OnceCell::new(),
            rfe: OnceCell::new(),
            coe: OnceCell::new(),
            fre: OnceCell::new(),
            fre_seq_coe: OnceCell::new(),
            sc_per_loc_ok: OnceCell::new(),
            atomicity_ok: OnceCell::new(),
        }
    }

    /// The execution these facts describe.
    pub fn execution(&self) -> &'x Execution {
        self.x
    }

    /// The arena backing the witness tier, when these facts came from a
    /// [`FactsCache::with_arena`] cache. Checkers thread this into their
    /// own per-candidate relation algebra so the whole evaluation of one
    /// candidate draws from a single per-worker pool.
    pub fn arena(&self) -> Option<&SharedArena> {
        self.arena.as_ref()
    }

    // --- static tier: pre-execution facts ---

    /// `loc`: pairs of memory accesses to the same location.
    pub fn loc_rel(&self) -> &Relation {
        self.statics.loc_rel.get_or_init(|| self.x.loc_rel())
    }

    /// `int`: same-thread pairs (reflexive).
    pub fn int_rel(&self) -> &Relation {
        self.statics.int.get_or_init(|| self.x.int_rel())
    }

    /// `ext = ~int`.
    pub fn ext_rel(&self) -> &Relation {
        self.statics.ext.get_or_init(|| self.int_rel().complement())
    }

    /// `po-loc`: program order restricted to same-location accesses
    /// (shared with the execution's precomputed relation, not rebuilt).
    pub fn po_loc(&self) -> &Relation {
        self.statics.po_loc.get_or_init(|| Arc::clone(&self.x.po_loc))
    }

    /// All reads (`R`).
    pub fn reads(&self) -> &EventSet {
        self.statics.reads.get_or_init(|| self.x.reads())
    }

    /// All writes including initialising writes (`W`).
    pub fn writes(&self) -> &EventSet {
        self.statics.writes.get_or_init(|| self.x.writes())
    }

    /// The initialising writes (`IW`).
    pub fn init_writes(&self) -> &EventSet {
        self.statics.init_writes.get_or_init(|| self.x.init_writes())
    }

    /// All memory accesses (`M = R ∪ W`).
    pub fn mem(&self) -> &EventSet {
        self.statics.mem.get_or_init(|| self.x.mem())
    }

    /// Acquire reads.
    pub fn acquires(&self) -> &EventSet {
        self.statics.acquires.get_or_init(|| self.x.acquires())
    }

    /// Release writes.
    pub fn releases(&self) -> &EventSet {
        self.statics.releases.get_or_init(|| self.x.releases())
    }

    /// Fences of one kind.
    pub fn fences(&self, kind: FenceKind) -> &EventSet {
        self.statics.fences[fence_index(kind)].get_or_init(|| self.x.fences(kind))
    }

    /// `fencerel(kind) = po ; [F kind] ; po`.
    pub fn fencerel(&self, kind: FenceKind) -> &Relation {
        self.statics.fencerels[fence_index(kind)].get_or_init(|| {
            let f = self.fences(kind).as_identity();
            self.x.po.seq(&f).seq(&self.x.po)
        })
    }

    /// The paper's `gp` relation: `(po ∩ (_ × Sync)) ; po?`.
    pub fn gp(&self) -> &Relation {
        self.statics.gp.get_or_init(|| {
            let sync = self.fences(FenceKind::SyncRcu).as_identity();
            self.x.po.seq(&sync).seq(&self.x.po.reflexive())
        })
    }

    /// The `crit` relation: outermost RCU lock/unlock matching.
    ///
    /// # Panics
    ///
    /// Panics on unbalanced RCU sections, like [`Execution::crit`]; the
    /// enumerator rejects such programs first.
    pub fn crit(&self) -> &Relation {
        self.statics.crit.get_or_init(|| self.x.crit())
    }

    /// Per-domain SRCU facts, one entry per domain in
    /// [`Execution::srcu_domains`] order. Empty for SRCU-free programs.
    ///
    /// # Panics
    ///
    /// Panics on unbalanced SRCU sections, like [`Execution::srcu_crit`].
    pub fn srcu(&self) -> &[SrcuDomainFacts] {
        self.statics.srcu.get_or_init(|| {
            self.x
                .srcu_domains()
                .into_iter()
                .map(|domain| SrcuDomainFacts {
                    domain,
                    gp: self.x.srcu_gp(domain),
                    crit: self.x.srcu_crit(domain),
                })
                .collect()
        })
    }

    // --- witness tier: rf/co-dependent facts ---
    //
    // All witness facts are computed with the in-place kernel variants
    // into arena-acquired storage, so a pooled worker derives them
    // allocation-free in steady state; without an arena the handles are
    // plain owned relations and the cost matches the old code.

    /// From-reads: `fr = rf⁻¹ ; co`.
    pub fn fr(&self) -> &Relation {
        self.fr.get_or_init(|| {
            let n = self.x.rf.universe();
            let pool = self.arena.as_ref();
            let mut inv = acquire_rel(pool, n);
            self.x.rf.inverse_into(&mut inv);
            let mut fr = acquire_rel(pool, n);
            inv.seq_into(&self.x.co, &mut fr);
            fr
        })
    }

    /// Communications: `com = rf ∪ co ∪ fr`.
    pub fn com(&self) -> &Relation {
        self.com.get_or_init(|| {
            let mut com = acquire_rel(self.arena.as_ref(), self.x.rf.universe());
            com.copy_from(&self.x.rf);
            com.union_in_place(&self.x.co);
            com.union_in_place(self.fr());
            com
        })
    }

    /// Internal reads-from.
    pub fn rfi(&self) -> &Relation {
        self.rfi.get_or_init(|| {
            let mut rfi = acquire_rel(self.arena.as_ref(), self.x.rf.universe());
            rfi.copy_from(&self.x.rf);
            rfi.intersection_in_place(self.int_rel());
            rfi
        })
    }

    /// External reads-from.
    pub fn rfe(&self) -> &Relation {
        self.rfe.get_or_init(|| {
            let mut rfe = acquire_rel(self.arena.as_ref(), self.x.rf.universe());
            rfe.copy_from(&self.x.rf);
            rfe.intersection_in_place(self.ext_rel());
            rfe
        })
    }

    /// External coherence.
    pub fn coe(&self) -> &Relation {
        self.coe.get_or_init(|| {
            let mut coe = acquire_rel(self.arena.as_ref(), self.x.co.universe());
            coe.copy_from(&self.x.co);
            coe.intersection_in_place(self.ext_rel());
            coe
        })
    }

    /// External from-reads.
    pub fn fre(&self) -> &Relation {
        self.fre.get_or_init(|| {
            let mut fre = acquire_rel(self.arena.as_ref(), self.x.rf.universe());
            fre.copy_from(self.fr());
            fre.intersection_in_place(self.ext_rel());
            fre
        })
    }

    /// `fre ; coe` — the sequence at the heart of every model's RMW
    /// atomicity axiom (`empty(rmw ∩ (fre ; coe))`).
    pub fn fre_seq_coe(&self) -> &Relation {
        self.fre_seq_coe.get_or_init(|| {
            let mut out = acquire_rel(self.arena.as_ref(), self.x.rf.universe());
            self.fre().seq_into(self.coe(), &mut out);
            out
        })
    }

    /// Sequential consistency per variable: `acyclic(po-loc ∪ com)`.
    /// Shared verbatim by the LKMM's Scpv axiom and the TSO / ARMv8 /
    /// Power coherence preludes.
    pub fn sc_per_loc_ok(&self) -> bool {
        *self.sc_per_loc_ok.get_or_init(|| {
            let mut u = acquire_rel(self.arena.as_ref(), self.x.rf.universe());
            u.copy_from(self.po_loc());
            u.union_in_place(self.com());
            u.is_acyclic()
        })
    }

    /// RMW atomicity: `empty(rmw ∩ (fre ; coe))`. Shared by every model
    /// with an atomicity axiom.
    pub fn atomicity_ok(&self) -> bool {
        *self
            .atomicity_ok
            .get_or_init(|| !self.x.rmw.intersects(self.fre_seq_coe()))
    }
}

/// A per-worker cache lending [`ExecFacts`] whose static tier is reused
/// across all candidates of one pre-execution, keyed on the identity of
/// the shared event list. The held `Arc` keeps the allocation alive, so
/// pointer identity cannot be recycled while the entry exists — the same
/// pattern the model sessions use for their own per-test caches.
#[derive(Debug, Default)]
pub struct FactsCache {
    statics: Option<(Arc<Vec<Event>>, Rc<StaticExecFacts>)>,
    arena: Option<SharedArena>,
}

impl FactsCache {
    /// An empty cache. Facts from this cache allocate their witness tier
    /// per candidate — the simple reference behaviour used by
    /// `check_test` and the differential oracles.
    pub fn new() -> Self {
        FactsCache::default()
    }

    /// An empty cache whose facts draw witness-tier storage from
    /// `arena`. The pipeline gives each worker one of these so steady-
    /// state candidate checking recycles relation storage instead of
    /// allocating it.
    pub fn with_arena(arena: SharedArena) -> Self {
        FactsCache { statics: None, arena: Some(arena) }
    }

    /// The arena backing this cache's facts, if any.
    pub fn arena(&self) -> Option<&SharedArena> {
        self.arena.as_ref()
    }

    /// Facts for `x`, reusing the cached static tier when `x` shares its
    /// pre-execution with the previous candidate.
    pub fn facts<'x>(&mut self, x: &'x Execution) -> ExecFacts<'x> {
        let hit = self
            .statics
            .as_ref()
            .is_some_and(|(events, _)| Arc::ptr_eq(events, &x.events));
        if !hit {
            self.statics =
                Some((Arc::clone(&x.events), Rc::new(StaticExecFacts::default())));
        }
        let statics = Rc::clone(&self.statics.as_ref().expect("cache filled above").1);
        ExecFacts::with_statics(x, statics, self.arena.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::{enumerate, EnumOptions};
    use lkmm_litmus::library;

    fn candidates(name: &str) -> Vec<Execution> {
        let t = library::by_name(name).unwrap().test();
        enumerate(&t, &EnumOptions::default()).unwrap()
    }

    #[test]
    fn facts_match_the_execution_methods() {
        for name in ["SB", "MP+wmb+rmb", "RCU-MP"] {
            for x in candidates(name) {
                let f = ExecFacts::new(&x);
                assert_eq!(f.loc_rel(), &x.loc_rel(), "{name}: loc");
                assert_eq!(f.int_rel(), &x.int_rel(), "{name}: int");
                assert_eq!(f.ext_rel(), &x.ext_rel(), "{name}: ext");
                assert_eq!(f.po_loc(), &x.po_loc(), "{name}: po-loc");
                assert_eq!(f.fr(), &x.fr(), "{name}: fr");
                assert_eq!(f.com(), &x.com(), "{name}: com");
                assert_eq!(f.rfi(), &x.rfi(), "{name}: rfi");
                assert_eq!(f.rfe(), &x.rfe(), "{name}: rfe");
                assert_eq!(f.coe(), &x.coe(), "{name}: coe");
                assert_eq!(f.fre(), &x.fre(), "{name}: fre");
                assert_eq!(f.fre_seq_coe(), &x.fre().seq(&x.coe()), "{name}");
                assert_eq!(f.gp(), &x.gp(), "{name}: gp");
                assert_eq!(f.crit(), &x.crit(), "{name}: crit");
                assert_eq!(f.reads(), &x.reads(), "{name}: R");
                assert_eq!(f.writes(), &x.writes(), "{name}: W");
                assert_eq!(f.mem(), &x.mem(), "{name}: M");
                assert_eq!(f.init_writes(), &x.init_writes(), "{name}: IW");
                assert_eq!(f.acquires(), &x.acquires(), "{name}: Acquire");
                assert_eq!(f.releases(), &x.releases(), "{name}: Release");
                for kind in [
                    FenceKind::Rmb,
                    FenceKind::Wmb,
                    FenceKind::Mb,
                    FenceKind::RbDep,
                    FenceKind::RcuLock,
                    FenceKind::RcuUnlock,
                    FenceKind::SyncRcu,
                ] {
                    assert_eq!(f.fences(kind), &x.fences(kind), "{name}: F[{kind:?}]");
                    assert_eq!(f.fencerel(kind), &x.fencerel(kind), "{name}: {kind:?}");
                }
                assert_eq!(
                    f.sc_per_loc_ok(),
                    x.po_loc().union(&x.com()).is_acyclic(),
                    "{name}: scpv"
                );
                assert_eq!(
                    f.atomicity_ok(),
                    x.rmw.intersection(&x.fre().seq(&x.coe())).is_empty(),
                    "{name}: at"
                );
            }
        }
    }

    #[test]
    fn cache_shares_statics_within_a_pre_execution() {
        let mut cache = FactsCache::new();
        // Two writers, no reads: one pre-execution, two coherence orders.
        let t = lkmm_litmus::parse(
            "C coww\n{ x=0; }\nP0(int *x) { WRITE_ONCE(*x, 1); }\n\
             P1(int *x) { WRITE_ONCE(*x, 2); }\nexists (x=1)",
        )
        .unwrap();
        let xs = enumerate(&t, &EnumOptions::default()).unwrap();
        // Force loc on the first candidate, then confirm the second
        // candidate of the same pre-execution sees it pre-computed.
        let same_pre: Vec<&Execution> = xs
            .iter()
            .filter(|x| Arc::ptr_eq(&x.events, &xs[0].events))
            .collect();
        assert!(same_pre.len() >= 2, "coww pre-execution has several witnesses");
        {
            let f = cache.facts(same_pre[0]);
            let _ = f.loc_rel();
        }
        let statics = Rc::clone(&cache.statics.as_ref().unwrap().1);
        assert!(statics.loc_rel.get().is_some());
        {
            let f = cache.facts(same_pre[1]);
            assert!(Rc::ptr_eq(&f.statics, &statics), "static tier is shared");
        }
        // A different pre-execution gets a fresh tier.
        if let Some(other) = xs.iter().find(|x| !Arc::ptr_eq(&x.events, &xs[0].events)) {
            let f = cache.facts(other);
            assert!(!Rc::ptr_eq(&f.statics, &statics));
        }
    }

    #[test]
    fn arena_backed_facts_match_the_allocating_facts() {
        let arena = lkmm_relation::shared_arena();
        let mut pooled = FactsCache::with_arena(Rc::clone(&arena));
        let mut plain = FactsCache::new();
        for x in candidates("MP+wmb+rmb") {
            let p = pooled.facts(&x);
            let f = plain.facts(&x);
            assert!(p.arena().is_some() && f.arena().is_none());
            assert_eq!(p.fr(), f.fr());
            assert_eq!(p.com(), f.com());
            assert_eq!(p.rfi(), f.rfi());
            assert_eq!(p.rfe(), f.rfe());
            assert_eq!(p.coe(), f.coe());
            assert_eq!(p.fre(), f.fre());
            assert_eq!(p.fre_seq_coe(), f.fre_seq_coe());
            assert_eq!(p.sc_per_loc_ok(), f.sc_per_loc_ok());
            assert_eq!(p.atomicity_ok(), f.atomicity_ok());
        }
        assert!(arena.borrow().acquires() > 0, "pooled facts draw from the arena");
        assert!(
            arena.borrow().reuses() > 0,
            "storage released by one candidate serves the next"
        );
    }

    #[test]
    fn srcu_facts_cover_every_domain() {
        let t = lkmm_litmus::parse(
            "C srcu-facts\n{ ss=0; x=0; }\n\
             P0(srcu_struct *ss, int *x) { int r0; srcu_read_lock(ss); \
             r0 = READ_ONCE(*x); srcu_read_unlock(ss); }\n\
             P1(srcu_struct *ss, int *x) { WRITE_ONCE(*x, 1); synchronize_srcu(ss); }\n\
             exists (0:r0=0)",
        )
        .unwrap();
        let xs = enumerate(&t, &EnumOptions::default()).unwrap();
        let x = &xs[0];
        let f = ExecFacts::new(x);
        let domains = x.srcu_domains();
        assert_eq!(f.srcu().len(), domains.len());
        for (facts, &d) in f.srcu().iter().zip(&domains) {
            assert_eq!(facts.domain, d);
            assert_eq!(facts.gp, x.srcu_gp(d));
            assert_eq!(facts.crit, x.srcu_crit(d));
        }
    }
}
