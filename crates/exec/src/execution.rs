//! Candidate executions and their derived relations.

use crate::event::{Event, EventKind, LocId, SrcuKind, Val};
use lkmm_litmus::cond::{CondVal, Prop, StateTerm};
use lkmm_litmus::FenceKind;
use lkmm_relation::{EventSet, Relation};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// One candidate execution of a litmus test: events plus the abstract
/// execution relations (`po`, `addr`, `data`, `ctrl`, `rmw`) and the
/// execution witness (`rf`, `co`).
///
/// All the derived relations used by cat models are provided as methods
/// (`fr`, `po_loc`, `rfe`, [`Execution::fencerel`], the RCU `crit`
/// matching, …). Events are densely numbered: initialising writes first,
/// then each thread's events in program order.
///
/// The pre-witness part (everything except `rf`/`co`) is shared between
/// the many candidates of one thread-outcome combination behind `Arc`s:
/// cloning a candidate — and sending it to a pipeline worker — copies two
/// bitset relations and a handful of reference counts, not the whole
/// event structure. The shared `events` allocation also gives model
/// implementations a stable identity (`Arc::as_ptr`) to key per-test
/// caches on.
#[derive(Clone, Debug)]
pub struct Execution {
    /// Location names; `LocId(i)` names `locs[i]`.
    pub locs: Arc<Vec<String>>,
    /// All events. `events[i].id == i`.
    pub events: Arc<Vec<Event>>,
    /// Number of program threads.
    pub n_threads: usize,
    /// Program order (transitive, per thread).
    pub po: Arc<Relation>,
    /// Address dependencies (from reads).
    pub addr: Arc<Relation>,
    /// Data dependencies (from reads to writes).
    pub data: Arc<Relation>,
    /// Control dependencies (from reads).
    pub ctrl: Arc<Relation>,
    /// Read-modify-write pairing.
    pub rmw: Arc<Relation>,
    /// Reads-from: one write per read.
    pub rf: Relation,
    /// Coherence order: total per location, initialising write first
    /// (stored transitively closed).
    pub co: Relation,
    /// `po ∩ loc`, precomputed by the enumerator and shared (like the
    /// other pre-witness relations) across every candidate of one
    /// thread-outcome combination.
    pub po_loc: Arc<Relation>,
    /// Final register values, per thread.
    pub final_regs: Arc<Vec<BTreeMap<String, Val>>>,
}

impl Execution {
    /// Number of events (the relation universe).
    pub fn universe(&self) -> usize {
        self.events.len()
    }

    /// Look up a location id by name.
    pub fn loc_id(&self, name: &str) -> Option<LocId> {
        self.locs.iter().position(|l| l == name).map(LocId)
    }

    /// Events selected by a predicate, as a set.
    pub fn events_where(&self, pred: impl Fn(&Event) -> bool) -> EventSet {
        EventSet::from_iter(
            self.universe(),
            self.events.iter().filter(|e| pred(e)).map(|e| e.id),
        )
    }

    /// All reads (`R`).
    pub fn reads(&self) -> EventSet {
        self.events_where(Event::is_read)
    }

    /// All writes including initialising writes (`W`).
    pub fn writes(&self) -> EventSet {
        self.events_where(Event::is_write)
    }

    /// The initialising writes (`IW`).
    pub fn init_writes(&self) -> EventSet {
        self.events_where(Event::is_init)
    }

    /// All memory accesses (`M = R ∪ W`).
    pub fn mem(&self) -> EventSet {
        self.events_where(Event::is_mem)
    }

    /// Fences of one kind.
    pub fn fences(&self, kind: FenceKind) -> EventSet {
        self.events_where(|e| e.is_fence(kind))
    }

    /// Acquire reads.
    pub fn acquires(&self) -> EventSet {
        self.events_where(Event::is_acquire)
    }

    /// Release writes.
    pub fn releases(&self) -> EventSet {
        self.events_where(Event::is_release)
    }

    /// `loc`: pairs of memory accesses to the same location.
    pub fn loc_rel(&self) -> Relation {
        let mut r = Relation::empty(self.universe());
        for a in self.events.iter() {
            for b in self.events.iter() {
                if let (Some(la), Some(lb)) = (a.loc(), b.loc()) {
                    if la == lb {
                        r.insert(a.id, b.id);
                    }
                }
            }
        }
        r
    }

    /// `int`: pairs of events on the same thread (reflexive). Initialising
    /// writes belong to no thread, so they are `int` only with themselves.
    pub fn int_rel(&self) -> Relation {
        let mut r = Relation::identity(self.universe());
        for a in self.events.iter() {
            for b in self.events.iter() {
                if a.thread.is_some() && a.thread == b.thread {
                    r.insert(a.id, b.id);
                }
            }
        }
        r
    }

    /// `ext = ~int`.
    pub fn ext_rel(&self) -> Relation {
        self.int_rel().complement()
    }

    /// From-reads: `fr = rf⁻¹ ; co`.
    pub fn fr(&self) -> Relation {
        self.rf.inverse().seq(&self.co)
    }

    /// Communications: `com = rf ∪ co ∪ fr`.
    pub fn com(&self) -> Relation {
        self.rf.union(&self.co).union(&self.fr())
    }

    /// Program order restricted to same-location accesses (a clone of
    /// the shared precomputed relation).
    pub fn po_loc(&self) -> Relation {
        (*self.po_loc).clone()
    }

    /// Internal reads-from.
    pub fn rfi(&self) -> Relation {
        self.rf.intersection(&self.int_rel())
    }

    /// External reads-from.
    pub fn rfe(&self) -> Relation {
        self.rf.intersection(&self.ext_rel())
    }

    /// External coherence.
    pub fn coe(&self) -> Relation {
        self.co.intersection(&self.ext_rel())
    }

    /// External from-reads.
    pub fn fre(&self) -> Relation {
        self.fr().intersection(&self.ext_rel())
    }

    /// `fencerel(kind)`: pairs `(a, b)` with a fence of `kind` between them
    /// in program order (`po ; [F kind] ; po`).
    pub fn fencerel(&self, kind: FenceKind) -> Relation {
        let f = self.fences(kind).as_identity();
        self.po.seq(&f).seq(&self.po)
    }

    /// The paper's `gp` relation (Figure 12):
    /// `(po ∩ (_ × Sync)) ; po?` — pairs separated by a `synchronize_rcu`,
    /// or whose second element is the `synchronize_rcu` itself.
    pub fn gp(&self) -> Relation {
        let sync = self.fences(FenceKind::SyncRcu).as_identity();
        self.po.seq(&sync).seq(&self.po.reflexive())
    }

    /// The `crit` relation: each *outermost* `rcu_read_lock` paired with
    /// its matching `rcu_read_unlock` (paper §4.2).
    ///
    /// # Panics
    ///
    /// Panics if a thread's RCU sections are not properly nested; the
    /// enumerator rejects such programs first.
    pub fn crit(&self) -> Relation {
        let mut r = Relation::empty(self.universe());
        for t in 0..self.n_threads {
            let mut depth = 0usize;
            let mut outermost: Option<usize> = None;
            for e in self.events.iter().filter(|e| e.thread == Some(t)) {
                if e.is_fence(FenceKind::RcuLock) {
                    if depth == 0 {
                        outermost = Some(e.id);
                    }
                    depth += 1;
                } else if e.is_fence(FenceKind::RcuUnlock) {
                    depth = depth.checked_sub(1).expect("unbalanced rcu_read_unlock");
                    if depth == 0 {
                        r.insert(outermost.take().expect("unlock without lock"), e.id);
                    }
                }
            }
            assert_eq!(depth, 0, "unclosed rcu_read_lock in thread {t}");
        }
        r
    }

    /// SRCU domains appearing in this execution, deduplicated.
    pub fn srcu_domains(&self) -> Vec<LocId> {
        let mut out: Vec<LocId> =
            self.events.iter().filter_map(|e| e.srcu().map(|(_, d)| d)).collect();
        out.sort();
        out.dedup();
        out
    }

    /// SRCU events of a kind within one domain.
    pub fn srcu_events(&self, kind: SrcuKind, domain: LocId) -> EventSet {
        self.events_where(|e| e.srcu() == Some((kind, domain)))
    }

    /// `crit` for one SRCU domain: outermost lock/unlock matching, like
    /// [`Execution::crit`] but per domain.
    ///
    /// # Panics
    ///
    /// Panics on unbalanced sections (rejected by the enumerator).
    pub fn srcu_crit(&self, domain: LocId) -> Relation {
        let mut r = Relation::empty(self.universe());
        for t in 0..self.n_threads {
            let mut depth = 0usize;
            let mut outermost: Option<usize> = None;
            for e in self.events.iter().filter(|e| e.thread == Some(t)) {
                match e.srcu() {
                    Some((SrcuKind::Lock, d)) if d == domain => {
                        if depth == 0 {
                            outermost = Some(e.id);
                        }
                        depth += 1;
                    }
                    Some((SrcuKind::Unlock, d)) if d == domain => {
                        depth = depth.checked_sub(1).expect("unbalanced srcu unlock");
                        if depth == 0 {
                            r.insert(outermost.take().expect("lock before unlock"), e.id);
                        }
                    }
                    _ => {}
                }
            }
            assert_eq!(depth, 0, "unclosed srcu_read_lock in thread {t}");
        }
        r
    }

    /// `gp` for one SRCU domain (`(po ∩ (_ × SyncSrcu_d)) ; po?`).
    pub fn srcu_gp(&self, domain: LocId) -> Relation {
        let sync = self.srcu_events(SrcuKind::Sync, domain).as_identity();
        self.po.seq(&sync).seq(&self.po.reflexive())
    }

    /// The final value of each location: the coherence-maximal write.
    pub fn final_values(&self) -> BTreeMap<LocId, Val> {
        let mut out = BTreeMap::new();
        for e in self.events.iter() {
            if let EventKind::Write { loc, val, .. } = e.kind {
                // co-maximal: no other write to loc is co-after e.
                let maximal = !self.co.successors(e.id).any(|_| true);
                if maximal {
                    out.insert(loc, val);
                }
            }
        }
        out
    }

    /// Evaluate a final-state proposition against this execution.
    pub fn satisfies_prop(&self, prop: &Prop) -> bool {
        let finals = self.final_values();
        let lookup = |term: &StateTerm| -> Option<CondVal> {
            let val = match term {
                StateTerm::Reg { thread, reg } => {
                    *self.final_regs.get(*thread)?.get(reg)?
                }
                StateTerm::Loc(name) => *finals.get(&self.loc_id(name)?)?,
            };
            Some(match val {
                Val::Int(i) => CondVal::Int(i),
                Val::Loc(l) => CondVal::LocRef(self.locs[l.0].clone()),
            })
        };
        prop.eval(&lookup)
    }

    /// Render the execution as a Graphviz `dot` graph (events as nodes,
    /// `po`/`rf`/`co`/dependency edges), for debugging and documentation.
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph execution {\n  rankdir=TB;\n");
        for e in self.events.iter() {
            out.push_str(&format!("  e{} [label=\"{}\"];\n", e.id, e));
        }
        let edge_sets: [(&str, &Relation, &str); 5] = [
            ("po", &self.po, "black"),
            ("rf", &self.rf, "red"),
            ("co", &self.co, "blue"),
            ("addr", &self.addr, "darkgreen"),
            ("ctrl", &self.ctrl, "purple"),
        ];
        for (name, rel, colour) in edge_sets {
            for (a, b) in rel.iter() {
                // Show only immediate po edges to keep graphs readable.
                if name == "po" && self.po.successors(a).any(|m| self.po.contains(m, b)) {
                    continue;
                }
                out.push_str(&format!(
                    "  e{a} -> e{b} [label=\"{name}\", color={colour}];\n"
                ));
            }
        }
        out.push_str("}\n");
        out
    }
}

impl fmt::Display for Execution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "execution with {} events:", self.universe())?;
        for e in self.events.iter() {
            writeln!(f, "  {e}")?;
        }
        write!(f, "  rf={:?} co={:?}", self.rf, self.co)
    }
}
