//! Parallel streaming candidate-execution checking.
//!
//! [`check_test`](crate::model::check_test) enumerates and checks on one
//! thread. This module fans the same candidate stream out to a pool of
//! worker threads: the enumerator (running on the calling thread) pushes
//! owned [`Execution`]s into bounded per-worker queues round-robin, each
//! worker evaluates the model through its own [`ModelSession`] (so
//! per-test caches work without sharing), and the per-worker tallies are
//! merged with `+`/`&&` — commutative, associative folds — so verdicts
//! and counts are **bit-identical** to the sequential path no matter how
//! the OS schedules the workers.
//!
//! The pool is hand-rolled on `std::thread::scope` + `std::sync::mpsc`:
//! this workspace builds with zero external dependencies.
//!
//! Early exit (off by default) stops the pipeline as soon as the
//! quantified verdict is decided — for `exists`/`~exists` at the first
//! witness, for `forall` once both a witness and a non-satisfying allowed
//! candidate have been seen. The verdict and `condition_holds` are
//! guaranteed to match a full run; the `candidates`/`allowed`/`witnesses`
//! counts are then lower bounds, which is why the flag exists instead of
//! being always-on.

use crate::enumerate::{try_for_each_execution, EnumError, EnumOptions};
use crate::execution::Execution;
use crate::model::{open_session, ConsistencyModel, TestResult, Verdict};
use lkmm_litmus::ast::Test;
use lkmm_litmus::cond::Quantifier;
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::thread;

/// Tuning knobs for the parallel check pipeline.
#[derive(Clone, Debug)]
pub struct PipelineOptions {
    /// Worker threads. `0` means one per available hardware thread
    /// (see [`effective_jobs`]); `1` checks on the calling thread with
    /// no queues or workers.
    pub jobs: usize,
    /// Stop enumerating once the quantified verdict is decided. Verdict
    /// and `condition_holds` still match a full run exactly; the counts
    /// become lower bounds.
    pub early_exit: bool,
    /// Bound of each worker's candidate queue. Backpressure keeps the
    /// enumerator from materialising the candidate space when workers
    /// fall behind.
    pub queue_depth: usize,
}

impl Default for PipelineOptions {
    fn default() -> Self {
        PipelineOptions { jobs: 0, early_exit: false, queue_depth: 256 }
    }
}

/// Resolve a `--jobs` value: `0` becomes the available parallelism
/// (falling back to 1 if the platform cannot report it).
pub fn effective_jobs(jobs: usize) -> usize {
    if jobs == 0 {
        thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        jobs
    }
}

/// One worker's (or the sequential loop's) running totals. Merging two
/// tallies is commutative and associative, which is what makes the
/// parallel merge deterministic.
#[derive(Clone, Copy, Debug, Default)]
struct Tally {
    candidates: usize,
    allowed: usize,
    witnesses: usize,
    /// Some allowed candidate does not satisfy the proposition (decides
    /// `forall` negatively).
    saw_non_satisfying: bool,
}

impl Tally {
    fn merge(self, other: Tally) -> Tally {
        Tally {
            candidates: self.candidates + other.candidates,
            allowed: self.allowed + other.allowed,
            witnesses: self.witnesses + other.witnesses,
            saw_non_satisfying: self.saw_non_satisfying || other.saw_non_satisfying,
        }
    }

    /// Whether the quantified verdict can no longer change, so an
    /// early-exit run may stop.
    fn decided(&self, quantifier: Quantifier) -> bool {
        match quantifier {
            // First witness decides `exists` (holds) and `~exists`
            // (fails); the verdict is Allowed either way.
            Quantifier::Exists | Quantifier::NotExists => self.witnesses > 0,
            // `forall` additionally needs the non-satisfying allowed
            // candidate that decides `condition_holds = false`. If every
            // allowed candidate satisfies, no early exit — the full run
            // is what proves it.
            Quantifier::Forall => self.witnesses > 0 && self.saw_non_satisfying,
        }
    }

    fn into_result(self, quantifier: Quantifier) -> TestResult {
        let verdict =
            if self.witnesses > 0 { Verdict::Allowed } else { Verdict::Forbidden };
        let condition_holds = match quantifier {
            Quantifier::Exists => self.witnesses > 0,
            Quantifier::NotExists => self.witnesses == 0,
            Quantifier::Forall => !self.saw_non_satisfying,
        };
        TestResult {
            verdict,
            condition_holds,
            candidates: self.candidates,
            allowed: self.allowed,
            witnesses: self.witnesses,
        }
    }
}

/// Check `test` against `model` on `pipe.jobs` worker threads.
///
/// With `jobs <= 1` this runs on the calling thread (still honouring
/// `early_exit`); the output is identical either way.
///
/// # Errors
///
/// Propagates [`EnumError`] from the enumerator.
///
/// # Panics
///
/// Re-raises panics from model evaluation on worker threads (e.g. a cat
/// model with semantic errors).
///
/// # Examples
///
/// ```
/// use lkmm_exec::model::{check_test, AllowAll};
/// use lkmm_exec::pipeline::{check_test_pipelined, PipelineOptions};
/// use lkmm_exec::enumerate::EnumOptions;
///
/// let test = lkmm_litmus::library::by_name("SB").unwrap().test();
/// let opts = EnumOptions::default();
/// let par = check_test_pipelined(
///     &AllowAll,
///     &test,
///     &opts,
///     &PipelineOptions { jobs: 4, ..Default::default() },
/// ).unwrap();
/// assert_eq!(par, check_test(&AllowAll, &test, &opts).unwrap());
/// ```
pub fn check_test_pipelined(
    model: &dyn ConsistencyModel,
    test: &Test,
    opts: &EnumOptions,
    pipe: &PipelineOptions,
) -> Result<TestResult, EnumError> {
    let jobs = effective_jobs(pipe.jobs);
    let quantifier = test.condition.quantifier;
    if jobs <= 1 {
        return check_sequential(model, test, opts, pipe.early_exit);
    }

    let stop = AtomicBool::new(false);
    let (tally, enum_result) = thread::scope(|s| {
        let mut senders = Vec::with_capacity(jobs);
        let mut handles = Vec::with_capacity(jobs);
        for _ in 0..jobs {
            let (tx, rx) = mpsc::sync_channel::<Execution>(pipe.queue_depth.max(1));
            senders.push(tx);
            let stop = &stop;
            let early_exit = pipe.early_exit;
            handles.push(s.spawn(move || {
                let mut session = open_session(model);
                let mut tally = Tally::default();
                while let Ok(x) = rx.recv() {
                    tally.candidates += 1;
                    if session.allows(&x) {
                        tally.allowed += 1;
                        if x.satisfies_prop(&test.condition.prop) {
                            tally.witnesses += 1;
                        } else {
                            tally.saw_non_satisfying = true;
                        }
                    }
                    if early_exit && tally.decided(quantifier) {
                        stop.store(true, Ordering::Relaxed);
                        break;
                    }
                }
                tally
            }));
        }

        // The enumerator runs on this thread, feeding workers
        // round-robin; the bounded channels provide backpressure.
        let mut seq = 0usize;
        let enum_result = try_for_each_execution(test, opts, &mut |x| {
            if stop.load(Ordering::Relaxed) {
                return ControlFlow::Break(());
            }
            let worker = seq % jobs;
            seq += 1;
            match senders[worker].send(x) {
                Ok(()) => ControlFlow::Continue(()),
                // The worker exited early; stop producing.
                Err(mpsc::SendError(_)) => ControlFlow::Break(()),
            }
        });
        drop(senders); // hang up so workers drain and exit

        let mut tally = Tally::default();
        for handle in handles {
            match handle.join() {
                Ok(t) => tally = tally.merge(t),
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
        (tally, enum_result)
    });

    let _ = enum_result?;
    Ok(tally.into_result(quantifier))
}

/// The `jobs <= 1` path: same loop, no queues.
fn check_sequential(
    model: &dyn ConsistencyModel,
    test: &Test,
    opts: &EnumOptions,
    early_exit: bool,
) -> Result<TestResult, EnumError> {
    let quantifier = test.condition.quantifier;
    let mut session = open_session(model);
    let mut tally = Tally::default();
    let _ = try_for_each_execution(test, opts, &mut |x| {
        tally.candidates += 1;
        if session.allows(&x) {
            tally.allowed += 1;
            if x.satisfies_prop(&test.condition.prop) {
                tally.witnesses += 1;
            } else {
                tally.saw_non_satisfying = true;
            }
        }
        if early_exit && tally.decided(quantifier) {
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    })?;
    Ok(tally.into_result(quantifier))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{check_test, AllowAll};
    use lkmm_litmus::library;

    #[test]
    fn parallel_matches_sequential_on_allow_all() {
        let opts = EnumOptions::default();
        for pt in library::all() {
            let t = pt.test();
            let seq = check_test(&AllowAll, &t, &opts).unwrap();
            for jobs in [1, 2, 8] {
                let par = check_test_pipelined(
                    &AllowAll,
                    &t,
                    &opts,
                    &PipelineOptions { jobs, ..Default::default() },
                )
                .unwrap();
                assert_eq!(par, seq, "{} with jobs={jobs}", pt.name);
            }
        }
    }

    #[test]
    fn early_exit_preserves_verdict_and_condition() {
        let opts = EnumOptions::default();
        for pt in library::all() {
            let t = pt.test();
            let full = check_test(&AllowAll, &t, &opts).unwrap();
            for jobs in [1, 4] {
                let fast = check_test_pipelined(
                    &AllowAll,
                    &t,
                    &opts,
                    &PipelineOptions { jobs, early_exit: true, ..Default::default() },
                )
                .unwrap();
                assert_eq!(fast.verdict, full.verdict, "{}", pt.name);
                assert_eq!(fast.condition_holds, full.condition_holds, "{}", pt.name);
                assert!(fast.candidates <= full.candidates, "{}", pt.name);
            }
        }
    }

    #[test]
    fn tiny_queue_depth_still_completes() {
        let t = library::by_name("SB").unwrap().test();
        let opts = EnumOptions::default();
        let par = check_test_pipelined(
            &AllowAll,
            &t,
            &opts,
            &PipelineOptions { jobs: 3, queue_depth: 1, ..Default::default() },
        )
        .unwrap();
        assert_eq!(par, check_test(&AllowAll, &t, &opts).unwrap());
    }

    #[test]
    fn enum_errors_propagate_through_the_pipeline() {
        let t = lkmm_litmus::parse(
            "C t\n{ x=0; }\nP0(int *x) { rcu_read_lock(); WRITE_ONCE(*x, 1); }\nexists (x=1)",
        )
        .unwrap();
        let err = check_test_pipelined(
            &AllowAll,
            &t,
            &EnumOptions::default(),
            &PipelineOptions { jobs: 2, ..Default::default() },
        )
        .unwrap_err();
        assert_eq!(err, EnumError::UnbalancedRcu { thread: 0 });
    }

    #[test]
    fn effective_jobs_resolves_zero() {
        assert!(effective_jobs(0) >= 1);
        assert_eq!(effective_jobs(3), 3);
    }
}
