//! Parallel streaming candidate-execution checking.
//!
//! [`check_test`](crate::model::check_test) enumerates and checks on one
//! thread. This module fans the same candidate stream out to a pool of
//! worker threads: the enumerator (running on the calling thread) groups
//! owned [`Execution`]s into **batches** and pushes them into bounded
//! per-worker queues round-robin, each worker evaluates the model
//! through its own [`ModelSession`] (so per-test caches work without
//! sharing), and the per-worker tallies are merged with `+`/`&&` —
//! commutative, associative folds — so verdicts and counts are
//! **bit-identical** to the sequential path no matter how the OS
//! schedules the workers.
//!
//! Batching is what keeps the per-pre-execution caches (model-session
//! statics, [`FactsCache`], the cat interpreter's static environment)
//! hot: consecutive candidates of one pre-execution land on the same
//! worker instead of being sprayed across all of them one at a time.
//! Batch size adapts to per-candidate cost — event count times the sum
//! of the models' [`ConsistencyModel::eval_cost_hint`]s — so cheap tests
//! ship big batches while expensive interpreted models stay
//! fine-grained; see [`PipelineOptions::batch_size`]. Workers are
//! spawned lazily, only once the first batch fills: a stream that ends
//! earlier is evaluated inline on the calling thread with zero spawns
//! and zero queue traffic.
//!
//! Each worker owns a [`RelationArena`](lkmm_relation::RelationArena)
//! threaded through its [`FactsCache`], so the witness-tier relations of
//! steady-state candidates are computed into recycled storage instead of
//! fresh allocations. The arena is a pipeline-internal optimisation:
//! `check_test` stays the simple allocating reference implementation the
//! differential oracles compare against.
//!
//! The pool is hand-rolled on `std::thread::scope` + `std::sync::mpsc`:
//! this workspace builds with zero external dependencies.
//!
//! Early exit (off by default) stops the pipeline as soon as the
//! quantified verdict is decided — for `exists`/`~exists` at the first
//! witness, for `forall` once both a witness and a non-satisfying allowed
//! candidate have been seen. The verdict and `condition_holds` are
//! guaranteed to match a full run; the `candidates`/`allowed`/`witnesses`
//! counts are then lower bounds, which is why the flag exists instead of
//! being always-on.
//!
//! # Resource governance
//!
//! [`check_test_governed`] is the budget-aware entry point: it honours
//! the [`Budget`](lkmm_core::budget::Budget) in
//! [`EnumOptions::budget`] and always returns a structured
//! [`CheckOutcome`] — either `Complete` (exactly what the ungoverned
//! path computes) or `Inconclusive` with the reason and the partial
//! [`Tally`] accumulated before the stop. It never hangs and never
//! aborts the process: every worker runs its whole evaluation loop
//! inside one `catch_unwind` (one unwind frame per worker, not per
//! candidate), so a panicking model (or an armed `worker.panic` fault
//! point) poisons only that one check.
//!
//! With an unlimited budget the governed and legacy paths run the exact
//! same loops and produce identical tallies; the only difference is the
//! wrapper type.

use crate::enumerate::{try_for_each_execution, EnumError, EnumOptions};
use crate::execution::Execution;
use crate::facts::FactsCache;
use crate::model::{open_session, ConsistencyModel, EvalStop, ModelSession, TestResult, Verdict};
use lkmm_core::budget::{Budget, BudgetKind, StepFuel};
use lkmm_core::faultpoint;
use lkmm_litmus::ast::Test;
use lkmm_litmus::cond::{Prop, Quantifier};
use std::any::Any;
use std::fmt;
use std::ops::ControlFlow;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;

/// Hard ceiling on worker threads. Litmus-scale candidate streams cannot
/// keep more workers than this busy, and each worker costs a stack plus
/// a bounded queue; values beyond the cap are almost certainly typos
/// (`--jobs 10000`), which the CLI rejects and [`effective_jobs`] clamps.
pub const MAX_JOBS: usize = 512;

/// Tuning knobs for the parallel check pipeline.
#[derive(Clone, Debug, Default)]
pub struct PipelineOptions {
    /// Worker threads. `0` means one per available hardware thread
    /// (see [`effective_jobs`]); `1` checks on the calling thread with
    /// no queues or workers. Values above [`MAX_JOBS`] are clamped, and
    /// the spawned count never exceeds the host's available parallelism
    /// (oversubscribed workers only add queue traffic; verdicts and
    /// counts are identical at any worker count regardless).
    pub jobs: usize,
    /// Stop enumerating once the quantified verdict is decided. Verdict
    /// and `condition_holds` still match a full run exactly; the counts
    /// become lower bounds.
    pub early_exit: bool,
    /// Bound of each worker's queue, measured in **candidates** (the
    /// per-queue batch bound is derived from this and the batch size).
    /// Backpressure keeps the enumerator from materialising the
    /// candidate space when workers fall behind. `0` means the default
    /// of [`DEFAULT_QUEUE_DEPTH`]; clamped to ≥ 1 otherwise.
    pub queue_depth: usize,
    /// Candidates per queue slot. `0` (the default) sizes batches
    /// automatically from the per-candidate cost estimate — event count
    /// of the first candidate times the sum of the models'
    /// [`ConsistencyModel::eval_cost_hint`]s — clamped to
    /// `1..=`[`MAX_BATCH`]. Cheap tests get big batches (amortising
    /// queue traffic and keeping per-pre-execution caches hot);
    /// expensive interpreted models stay fine-grained so work still
    /// spreads across workers.
    pub batch_size: usize,
    /// Opt-in data-plane counters (batch occupancy, arena reuse).
    /// `None` (the default) records nothing.
    pub stats: Option<Arc<DataPlaneStats>>,
}

/// Default [`PipelineOptions::queue_depth`] in candidates.
pub const DEFAULT_QUEUE_DEPTH: usize = 256;

/// Ceiling on automatically-sized batches. Explicit
/// [`PipelineOptions::batch_size`] values may exceed it.
pub const MAX_BATCH: usize = 64;

/// Cost target of one automatically-sized batch, in `events ×
/// cost-hint` units: a batch aims to carry about this much evaluation
/// work regardless of how cheap or expensive each candidate is.
const BATCH_COST_TARGET: usize = 2048;

/// Resolve the batch size for a candidate stream whose first candidate
/// is `first`: an explicit request wins, otherwise balance the
/// per-candidate cost estimate against [`BATCH_COST_TARGET`].
fn batch_size_for(first: &Execution, models_cost: usize, requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    let cost = first.events.len().max(1) * models_cost.max(1);
    (BATCH_COST_TARGET / cost).clamp(1, MAX_BATCH)
}

/// Opt-in counters describing how the batched data plane behaved:
/// how many batches formed, how many candidates rode them, and how much
/// relation storage the per-worker arenas recycled. Shared via
/// [`PipelineOptions::stats`]; all methods are thread-safe.
///
/// `batches_formed` and `batch_candidates` are pure functions of the
/// candidate stream, so for complete (non-early-exit,
/// non-wall-clock-bounded) runs they are **job-count-invariant**.
/// `arena_acquires` is invariant only for models whose facts are all
/// per-candidate: per-worker facts caches recompute shared
/// pre-execution-tier facts when one pre-execution's batches land on
/// different workers, which adds a handful of acquires per extra
/// worker. `arena_reuses` is not invariant at all: each worker's pool
/// warms up separately, so more workers means more cold first
/// acquisitions.
#[derive(Debug, Default)]
pub struct DataPlaneStats {
    batches_formed: AtomicU64,
    batch_candidates: AtomicU64,
    arena_acquires: AtomicU64,
    arena_reuses: AtomicU64,
}

impl DataPlaneStats {
    /// A consistent copy of the counters.
    pub fn snapshot(&self) -> DataPlaneSnapshot {
        DataPlaneSnapshot {
            batches_formed: self.batches_formed.load(Ordering::Relaxed),
            batch_candidates: self.batch_candidates.load(Ordering::Relaxed),
            arena_acquires: self.arena_acquires.load(Ordering::Relaxed),
            arena_reuses: self.arena_reuses.load(Ordering::Relaxed),
        }
    }

    fn add_batches(&self, batches: u64, candidates: u64) {
        self.batches_formed.fetch_add(batches, Ordering::Relaxed);
        self.batch_candidates.fetch_add(candidates, Ordering::Relaxed);
    }

    fn add_arena(&self, acquires: u64, reuses: u64) {
        self.arena_acquires.fetch_add(acquires, Ordering::Relaxed);
        self.arena_reuses.fetch_add(reuses, Ordering::Relaxed);
    }
}

/// Plain-data view of [`DataPlaneStats`] at one instant.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DataPlaneSnapshot {
    /// Batches shipped to workers (or accounted by the inline path).
    pub batches_formed: u64,
    /// Candidates carried by those batches.
    pub batch_candidates: u64,
    /// Relation/set/scratch acquisitions served by per-worker arenas.
    pub arena_acquires: u64,
    /// Acquisitions served from pooled storage instead of the allocator.
    pub arena_reuses: u64,
}

impl DataPlaneSnapshot {
    /// Mean candidates per batch, `0.0` when no batch formed.
    pub fn mean_batch_occupancy(&self) -> f64 {
        if self.batches_formed == 0 {
            0.0
        } else {
            self.batch_candidates as f64 / self.batches_formed as f64
        }
    }
}

/// Resolve a `--jobs` value: `0` becomes the available parallelism
/// (falling back to 1 if the platform cannot report it); anything above
/// [`MAX_JOBS`] is clamped to it.
pub fn effective_jobs(jobs: usize) -> usize {
    let jobs = if jobs == 0 { hardware_parallelism() } else { jobs };
    jobs.min(MAX_JOBS)
}

/// The host's available parallelism, queried once per process.
/// `std::thread::available_parallelism` consults the cgroup filesystem
/// on Linux, which is far too slow to sit on the per-test check path —
/// a corpus run calls into the pipeline thousands of times.
fn hardware_parallelism() -> usize {
    static HW: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *HW.get_or_init(|| thread::available_parallelism().map_or(1, |n| n.get()))
}

/// One worker's (or the sequential loop's) running totals. Merging two
/// tallies is commutative and associative, which is what makes the
/// parallel merge deterministic. Public so `Inconclusive` outcomes can
/// report exactly how far a check got before its budget ran out.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Tally {
    /// Candidate executions fully evaluated.
    pub candidates: usize,
    /// Candidates allowed by the model.
    pub allowed: usize,
    /// Allowed candidates satisfying the proposition.
    pub witnesses: usize,
    /// Some allowed candidate does not satisfy the proposition (decides
    /// `forall` negatively).
    pub saw_non_satisfying: bool,
}

impl Tally {
    fn merge(self, other: Tally) -> Tally {
        Tally {
            candidates: self.candidates + other.candidates,
            allowed: self.allowed + other.allowed,
            witnesses: self.witnesses + other.witnesses,
            saw_non_satisfying: self.saw_non_satisfying || other.saw_non_satisfying,
        }
    }

    /// Whether the quantified verdict can no longer change, so an
    /// early-exit run may stop.
    fn decided(&self, quantifier: Quantifier) -> bool {
        match quantifier {
            // First witness decides `exists` (holds) and `~exists`
            // (fails); the verdict is Allowed either way.
            Quantifier::Exists | Quantifier::NotExists => self.witnesses > 0,
            // `forall` additionally needs the non-satisfying allowed
            // candidate that decides `condition_holds = false`. If every
            // allowed candidate satisfies, no early exit — the full run
            // is what proves it.
            Quantifier::Forall => self.witnesses > 0 && self.saw_non_satisfying,
        }
    }

    fn into_result(self, quantifier: Quantifier) -> TestResult {
        let verdict =
            if self.witnesses > 0 { Verdict::Allowed } else { Verdict::Forbidden };
        let condition_holds = match quantifier {
            Quantifier::Exists => self.witnesses > 0,
            Quantifier::NotExists => self.witnesses == 0,
            Quantifier::Forall => !self.saw_non_satisfying,
        };
        TestResult {
            verdict,
            condition_holds,
            candidates: self.candidates,
            allowed: self.allowed,
            witnesses: self.witnesses,
        }
    }
}

/// Why a governed check could not run to completion.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InconclusiveReason {
    /// A budget axis (candidates, eval steps, wall clock, cancellation)
    /// ran out.
    BudgetExceeded(BudgetKind),
    /// Model evaluation panicked on some candidate (contained by the
    /// worker's `catch_unwind`; the process keeps running).
    WorkerPanicked,
    /// The enumerator failed (no threads, unbalanced RCU, hard caps).
    Enum(EnumError),
}

impl fmt::Display for InconclusiveReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InconclusiveReason::BudgetExceeded(kind) => write!(f, "{kind}"),
            InconclusiveReason::WorkerPanicked => write!(f, "model evaluation panicked"),
            InconclusiveReason::Enum(e) => write!(f, "{e}"),
        }
    }
}

/// The structured result of a governed check: either the complete
/// verdict, or a typed reason it stopped plus the partial tally. A
/// governed check never hangs and never aborts the process.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckOutcome {
    /// The check ran to completion; identical to what the ungoverned
    /// pipeline computes.
    Complete(TestResult),
    /// The check stopped early. `partial` holds the tallies over every
    /// candidate fully evaluated before the stop — with a candidate
    /// budget these are exact and deterministic at any job count,
    /// because the single-threaded enumerator is what trips the fuel.
    Inconclusive {
        /// Why the check stopped.
        reason: InconclusiveReason,
        /// Counts accumulated before the stop.
        partial: Tally,
    },
}

impl CheckOutcome {
    /// The completed result, if the check finished.
    pub fn result(&self) -> Option<&TestResult> {
        match self {
            CheckOutcome::Complete(r) => Some(r),
            CheckOutcome::Inconclusive { .. } => None,
        }
    }

    /// Whether the check ran to completion.
    pub fn is_complete(&self) -> bool {
        matches!(self, CheckOutcome::Complete(_))
    }
}

/// Why a worker (or the sequential loop) stopped before its queue
/// drained. Distinct from enumerator errors, which arrive through
/// `enum_result`.
enum WorkerStop {
    /// Model evaluation panicked; the payload is kept so the legacy API
    /// can `resume_unwind` it unchanged.
    Panicked(Box<dyn Any + Send>),
    /// The shared [`StepFuel`](lkmm_core::budget::StepFuel) ran dry.
    EvalFuel,
    /// The worker's deadline/cancellation poll tripped.
    Budget(BudgetKind),
}

impl WorkerStop {
    /// Panics outrank budget stops when several workers stop for
    /// different reasons: a panic is a bug signal, fuel is bookkeeping.
    fn rank(&self) -> u8 {
        match self {
            WorkerStop::Panicked(_) => 2,
            WorkerStop::EvalFuel => 1,
            WorkerStop::Budget(_) => 0,
        }
    }
}

/// Everything one engine run produces, before API-specific mapping. One
/// tally per model, in input order.
struct RawCheck {
    tallies: Vec<Tally>,
    stop: Option<WorkerStop>,
    enum_result: Result<ControlFlow<()>, EnumError>,
}

/// One worker's evaluation state: a session per model, the shared-facts
/// cache (arena-backed — each worker recycles relation storage between
/// candidates), and one tally per model. All models see the exact same
/// candidate sequence — a candidate counts for either every tally or
/// none (a panic or fuel stop mid-candidate discards it everywhere), so
/// per-model partial tallies stay aligned and job-count-deterministic.
struct WorkerState<'m> {
    sessions: Vec<Box<dyn ModelSession + 'm>>,
    cache: FactsCache,
    allows: Vec<bool>,
    tallies: Vec<Tally>,
}

impl<'m> WorkerState<'m> {
    fn new(
        models: &'m [&'m dyn ConsistencyModel],
        fuel: &Option<std::sync::Arc<StepFuel>>,
    ) -> Self {
        let sessions = models
            .iter()
            .map(|m| {
                let mut session = open_session(*m);
                if let Some(f) = fuel {
                    session.install_step_fuel(f.clone());
                }
                session
            })
            .collect::<Vec<_>>();
        WorkerState {
            allows: Vec::with_capacity(sessions.len()),
            tallies: vec![Tally::default(); sessions.len()],
            cache: FactsCache::with_arena(lkmm_relation::shared_arena()),
            sessions,
        }
    }

    /// Fold this worker's arena counters into the shared data-plane
    /// stats. Called once, after the worker's loop ends.
    fn harvest_arena(&self, stats: &Option<Arc<DataPlaneStats>>) {
        if let (Some(stats), Some(arena)) = (stats.as_ref(), self.cache.arena()) {
            let arena = arena.borrow();
            stats.add_arena(arena.acquires(), arena.reuses());
        }
    }

    /// Evaluate one candidate against every model, sharing one
    /// [`ExecFacts`](crate::facts::ExecFacts) and evaluating the
    /// final-state proposition at most once. `Err` means the worker must
    /// stop; the candidate is then counted nowhere.
    ///
    /// Panics (a buggy model, the `worker.panic` fault point) unwind out
    /// of this method: each caller wraps its whole evaluation loop in
    /// one `catch_unwind`, which contains them exactly like a
    /// per-candidate catch would — tallies update only after evaluation
    /// succeeds, so an unwinding candidate counts nowhere — without
    /// paying an unwind frame per candidate on the hot path.
    fn evaluate(&mut self, x: &Execution, prop: &Prop) -> Result<(), WorkerStop> {
        faultpoint::maybe_panic("worker.panic");
        self.allows.clear();
        let facts = self.cache.facts(x);
        for session in self.sessions.iter_mut() {
            match session.try_allows_with(x, &facts) {
                Ok(a) => self.allows.push(a),
                Err(EvalStop) => return Err(WorkerStop::EvalFuel),
            }
        }
        let satisfies = self.allows.contains(&true) && x.satisfies_prop(prop);
        for (tally, &a) in self.tallies.iter_mut().zip(self.allows.iter()) {
            tally.candidates += 1;
            if a {
                tally.allowed += 1;
                if satisfies {
                    tally.witnesses += 1;
                } else {
                    tally.saw_non_satisfying = true;
                }
            }
        }
        Ok(())
    }

    /// Whether every model's quantified verdict is decided, so an
    /// early-exit run may stop.
    fn decided(&self, quantifier: Quantifier) -> bool {
        self.tallies.iter().all(|t| t.decided(quantifier))
    }
}

/// The engine behind every public entry point: enumerate on the calling
/// thread — once, no matter how many models — batch candidates, and
/// evaluate on `jobs` workers (inline when `jobs <= 1`, or when the
/// stream ends before the first batch fills), every evaluation loop
/// inside one `catch_unwind`, budgets polled everywhere.
fn run_check(
    models: &[&dyn ConsistencyModel],
    test: &Test,
    opts: &EnumOptions,
    pipe: &PipelineOptions,
) -> RawCheck {
    assert!(!models.is_empty(), "run_check needs at least one model");
    // Workers beyond the host's parallelism only add queue traffic and
    // context switches on a saturated scheduler — results are identical
    // at any worker count by construction, so the spawned count is
    // clamped to what the hardware can actually run (on a
    // single-threaded host every job count collapses to the inline
    // path).
    let jobs = effective_jobs(pipe.jobs).min(hardware_parallelism());
    let quantifier = test.condition.quantifier;
    let prop = &test.condition.prop;
    let fuel = opts.budget.step_fuel();
    let models_cost: usize = models.iter().map(|m| m.eval_cost_hint()).sum();
    // Workers poll only the clock and the cancel token; candidate fuel
    // is spent exclusively by the single-threaded enumerator, which is
    // what makes candidate-budget partial tallies exact at any job
    // count. Pin the time limit to an absolute deadline once, here, so
    // every worker measures from the same instant.
    let worker_budget =
        Budget { max_candidates: None, max_eval_steps: None, ..opts.budget.clone() };
    let worker_meter = worker_budget.meter();

    if jobs <= 1 {
        // Inline path. No queues exist, but batch formation is still
        // simulated so `batches_formed`/`batch_candidates` are
        // job-count-invariant for complete runs.
        let mut worker = WorkerState::new(models, &fuel);
        let mut meter = worker_meter;
        let mut stop_reason = None;
        let mut batch_size = 0usize;
        let mut in_batch = 0u64;
        let mut batches = 0u64;
        let mut candidates = 0u64;
        // One unwind frame around the whole loop instead of one per
        // candidate: a panicking evaluation stops the check with the
        // same observable state a per-candidate catch produced (the
        // panicking candidate counts nowhere, enumeration breaks).
        let caught = catch_unwind(AssertUnwindSafe(|| {
            try_for_each_execution(test, opts, &mut |x| {
                if batch_size == 0 {
                    batch_size = batch_size_for(&x, models_cost, pipe.batch_size);
                }
                candidates += 1;
                in_batch += 1;
                if in_batch == batch_size as u64 {
                    batches += 1;
                    in_batch = 0;
                }
                if let Err(kind) = meter.poll() {
                    stop_reason = Some(WorkerStop::Budget(kind));
                    return ControlFlow::Break(());
                }
                if let Err(stop) = worker.evaluate(&x, prop) {
                    stop_reason = Some(stop);
                    return ControlFlow::Break(());
                }
                if pipe.early_exit && worker.decided(quantifier) {
                    ControlFlow::Break(())
                } else {
                    ControlFlow::Continue(())
                }
            })
        }));
        let enum_result = match caught {
            Ok(r) => r,
            Err(payload) => {
                stop_reason = Some(WorkerStop::Panicked(payload));
                Ok(ControlFlow::Break(()))
            }
        };
        if let Some(stats) = &pipe.stats {
            stats.add_batches(batches + u64::from(in_batch > 0), candidates);
        }
        worker.harvest_arena(&pipe.stats);
        return RawCheck { tallies: worker.tallies, stop: stop_reason, enum_result };
    }

    let queue_depth =
        if pipe.queue_depth == 0 { DEFAULT_QUEUE_DEPTH } else { pipe.queue_depth };
    let stop = AtomicBool::new(false);
    thread::scope(|s| {
        // Workers are spawned lazily, at the first full batch: a stream
        // that ends earlier is evaluated inline below, so small tests
        // pay zero spawn and zero queue traffic at any `--jobs`.
        let mut senders: Vec<mpsc::SyncSender<Vec<Execution>>> = Vec::new();
        let mut handles = Vec::new();
        let mut pending: Vec<Execution> = Vec::new();
        let mut batch_size = 0usize;
        let mut seq = 0usize;
        let mut batches = 0u64;
        let mut candidates = 0u64;
        let enum_result = try_for_each_execution(test, opts, &mut |x| {
            if stop.load(Ordering::Relaxed) {
                return ControlFlow::Break(());
            }
            if batch_size == 0 {
                batch_size = batch_size_for(&x, models_cost, pipe.batch_size);
            }
            candidates += 1;
            pending.push(x);
            if pending.len() < batch_size {
                return ControlFlow::Continue(());
            }
            if handles.is_empty() {
                // First full batch: bring up the pool. The queue bound
                // is measured in candidates, so derive a batch bound.
                let depth = (queue_depth / batch_size).max(1);
                for _ in 0..jobs {
                    let (tx, rx) = mpsc::sync_channel::<Vec<Execution>>(depth);
                    senders.push(tx);
                    let stop = &stop;
                    let early_exit = pipe.early_exit;
                    let stats = pipe.stats.clone();
                    let fuel = fuel.clone();
                    let mut meter = worker_meter.clone();
                    handles.push(s.spawn(move || {
                        let mut worker = WorkerState::new(models, &fuel);
                        let mut stop_reason = None;
                        // One unwind frame per worker, not per
                        // candidate: a panicking evaluation stops this
                        // worker with the panicking candidate counted
                        // nowhere, exactly like a per-candidate catch,
                        // at zero cost on the hot path.
                        let caught = catch_unwind(AssertUnwindSafe(|| {
                            'batches: while let Ok(batch) = rx.recv() {
                                for x in &batch {
                                    if let Err(kind) = meter.poll() {
                                        stop.store(true, Ordering::Relaxed);
                                        stop_reason = Some(WorkerStop::Budget(kind));
                                        break 'batches;
                                    }
                                    if let Err(reason) = worker.evaluate(x, prop) {
                                        stop.store(true, Ordering::Relaxed);
                                        stop_reason = Some(reason);
                                        break 'batches;
                                    }
                                    if early_exit && worker.decided(quantifier) {
                                        stop.store(true, Ordering::Relaxed);
                                        break 'batches;
                                    }
                                }
                            }
                        }));
                        if let Err(payload) = caught {
                            stop.store(true, Ordering::Relaxed);
                            stop_reason = Some(WorkerStop::Panicked(payload));
                        }
                        worker.harvest_arena(&stats);
                        (worker.tallies, stop_reason)
                    }));
                }
            }
            batches += 1;
            let batch = std::mem::replace(&mut pending, Vec::with_capacity(batch_size));
            let worker = seq % jobs;
            seq += 1;
            match senders[worker].send(batch) {
                Ok(()) => ControlFlow::Continue(()),
                // The worker exited early; stop producing.
                Err(mpsc::SendError(_)) => ControlFlow::Break(()),
            }
        });

        if handles.is_empty() {
            // The stream ended before one batch filled: evaluate the
            // pending candidates inline, exactly like `jobs = 1`.
            let mut worker = WorkerState::new(models, &fuel);
            let mut meter = worker_meter;
            let mut stop_reason = None;
            if !pending.is_empty() {
                batches += 1;
            }
            let caught = catch_unwind(AssertUnwindSafe(|| {
                for x in &pending {
                    if let Err(kind) = meter.poll() {
                        stop_reason = Some(WorkerStop::Budget(kind));
                        break;
                    }
                    if let Err(stop) = worker.evaluate(x, prop) {
                        stop_reason = Some(stop);
                        break;
                    }
                    if pipe.early_exit && worker.decided(quantifier) {
                        break;
                    }
                }
            }));
            if let Err(payload) = caught {
                stop_reason = Some(WorkerStop::Panicked(payload));
            }
            if let Some(stats) = &pipe.stats {
                stats.add_batches(batches, candidates);
            }
            worker.harvest_arena(&pipe.stats);
            return RawCheck { tallies: worker.tallies, stop: stop_reason, enum_result };
        }

        // Flush the trailing partial batch: every candidate the
        // enumerator emitted (and spent fuel on) gets evaluated, which
        // is what keeps candidate-budget partial tallies exact even
        // when the budget trips mid-batch.
        if !pending.is_empty() && !stop.load(Ordering::Relaxed) {
            batches += 1;
            let worker = seq % jobs;
            // A hung-up worker already tripped `stop`; ignore the error.
            let _ = senders[worker].send(std::mem::take(&mut pending));
        }
        drop(senders); // hang up so workers drain and exit
        if let Some(stats) = &pipe.stats {
            stats.add_batches(batches, candidates);
        }

        let mut tallies = vec![Tally::default(); models.len()];
        let mut stop_reason: Option<WorkerStop> = None;
        for handle in handles {
            // Workers cannot panic out of their own body: the whole
            // evaluation loop is wrapped in catch_unwind and everything
            // else is queue plumbing. A join error here would be a
            // harness bug.
            let (ts, reason) = handle.join().expect("pipeline worker harness panicked");
            for (tally, t) in tallies.iter_mut().zip(ts) {
                *tally = tally.merge(t);
            }
            if let Some(r) = reason {
                if stop_reason.as_ref().is_none_or(|cur| r.rank() > cur.rank()) {
                    stop_reason = Some(r);
                }
            }
        }
        RawCheck { tallies, stop: stop_reason, enum_result }
    })
}

/// Check `test` against `model` on `pipe.jobs` worker threads.
///
/// With `jobs <= 1` this runs on the calling thread (still honouring
/// `early_exit`); the output is identical either way.
///
/// This is the legacy strict interface: budget trips surface as
/// [`EnumError::BudgetExceeded`] and worker panics are re-raised. Use
/// [`check_test_governed`] to get partial tallies and panic containment
/// instead.
///
/// # Errors
///
/// Propagates [`EnumError`] from the enumerator, and reports budget
/// exhaustion (if [`EnumOptions::budget`] is bounded) as
/// [`EnumError::BudgetExceeded`].
///
/// # Panics
///
/// Re-raises panics from model evaluation on worker threads (e.g. a cat
/// model with semantic errors).
///
/// # Examples
///
/// ```
/// use lkmm_exec::model::{check_test, AllowAll};
/// use lkmm_exec::pipeline::{check_test_pipelined, PipelineOptions};
/// use lkmm_exec::enumerate::EnumOptions;
///
/// let test = lkmm_litmus::library::by_name("SB").unwrap().test();
/// let opts = EnumOptions::default();
/// let par = check_test_pipelined(
///     &AllowAll,
///     &test,
///     &opts,
///     &PipelineOptions { jobs: 4, ..Default::default() },
/// ).unwrap();
/// assert_eq!(par, check_test(&AllowAll, &test, &opts).unwrap());
/// ```
pub fn check_test_pipelined(
    model: &dyn ConsistencyModel,
    test: &Test,
    opts: &EnumOptions,
    pipe: &PipelineOptions,
) -> Result<TestResult, EnumError> {
    check_test_multi(&[model], test, opts, pipe).map(|mut results| results.remove(0))
}

/// Check `test` against N models over a **single** enumeration pass,
/// returning one [`TestResult`] per model in input order.
///
/// Each worker opens one session per model and evaluates every candidate
/// against all of them, sharing one
/// [`ExecFacts`](crate::facts::ExecFacts) per candidate — the derived
/// base relations (`fr`, `com`, `po-loc`, fence sets, …) are computed
/// once, not once per model. Verdicts and counts are bit-identical to N
/// separate [`check_test_pipelined`] runs at any job count.
///
/// Like the single-model legacy path this is the strict interface:
/// budget trips surface as [`EnumError::BudgetExceeded`] and worker
/// panics are re-raised. Use [`check_test_multi_governed`] for partial
/// tallies and panic containment.
///
/// With `early_exit` the pass stops only once **every** model's verdict
/// is decided.
///
/// # Errors
///
/// Propagates [`EnumError`] from the enumerator, and reports budget
/// exhaustion as [`EnumError::BudgetExceeded`].
///
/// # Panics
///
/// Re-raises panics from model evaluation, and panics if `models` is
/// empty.
pub fn check_test_multi(
    models: &[&dyn ConsistencyModel],
    test: &Test,
    opts: &EnumOptions,
    pipe: &PipelineOptions,
) -> Result<Vec<TestResult>, EnumError> {
    let quantifier = test.condition.quantifier;
    let raw = run_check(models, test, opts, pipe);
    match raw.stop {
        Some(WorkerStop::Panicked(payload)) => std::panic::resume_unwind(payload),
        Some(WorkerStop::EvalFuel) => {
            return Err(EnumError::BudgetExceeded(BudgetKind::EvalSteps))
        }
        Some(WorkerStop::Budget(kind)) => return Err(EnumError::BudgetExceeded(kind)),
        None => {}
    }
    let _ = raw.enum_result?;
    Ok(raw.tallies.into_iter().map(|t| t.into_result(quantifier)).collect())
}

/// The structured result of a governed multi-model check: either one
/// complete verdict per model, or a typed stop reason plus one partial
/// tally per model (in input order). The candidate fuel is spent once by
/// the enumerator — not once per model — so all partial tallies cover
/// the exact same candidates and are job-count-deterministic, matching
/// single-model [`CheckOutcome`] semantics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MultiCheckOutcome {
    /// The single enumeration pass ran to completion; one result per
    /// model, identical to N separate ungoverned runs.
    Complete(Vec<TestResult>),
    /// The pass stopped early; every model's tally covers the same
    /// candidates.
    Inconclusive {
        /// Why the check stopped.
        reason: InconclusiveReason,
        /// Per-model counts accumulated before the stop.
        partials: Vec<Tally>,
    },
}

impl MultiCheckOutcome {
    /// The completed per-model results, if the check finished.
    pub fn results(&self) -> Option<&[TestResult]> {
        match self {
            MultiCheckOutcome::Complete(rs) => Some(rs),
            MultiCheckOutcome::Inconclusive { .. } => None,
        }
    }

    /// Whether the check ran to completion.
    pub fn is_complete(&self) -> bool {
        matches!(self, MultiCheckOutcome::Complete(_))
    }
}

/// Budget-aware, panic-containing multi-model check over a single
/// enumeration pass. See [`check_test_multi`] for the engine and
/// [`check_test_governed`] for the governance semantics, which are
/// identical — the fuel is simply shared by all N models instead of
/// belonging to one.
///
/// # Panics
///
/// Panics if `models` is empty.
pub fn check_test_multi_governed(
    models: &[&dyn ConsistencyModel],
    test: &Test,
    opts: &EnumOptions,
    pipe: &PipelineOptions,
) -> MultiCheckOutcome {
    let quantifier = test.condition.quantifier;
    let raw = run_check(models, test, opts, pipe);
    if let Some(WorkerStop::Panicked(_)) = &raw.stop {
        return MultiCheckOutcome::Inconclusive {
            reason: InconclusiveReason::WorkerPanicked,
            partials: raw.tallies,
        };
    }
    match raw.enum_result {
        Err(EnumError::BudgetExceeded(kind)) => MultiCheckOutcome::Inconclusive {
            reason: InconclusiveReason::BudgetExceeded(kind),
            partials: raw.tallies,
        },
        Err(e) => MultiCheckOutcome::Inconclusive {
            reason: InconclusiveReason::Enum(e),
            partials: raw.tallies,
        },
        Ok(_) => match raw.stop {
            Some(WorkerStop::EvalFuel) => MultiCheckOutcome::Inconclusive {
                reason: InconclusiveReason::BudgetExceeded(BudgetKind::EvalSteps),
                partials: raw.tallies,
            },
            Some(WorkerStop::Budget(kind)) => MultiCheckOutcome::Inconclusive {
                reason: InconclusiveReason::BudgetExceeded(kind),
                partials: raw.tallies,
            },
            Some(WorkerStop::Panicked(_)) => unreachable!("handled above"),
            None => MultiCheckOutcome::Complete(
                raw.tallies.into_iter().map(|t| t.into_result(quantifier)).collect(),
            ),
        },
    }
}

/// Budget-aware, panic-containing check. Always returns — never hangs
/// (budgets are polled in the enumerator and every worker loop) and
/// never aborts the process (every evaluation loop runs inside
/// `catch_unwind`).
///
/// With an unlimited budget and a well-behaved model this is exactly
/// [`check_test_pipelined`] wrapped in [`CheckOutcome::Complete`].
///
/// # Examples
///
/// ```
/// use lkmm_exec::model::AllowAll;
/// use lkmm_exec::pipeline::{check_test_governed, CheckOutcome, PipelineOptions};
/// use lkmm_exec::enumerate::EnumOptions;
/// use lkmm_core::budget::Budget;
///
/// let test = lkmm_litmus::library::by_name("SB").unwrap().test();
/// // Generous budget: completes with the exact result.
/// let opts = EnumOptions {
///     budget: Budget::default().with_max_candidates(1_000_000),
///     ..EnumOptions::default()
/// };
/// let outcome =
///     check_test_governed(&AllowAll, &test, &opts, &PipelineOptions::default());
/// assert!(outcome.is_complete());
///
/// // One candidate of fuel: inconclusive, with an exact partial tally.
/// let opts = EnumOptions {
///     budget: Budget::default().with_max_candidates(1),
///     ..EnumOptions::default()
/// };
/// let outcome =
///     check_test_governed(&AllowAll, &test, &opts, &PipelineOptions::default());
/// match outcome {
///     CheckOutcome::Inconclusive { partial, .. } => assert_eq!(partial.candidates, 1),
///     CheckOutcome::Complete(_) => unreachable!("SB has more than one candidate"),
/// }
/// ```
pub fn check_test_governed(
    model: &dyn ConsistencyModel,
    test: &Test,
    opts: &EnumOptions,
    pipe: &PipelineOptions,
) -> CheckOutcome {
    match check_test_multi_governed(&[model], test, opts, pipe) {
        MultiCheckOutcome::Complete(mut results) => {
            CheckOutcome::Complete(results.remove(0))
        }
        MultiCheckOutcome::Inconclusive { reason, mut partials } => {
            CheckOutcome::Inconclusive { reason, partial: partials.remove(0) }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{check_test, AllowAll};
    use lkmm_litmus::library;

    #[test]
    fn parallel_matches_sequential_on_allow_all() {
        let opts = EnumOptions::default();
        for pt in library::all() {
            let t = pt.test();
            let seq = check_test(&AllowAll, &t, &opts).unwrap();
            for jobs in [1, 2, 8] {
                let par = check_test_pipelined(
                    &AllowAll,
                    &t,
                    &opts,
                    &PipelineOptions { jobs, ..Default::default() },
                )
                .unwrap();
                assert_eq!(par, seq, "{} with jobs={jobs}", pt.name);
            }
        }
    }

    #[test]
    fn early_exit_preserves_verdict_and_condition() {
        let opts = EnumOptions::default();
        for pt in library::all() {
            let t = pt.test();
            let full = check_test(&AllowAll, &t, &opts).unwrap();
            for jobs in [1, 4] {
                let fast = check_test_pipelined(
                    &AllowAll,
                    &t,
                    &opts,
                    &PipelineOptions { jobs, early_exit: true, ..Default::default() },
                )
                .unwrap();
                assert_eq!(fast.verdict, full.verdict, "{}", pt.name);
                assert_eq!(fast.condition_holds, full.condition_holds, "{}", pt.name);
                assert!(fast.candidates <= full.candidates, "{}", pt.name);
            }
        }
    }

    #[test]
    fn tiny_queue_depth_still_completes() {
        let t = library::by_name("SB").unwrap().test();
        let opts = EnumOptions::default();
        let par = check_test_pipelined(
            &AllowAll,
            &t,
            &opts,
            &PipelineOptions { jobs: 3, queue_depth: 1, ..Default::default() },
        )
        .unwrap();
        assert_eq!(par, check_test(&AllowAll, &t, &opts).unwrap());
    }

    #[test]
    fn enum_errors_propagate_through_the_pipeline() {
        let t = lkmm_litmus::parse(
            "C t\n{ x=0; }\nP0(int *x) { rcu_read_lock(); WRITE_ONCE(*x, 1); }\nexists (x=1)",
        )
        .unwrap();
        let err = check_test_pipelined(
            &AllowAll,
            &t,
            &EnumOptions::default(),
            &PipelineOptions { jobs: 2, ..Default::default() },
        )
        .unwrap_err();
        assert_eq!(err, EnumError::UnbalancedRcu { thread: 0 });
    }

    #[test]
    fn governed_wraps_enum_errors() {
        let t = lkmm_litmus::parse(
            "C t\n{ x=0; }\nP0(int *x) { rcu_read_lock(); WRITE_ONCE(*x, 1); }\nexists (x=1)",
        )
        .unwrap();
        let outcome = check_test_governed(
            &AllowAll,
            &t,
            &EnumOptions::default(),
            &PipelineOptions::default(),
        );
        assert_eq!(
            outcome,
            CheckOutcome::Inconclusive {
                reason: InconclusiveReason::Enum(EnumError::UnbalancedRcu { thread: 0 }),
                partial: Tally::default(),
            }
        );
    }

    #[test]
    fn multi_model_pass_fills_shared_enum_stats() {
        // The single enumeration pass behind check_test_multi feeds the
        // counters exactly once no matter how many models ride it, and
        // identically at any job count — campaign `--enum-stats` output
        // stays deterministic for a fixed corpus.
        let t = library::by_name("SB").unwrap().test();
        let snapshot_for = |jobs: usize| {
            let stats = std::sync::Arc::new(crate::EnumStats::default());
            let opts = EnumOptions { stats: Some(stats.clone()), ..EnumOptions::default() };
            let models: [&dyn ConsistencyModel; 2] = [&AllowAll, &AllowAll];
            check_test_multi(&models, &t, &opts, &PipelineOptions { jobs, ..Default::default() })
                .unwrap();
            stats.snapshot()
        };
        let single_model = {
            let stats = std::sync::Arc::new(crate::EnumStats::default());
            let opts = EnumOptions { stats: Some(stats.clone()), ..EnumOptions::default() };
            check_test(&AllowAll, &t, &opts).unwrap();
            stats.snapshot()
        };
        let seq = snapshot_for(1);
        assert!(seq.candidates_emitted > 0, "the pass must emit candidates");
        assert_eq!(
            seq, single_model,
            "N models share one enumeration: counters match a single-model run"
        );
        assert_eq!(seq, snapshot_for(4), "counters are job-count-invariant");
    }

    #[test]
    fn explicit_batch_sizes_match_sequential_results() {
        let opts = EnumOptions::default();
        for pt in library::all() {
            let t = pt.test();
            let seq = check_test(&AllowAll, &t, &opts).unwrap();
            for jobs in [2, 8] {
                for batch_size in [1, 4] {
                    let par = check_test_pipelined(
                        &AllowAll,
                        &t,
                        &opts,
                        &PipelineOptions { jobs, batch_size, ..Default::default() },
                    )
                    .unwrap();
                    assert_eq!(par, seq, "{} jobs={jobs} batch={batch_size}", pt.name);
                }
            }
        }
    }

    /// A model whose `allows_with` reads shared facts, so the workers'
    /// arenas actually serve witness-tier acquisitions.
    struct ScPerLoc;

    impl ConsistencyModel for ScPerLoc {
        fn name(&self) -> &str {
            "sc-per-loc"
        }
        fn allows(&self, x: &Execution) -> bool {
            self.allows_with(x, &crate::facts::ExecFacts::new(x))
        }
        fn allows_with(&self, _x: &Execution, facts: &crate::facts::ExecFacts<'_>) -> bool {
            facts.sc_per_loc_ok() && facts.atomicity_ok()
        }
    }

    #[test]
    fn batch_counters_are_job_count_invariant() {
        // batches_formed / batch_candidates are pure functions of the
        // candidate stream for complete runs, so any job count must
        // report the same numbers. arena_acquires is compared too
        // because this model draws only per-candidate witness facts;
        // real checkers also pull shared pre-execution-tier facts,
        // which per-worker caches recompute. arena_reuses is per-worker
        // warm-up and deliberately not compared.
        let t = library::by_name("RWC").unwrap().test();
        let snapshot_for = |jobs: usize| {
            let stats = Arc::new(DataPlaneStats::default());
            check_test_pipelined(
                &ScPerLoc,
                &t,
                &EnumOptions::default(),
                &PipelineOptions {
                    jobs,
                    batch_size: 4,
                    stats: Some(stats.clone()),
                    ..Default::default()
                },
            )
            .unwrap();
            stats.snapshot()
        };
        let seq = snapshot_for(1);
        assert!(seq.batches_formed > 1, "RWC's 8 candidates fill two batches of 4");
        assert!(seq.batch_candidates >= seq.batches_formed);
        assert!(seq.arena_acquires > 0, "workers draw witness facts from arenas");
        for jobs in [2, 8] {
            let par = snapshot_for(jobs);
            assert_eq!(par.batches_formed, seq.batches_formed, "jobs={jobs}");
            assert_eq!(par.batch_candidates, seq.batch_candidates, "jobs={jobs}");
            assert_eq!(par.arena_acquires, seq.arena_acquires, "jobs={jobs}");
        }
    }

    #[test]
    fn no_stats_by_default() {
        assert!(PipelineOptions::default().stats.is_none());
    }

    #[test]
    fn candidate_budget_tripping_mid_batch_is_exact_at_any_job_count() {
        // 7 candidates of fuel against batch size 4: the budget trips
        // mid-batch, and the trailing partial batch must still be
        // flushed and evaluated so the partial tally is exactly 7
        // everywhere — candidate fuel is spent only by the enumerator.
        let t = library::by_name("RWC").unwrap().test();
        let opts = EnumOptions {
            budget: Budget::default().with_max_candidates(7),
            ..EnumOptions::default()
        };
        for jobs in [1, 2, 8] {
            let outcome = check_test_governed(
                &AllowAll,
                &t,
                &opts,
                &PipelineOptions { jobs, batch_size: 4, ..Default::default() },
            );
            match outcome {
                CheckOutcome::Inconclusive { reason, partial } => {
                    assert_eq!(
                        reason,
                        InconclusiveReason::BudgetExceeded(BudgetKind::Candidates),
                        "jobs={jobs}"
                    );
                    assert_eq!(partial.candidates, 7, "jobs={jobs}");
                }
                CheckOutcome::Complete(_) => {
                    panic!("RWC has more than 7 candidates (jobs={jobs})")
                }
            }
        }
    }

    #[test]
    fn auto_batch_size_scales_inversely_with_cost() {
        let t = library::by_name("SB").unwrap().test();
        let x = &crate::enumerate::enumerate(&t, &EnumOptions::default()).unwrap()[0];
        let cheap = batch_size_for(x, 1, 0);
        let costly = batch_size_for(x, 64, 0);
        assert!(cheap >= costly, "bigger cost hints shrink batches");
        assert!((1..=MAX_BATCH).contains(&cheap));
        assert!((1..=MAX_BATCH).contains(&costly));
        assert_eq!(batch_size_for(x, 1, 3), 3, "explicit size wins");
    }

    #[test]
    fn effective_jobs_resolves_zero_and_clamps() {
        assert!(effective_jobs(0) >= 1);
        assert_eq!(effective_jobs(3), 3);
        assert_eq!(effective_jobs(MAX_JOBS + 1), MAX_JOBS);
        assert_eq!(effective_jobs(usize::MAX), MAX_JOBS);
    }

    #[test]
    fn debug_format_of_enum_options_is_key_stable() {
        // The verdict store folds `{:?}` of EnumOptions into cache keys;
        // this string must never change for default options, or every
        // existing store goes cold. The budget, strategy, and stats
        // fields are deliberately excluded.
        assert_eq!(
            format!("{:?}", EnumOptions::default()),
            "EnumOptions { prune_scpv: true, max_executions: 4000000, \
             max_domain_iterations: 16, max_oracle_branches: 200000 }"
        );
    }

    #[test]
    fn enumeration_strategy_and_stats_do_not_perturb_the_key_form() {
        // Stores written before the consistency-driven enumerator — or
        // by its naive ablation twin — must replay byte-identically, so
        // neither knob may surface in the `{:?}` cache-key form.
        let tuned = EnumOptions {
            strategy: crate::enumerate::EnumStrategy::Naive,
            stats: Some(std::sync::Arc::new(crate::enumerate::EnumStats::default())),
            ..EnumOptions::default()
        };
        assert_eq!(format!("{tuned:?}"), format!("{:?}", EnumOptions::default()));
    }
}
