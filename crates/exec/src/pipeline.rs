//! Parallel streaming candidate-execution checking.
//!
//! [`check_test`](crate::model::check_test) enumerates and checks on one
//! thread. This module fans the same candidate stream out to a pool of
//! worker threads: the enumerator (running on the calling thread) pushes
//! owned [`Execution`]s into bounded per-worker queues round-robin, each
//! worker evaluates the model through its own [`ModelSession`] (so
//! per-test caches work without sharing), and the per-worker tallies are
//! merged with `+`/`&&` — commutative, associative folds — so verdicts
//! and counts are **bit-identical** to the sequential path no matter how
//! the OS schedules the workers.
//!
//! The pool is hand-rolled on `std::thread::scope` + `std::sync::mpsc`:
//! this workspace builds with zero external dependencies.
//!
//! Early exit (off by default) stops the pipeline as soon as the
//! quantified verdict is decided — for `exists`/`~exists` at the first
//! witness, for `forall` once both a witness and a non-satisfying allowed
//! candidate have been seen. The verdict and `condition_holds` are
//! guaranteed to match a full run; the `candidates`/`allowed`/`witnesses`
//! counts are then lower bounds, which is why the flag exists instead of
//! being always-on.
//!
//! # Resource governance
//!
//! [`check_test_governed`] is the budget-aware entry point: it honours
//! the [`Budget`](lkmm_core::budget::Budget) in
//! [`EnumOptions::budget`] and always returns a structured
//! [`CheckOutcome`] — either `Complete` (exactly what the ungoverned
//! path computes) or `Inconclusive` with the reason and the partial
//! [`Tally`] accumulated before the stop. It never hangs and never
//! aborts the process: every worker evaluates each candidate inside
//! `catch_unwind`, so a panicking model (or an armed `worker.panic`
//! fault point) poisons only that one check.
//!
//! With an unlimited budget the governed and legacy paths run the exact
//! same loops and produce identical tallies; the only difference is the
//! wrapper type.

use crate::enumerate::{try_for_each_execution, EnumError, EnumOptions};
use crate::execution::Execution;
use crate::facts::FactsCache;
use crate::model::{open_session, ConsistencyModel, EvalStop, ModelSession, TestResult, Verdict};
use lkmm_core::budget::{Budget, BudgetKind, StepFuel};
use lkmm_core::faultpoint;
use lkmm_litmus::ast::Test;
use lkmm_litmus::cond::{Prop, Quantifier};
use std::any::Any;
use std::fmt;
use std::ops::ControlFlow;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::thread;

/// Hard ceiling on worker threads. Litmus-scale candidate streams cannot
/// keep more workers than this busy, and each worker costs a stack plus
/// a bounded queue; values beyond the cap are almost certainly typos
/// (`--jobs 10000`), which the CLI rejects and [`effective_jobs`] clamps.
pub const MAX_JOBS: usize = 512;

/// Tuning knobs for the parallel check pipeline.
#[derive(Clone, Debug)]
pub struct PipelineOptions {
    /// Worker threads. `0` means one per available hardware thread
    /// (see [`effective_jobs`]); `1` checks on the calling thread with
    /// no queues or workers. Values above [`MAX_JOBS`] are clamped.
    pub jobs: usize,
    /// Stop enumerating once the quantified verdict is decided. Verdict
    /// and `condition_holds` still match a full run exactly; the counts
    /// become lower bounds.
    pub early_exit: bool,
    /// Bound of each worker's candidate queue. Backpressure keeps the
    /// enumerator from materialising the candidate space when workers
    /// fall behind. Clamped to ≥ 1.
    pub queue_depth: usize,
}

impl Default for PipelineOptions {
    fn default() -> Self {
        PipelineOptions { jobs: 0, early_exit: false, queue_depth: 256 }
    }
}

/// Resolve a `--jobs` value: `0` becomes the available parallelism
/// (falling back to 1 if the platform cannot report it); anything above
/// [`MAX_JOBS`] is clamped to it.
pub fn effective_jobs(jobs: usize) -> usize {
    let jobs = if jobs == 0 {
        thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        jobs
    };
    jobs.min(MAX_JOBS)
}

/// One worker's (or the sequential loop's) running totals. Merging two
/// tallies is commutative and associative, which is what makes the
/// parallel merge deterministic. Public so `Inconclusive` outcomes can
/// report exactly how far a check got before its budget ran out.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Tally {
    /// Candidate executions fully evaluated.
    pub candidates: usize,
    /// Candidates allowed by the model.
    pub allowed: usize,
    /// Allowed candidates satisfying the proposition.
    pub witnesses: usize,
    /// Some allowed candidate does not satisfy the proposition (decides
    /// `forall` negatively).
    pub saw_non_satisfying: bool,
}

impl Tally {
    fn merge(self, other: Tally) -> Tally {
        Tally {
            candidates: self.candidates + other.candidates,
            allowed: self.allowed + other.allowed,
            witnesses: self.witnesses + other.witnesses,
            saw_non_satisfying: self.saw_non_satisfying || other.saw_non_satisfying,
        }
    }

    /// Whether the quantified verdict can no longer change, so an
    /// early-exit run may stop.
    fn decided(&self, quantifier: Quantifier) -> bool {
        match quantifier {
            // First witness decides `exists` (holds) and `~exists`
            // (fails); the verdict is Allowed either way.
            Quantifier::Exists | Quantifier::NotExists => self.witnesses > 0,
            // `forall` additionally needs the non-satisfying allowed
            // candidate that decides `condition_holds = false`. If every
            // allowed candidate satisfies, no early exit — the full run
            // is what proves it.
            Quantifier::Forall => self.witnesses > 0 && self.saw_non_satisfying,
        }
    }

    fn into_result(self, quantifier: Quantifier) -> TestResult {
        let verdict =
            if self.witnesses > 0 { Verdict::Allowed } else { Verdict::Forbidden };
        let condition_holds = match quantifier {
            Quantifier::Exists => self.witnesses > 0,
            Quantifier::NotExists => self.witnesses == 0,
            Quantifier::Forall => !self.saw_non_satisfying,
        };
        TestResult {
            verdict,
            condition_holds,
            candidates: self.candidates,
            allowed: self.allowed,
            witnesses: self.witnesses,
        }
    }
}

/// Why a governed check could not run to completion.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InconclusiveReason {
    /// A budget axis (candidates, eval steps, wall clock, cancellation)
    /// ran out.
    BudgetExceeded(BudgetKind),
    /// Model evaluation panicked on some candidate (contained by the
    /// worker's `catch_unwind`; the process keeps running).
    WorkerPanicked,
    /// The enumerator failed (no threads, unbalanced RCU, hard caps).
    Enum(EnumError),
}

impl fmt::Display for InconclusiveReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InconclusiveReason::BudgetExceeded(kind) => write!(f, "{kind}"),
            InconclusiveReason::WorkerPanicked => write!(f, "model evaluation panicked"),
            InconclusiveReason::Enum(e) => write!(f, "{e}"),
        }
    }
}

/// The structured result of a governed check: either the complete
/// verdict, or a typed reason it stopped plus the partial tally. A
/// governed check never hangs and never aborts the process.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckOutcome {
    /// The check ran to completion; identical to what the ungoverned
    /// pipeline computes.
    Complete(TestResult),
    /// The check stopped early. `partial` holds the tallies over every
    /// candidate fully evaluated before the stop — with a candidate
    /// budget these are exact and deterministic at any job count,
    /// because the single-threaded enumerator is what trips the fuel.
    Inconclusive {
        /// Why the check stopped.
        reason: InconclusiveReason,
        /// Counts accumulated before the stop.
        partial: Tally,
    },
}

impl CheckOutcome {
    /// The completed result, if the check finished.
    pub fn result(&self) -> Option<&TestResult> {
        match self {
            CheckOutcome::Complete(r) => Some(r),
            CheckOutcome::Inconclusive { .. } => None,
        }
    }

    /// Whether the check ran to completion.
    pub fn is_complete(&self) -> bool {
        matches!(self, CheckOutcome::Complete(_))
    }
}

/// Why a worker (or the sequential loop) stopped before its queue
/// drained. Distinct from enumerator errors, which arrive through
/// `enum_result`.
enum WorkerStop {
    /// Model evaluation panicked; the payload is kept so the legacy API
    /// can `resume_unwind` it unchanged.
    Panicked(Box<dyn Any + Send>),
    /// The shared [`StepFuel`](lkmm_core::budget::StepFuel) ran dry.
    EvalFuel,
    /// The worker's deadline/cancellation poll tripped.
    Budget(BudgetKind),
}

impl WorkerStop {
    /// Panics outrank budget stops when several workers stop for
    /// different reasons: a panic is a bug signal, fuel is bookkeeping.
    fn rank(&self) -> u8 {
        match self {
            WorkerStop::Panicked(_) => 2,
            WorkerStop::EvalFuel => 1,
            WorkerStop::Budget(_) => 0,
        }
    }
}

/// Everything one engine run produces, before API-specific mapping. One
/// tally per model, in input order.
struct RawCheck {
    tallies: Vec<Tally>,
    stop: Option<WorkerStop>,
    enum_result: Result<ControlFlow<()>, EnumError>,
}

/// One worker's evaluation state: a session per model, the shared-facts
/// cache, and one tally per model. All models see the exact same
/// candidate sequence — a candidate counts for either every tally or
/// none (a panic or fuel stop mid-candidate discards it everywhere), so
/// per-model partial tallies stay aligned and job-count-deterministic.
struct WorkerState<'m> {
    sessions: Vec<Box<dyn ModelSession + 'm>>,
    cache: FactsCache,
    allows: Vec<bool>,
    tallies: Vec<Tally>,
}

impl<'m> WorkerState<'m> {
    fn new(
        models: &'m [&'m dyn ConsistencyModel],
        fuel: &Option<std::sync::Arc<StepFuel>>,
    ) -> Self {
        let sessions = models
            .iter()
            .map(|m| {
                let mut session = open_session(*m);
                if let Some(f) = fuel {
                    session.install_step_fuel(f.clone());
                }
                session
            })
            .collect::<Vec<_>>();
        WorkerState {
            allows: Vec::with_capacity(sessions.len()),
            tallies: vec![Tally::default(); sessions.len()],
            cache: FactsCache::new(),
            sessions,
        }
    }

    /// Evaluate one candidate against every model, sharing one
    /// [`ExecFacts`](crate::facts::ExecFacts) and evaluating the
    /// final-state proposition at most once. `Err` means the worker must
    /// stop; the candidate is then counted nowhere.
    fn evaluate(&mut self, x: &Execution, prop: &Prop) -> Result<(), WorkerStop> {
        let sessions = &mut self.sessions;
        let cache = &mut self.cache;
        let allows = &mut self.allows;
        let evaluated = catch_unwind(AssertUnwindSafe(|| {
            faultpoint::maybe_panic("worker.panic");
            allows.clear();
            let facts = cache.facts(x);
            for session in sessions.iter_mut() {
                allows.push(session.try_allows_with(x, &facts)?);
            }
            Ok(allows.contains(&true) && x.satisfies_prop(prop))
        }));
        match evaluated {
            Ok(Ok(satisfies)) => {
                for (tally, &a) in self.tallies.iter_mut().zip(self.allows.iter()) {
                    tally.candidates += 1;
                    if a {
                        tally.allowed += 1;
                        if satisfies {
                            tally.witnesses += 1;
                        } else {
                            tally.saw_non_satisfying = true;
                        }
                    }
                }
                Ok(())
            }
            Ok(Err(EvalStop)) => Err(WorkerStop::EvalFuel),
            Err(payload) => Err(WorkerStop::Panicked(payload)),
        }
    }

    /// Whether every model's quantified verdict is decided, so an
    /// early-exit run may stop.
    fn decided(&self, quantifier: Quantifier) -> bool {
        self.tallies.iter().all(|t| t.decided(quantifier))
    }
}

/// The engine behind every public entry point: enumerate on the calling
/// thread — once, no matter how many models — evaluate on `jobs`
/// workers (inline when `jobs <= 1`), each candidate inside
/// `catch_unwind`, budgets polled everywhere.
fn run_check(
    models: &[&dyn ConsistencyModel],
    test: &Test,
    opts: &EnumOptions,
    pipe: &PipelineOptions,
) -> RawCheck {
    assert!(!models.is_empty(), "run_check needs at least one model");
    let jobs = effective_jobs(pipe.jobs);
    let quantifier = test.condition.quantifier;
    let prop = &test.condition.prop;
    let fuel = opts.budget.step_fuel();
    // Workers poll only the clock and the cancel token; candidate fuel
    // is spent exclusively by the single-threaded enumerator, which is
    // what makes candidate-budget partial tallies exact at any job
    // count. Pin the time limit to an absolute deadline once, here, so
    // every worker measures from the same instant.
    let worker_budget =
        Budget { max_candidates: None, max_eval_steps: None, ..opts.budget.clone() };
    let worker_meter = worker_budget.meter();

    if jobs <= 1 {
        let mut worker = WorkerState::new(models, &fuel);
        let mut meter = worker_meter;
        let mut stop_reason = None;
        let enum_result = try_for_each_execution(test, opts, &mut |x| {
            if let Err(kind) = meter.poll() {
                stop_reason = Some(WorkerStop::Budget(kind));
                return ControlFlow::Break(());
            }
            if let Err(stop) = worker.evaluate(&x, prop) {
                stop_reason = Some(stop);
                return ControlFlow::Break(());
            }
            if pipe.early_exit && worker.decided(quantifier) {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        return RawCheck { tallies: worker.tallies, stop: stop_reason, enum_result };
    }

    let stop = AtomicBool::new(false);
    thread::scope(|s| {
        let mut senders = Vec::with_capacity(jobs);
        let mut handles = Vec::with_capacity(jobs);
        for _ in 0..jobs {
            let (tx, rx) = mpsc::sync_channel::<Execution>(pipe.queue_depth.max(1));
            senders.push(tx);
            let stop = &stop;
            let early_exit = pipe.early_exit;
            let fuel = fuel.clone();
            let mut meter = worker_meter.clone();
            handles.push(s.spawn(move || {
                let mut worker = WorkerState::new(models, &fuel);
                let mut stop_reason = None;
                while let Ok(x) = rx.recv() {
                    if let Err(kind) = meter.poll() {
                        stop.store(true, Ordering::Relaxed);
                        stop_reason = Some(WorkerStop::Budget(kind));
                        break;
                    }
                    if let Err(reason) = worker.evaluate(&x, prop) {
                        stop.store(true, Ordering::Relaxed);
                        stop_reason = Some(reason);
                        break;
                    }
                    if early_exit && worker.decided(quantifier) {
                        stop.store(true, Ordering::Relaxed);
                        break;
                    }
                }
                (worker.tallies, stop_reason)
            }));
        }

        // The enumerator runs on this thread, feeding workers
        // round-robin; the bounded channels provide backpressure.
        let mut seq = 0usize;
        let enum_result = try_for_each_execution(test, opts, &mut |x| {
            if stop.load(Ordering::Relaxed) {
                return ControlFlow::Break(());
            }
            let worker = seq % jobs;
            seq += 1;
            match senders[worker].send(x) {
                Ok(()) => ControlFlow::Continue(()),
                // The worker exited early; stop producing.
                Err(mpsc::SendError(_)) => ControlFlow::Break(()),
            }
        });
        drop(senders); // hang up so workers drain and exit

        let mut tallies = vec![Tally::default(); models.len()];
        let mut stop_reason: Option<WorkerStop> = None;
        for handle in handles {
            // Workers cannot panic out of their own body: evaluation is
            // wrapped in catch_unwind and everything else is queue
            // plumbing. A join error here would be a harness bug.
            let (ts, reason) = handle.join().expect("pipeline worker harness panicked");
            for (tally, t) in tallies.iter_mut().zip(ts) {
                *tally = tally.merge(t);
            }
            if let Some(r) = reason {
                if stop_reason.as_ref().is_none_or(|cur| r.rank() > cur.rank()) {
                    stop_reason = Some(r);
                }
            }
        }
        RawCheck { tallies, stop: stop_reason, enum_result }
    })
}

/// Check `test` against `model` on `pipe.jobs` worker threads.
///
/// With `jobs <= 1` this runs on the calling thread (still honouring
/// `early_exit`); the output is identical either way.
///
/// This is the legacy strict interface: budget trips surface as
/// [`EnumError::BudgetExceeded`] and worker panics are re-raised. Use
/// [`check_test_governed`] to get partial tallies and panic containment
/// instead.
///
/// # Errors
///
/// Propagates [`EnumError`] from the enumerator, and reports budget
/// exhaustion (if [`EnumOptions::budget`] is bounded) as
/// [`EnumError::BudgetExceeded`].
///
/// # Panics
///
/// Re-raises panics from model evaluation on worker threads (e.g. a cat
/// model with semantic errors).
///
/// # Examples
///
/// ```
/// use lkmm_exec::model::{check_test, AllowAll};
/// use lkmm_exec::pipeline::{check_test_pipelined, PipelineOptions};
/// use lkmm_exec::enumerate::EnumOptions;
///
/// let test = lkmm_litmus::library::by_name("SB").unwrap().test();
/// let opts = EnumOptions::default();
/// let par = check_test_pipelined(
///     &AllowAll,
///     &test,
///     &opts,
///     &PipelineOptions { jobs: 4, ..Default::default() },
/// ).unwrap();
/// assert_eq!(par, check_test(&AllowAll, &test, &opts).unwrap());
/// ```
pub fn check_test_pipelined(
    model: &dyn ConsistencyModel,
    test: &Test,
    opts: &EnumOptions,
    pipe: &PipelineOptions,
) -> Result<TestResult, EnumError> {
    check_test_multi(&[model], test, opts, pipe).map(|mut results| results.remove(0))
}

/// Check `test` against N models over a **single** enumeration pass,
/// returning one [`TestResult`] per model in input order.
///
/// Each worker opens one session per model and evaluates every candidate
/// against all of them, sharing one
/// [`ExecFacts`](crate::facts::ExecFacts) per candidate — the derived
/// base relations (`fr`, `com`, `po-loc`, fence sets, …) are computed
/// once, not once per model. Verdicts and counts are bit-identical to N
/// separate [`check_test_pipelined`] runs at any job count.
///
/// Like the single-model legacy path this is the strict interface:
/// budget trips surface as [`EnumError::BudgetExceeded`] and worker
/// panics are re-raised. Use [`check_test_multi_governed`] for partial
/// tallies and panic containment.
///
/// With `early_exit` the pass stops only once **every** model's verdict
/// is decided.
///
/// # Errors
///
/// Propagates [`EnumError`] from the enumerator, and reports budget
/// exhaustion as [`EnumError::BudgetExceeded`].
///
/// # Panics
///
/// Re-raises panics from model evaluation, and panics if `models` is
/// empty.
pub fn check_test_multi(
    models: &[&dyn ConsistencyModel],
    test: &Test,
    opts: &EnumOptions,
    pipe: &PipelineOptions,
) -> Result<Vec<TestResult>, EnumError> {
    let quantifier = test.condition.quantifier;
    let raw = run_check(models, test, opts, pipe);
    match raw.stop {
        Some(WorkerStop::Panicked(payload)) => std::panic::resume_unwind(payload),
        Some(WorkerStop::EvalFuel) => {
            return Err(EnumError::BudgetExceeded(BudgetKind::EvalSteps))
        }
        Some(WorkerStop::Budget(kind)) => return Err(EnumError::BudgetExceeded(kind)),
        None => {}
    }
    let _ = raw.enum_result?;
    Ok(raw.tallies.into_iter().map(|t| t.into_result(quantifier)).collect())
}

/// The structured result of a governed multi-model check: either one
/// complete verdict per model, or a typed stop reason plus one partial
/// tally per model (in input order). The candidate fuel is spent once by
/// the enumerator — not once per model — so all partial tallies cover
/// the exact same candidates and are job-count-deterministic, matching
/// single-model [`CheckOutcome`] semantics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MultiCheckOutcome {
    /// The single enumeration pass ran to completion; one result per
    /// model, identical to N separate ungoverned runs.
    Complete(Vec<TestResult>),
    /// The pass stopped early; every model's tally covers the same
    /// candidates.
    Inconclusive {
        /// Why the check stopped.
        reason: InconclusiveReason,
        /// Per-model counts accumulated before the stop.
        partials: Vec<Tally>,
    },
}

impl MultiCheckOutcome {
    /// The completed per-model results, if the check finished.
    pub fn results(&self) -> Option<&[TestResult]> {
        match self {
            MultiCheckOutcome::Complete(rs) => Some(rs),
            MultiCheckOutcome::Inconclusive { .. } => None,
        }
    }

    /// Whether the check ran to completion.
    pub fn is_complete(&self) -> bool {
        matches!(self, MultiCheckOutcome::Complete(_))
    }
}

/// Budget-aware, panic-containing multi-model check over a single
/// enumeration pass. See [`check_test_multi`] for the engine and
/// [`check_test_governed`] for the governance semantics, which are
/// identical — the fuel is simply shared by all N models instead of
/// belonging to one.
///
/// # Panics
///
/// Panics if `models` is empty.
pub fn check_test_multi_governed(
    models: &[&dyn ConsistencyModel],
    test: &Test,
    opts: &EnumOptions,
    pipe: &PipelineOptions,
) -> MultiCheckOutcome {
    let quantifier = test.condition.quantifier;
    let raw = run_check(models, test, opts, pipe);
    if let Some(WorkerStop::Panicked(_)) = &raw.stop {
        return MultiCheckOutcome::Inconclusive {
            reason: InconclusiveReason::WorkerPanicked,
            partials: raw.tallies,
        };
    }
    match raw.enum_result {
        Err(EnumError::BudgetExceeded(kind)) => MultiCheckOutcome::Inconclusive {
            reason: InconclusiveReason::BudgetExceeded(kind),
            partials: raw.tallies,
        },
        Err(e) => MultiCheckOutcome::Inconclusive {
            reason: InconclusiveReason::Enum(e),
            partials: raw.tallies,
        },
        Ok(_) => match raw.stop {
            Some(WorkerStop::EvalFuel) => MultiCheckOutcome::Inconclusive {
                reason: InconclusiveReason::BudgetExceeded(BudgetKind::EvalSteps),
                partials: raw.tallies,
            },
            Some(WorkerStop::Budget(kind)) => MultiCheckOutcome::Inconclusive {
                reason: InconclusiveReason::BudgetExceeded(kind),
                partials: raw.tallies,
            },
            Some(WorkerStop::Panicked(_)) => unreachable!("handled above"),
            None => MultiCheckOutcome::Complete(
                raw.tallies.into_iter().map(|t| t.into_result(quantifier)).collect(),
            ),
        },
    }
}

/// Budget-aware, panic-containing check. Always returns — never hangs
/// (budgets are polled in the enumerator and every worker loop) and
/// never aborts the process (each candidate evaluation runs inside
/// `catch_unwind`).
///
/// With an unlimited budget and a well-behaved model this is exactly
/// [`check_test_pipelined`] wrapped in [`CheckOutcome::Complete`].
///
/// # Examples
///
/// ```
/// use lkmm_exec::model::AllowAll;
/// use lkmm_exec::pipeline::{check_test_governed, CheckOutcome, PipelineOptions};
/// use lkmm_exec::enumerate::EnumOptions;
/// use lkmm_core::budget::Budget;
///
/// let test = lkmm_litmus::library::by_name("SB").unwrap().test();
/// // Generous budget: completes with the exact result.
/// let opts = EnumOptions {
///     budget: Budget::default().with_max_candidates(1_000_000),
///     ..EnumOptions::default()
/// };
/// let outcome =
///     check_test_governed(&AllowAll, &test, &opts, &PipelineOptions::default());
/// assert!(outcome.is_complete());
///
/// // One candidate of fuel: inconclusive, with an exact partial tally.
/// let opts = EnumOptions {
///     budget: Budget::default().with_max_candidates(1),
///     ..EnumOptions::default()
/// };
/// let outcome =
///     check_test_governed(&AllowAll, &test, &opts, &PipelineOptions::default());
/// match outcome {
///     CheckOutcome::Inconclusive { partial, .. } => assert_eq!(partial.candidates, 1),
///     CheckOutcome::Complete(_) => unreachable!("SB has more than one candidate"),
/// }
/// ```
pub fn check_test_governed(
    model: &dyn ConsistencyModel,
    test: &Test,
    opts: &EnumOptions,
    pipe: &PipelineOptions,
) -> CheckOutcome {
    match check_test_multi_governed(&[model], test, opts, pipe) {
        MultiCheckOutcome::Complete(mut results) => {
            CheckOutcome::Complete(results.remove(0))
        }
        MultiCheckOutcome::Inconclusive { reason, mut partials } => {
            CheckOutcome::Inconclusive { reason, partial: partials.remove(0) }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{check_test, AllowAll};
    use lkmm_litmus::library;

    #[test]
    fn parallel_matches_sequential_on_allow_all() {
        let opts = EnumOptions::default();
        for pt in library::all() {
            let t = pt.test();
            let seq = check_test(&AllowAll, &t, &opts).unwrap();
            for jobs in [1, 2, 8] {
                let par = check_test_pipelined(
                    &AllowAll,
                    &t,
                    &opts,
                    &PipelineOptions { jobs, ..Default::default() },
                )
                .unwrap();
                assert_eq!(par, seq, "{} with jobs={jobs}", pt.name);
            }
        }
    }

    #[test]
    fn early_exit_preserves_verdict_and_condition() {
        let opts = EnumOptions::default();
        for pt in library::all() {
            let t = pt.test();
            let full = check_test(&AllowAll, &t, &opts).unwrap();
            for jobs in [1, 4] {
                let fast = check_test_pipelined(
                    &AllowAll,
                    &t,
                    &opts,
                    &PipelineOptions { jobs, early_exit: true, ..Default::default() },
                )
                .unwrap();
                assert_eq!(fast.verdict, full.verdict, "{}", pt.name);
                assert_eq!(fast.condition_holds, full.condition_holds, "{}", pt.name);
                assert!(fast.candidates <= full.candidates, "{}", pt.name);
            }
        }
    }

    #[test]
    fn tiny_queue_depth_still_completes() {
        let t = library::by_name("SB").unwrap().test();
        let opts = EnumOptions::default();
        let par = check_test_pipelined(
            &AllowAll,
            &t,
            &opts,
            &PipelineOptions { jobs: 3, queue_depth: 1, ..Default::default() },
        )
        .unwrap();
        assert_eq!(par, check_test(&AllowAll, &t, &opts).unwrap());
    }

    #[test]
    fn enum_errors_propagate_through_the_pipeline() {
        let t = lkmm_litmus::parse(
            "C t\n{ x=0; }\nP0(int *x) { rcu_read_lock(); WRITE_ONCE(*x, 1); }\nexists (x=1)",
        )
        .unwrap();
        let err = check_test_pipelined(
            &AllowAll,
            &t,
            &EnumOptions::default(),
            &PipelineOptions { jobs: 2, ..Default::default() },
        )
        .unwrap_err();
        assert_eq!(err, EnumError::UnbalancedRcu { thread: 0 });
    }

    #[test]
    fn governed_wraps_enum_errors() {
        let t = lkmm_litmus::parse(
            "C t\n{ x=0; }\nP0(int *x) { rcu_read_lock(); WRITE_ONCE(*x, 1); }\nexists (x=1)",
        )
        .unwrap();
        let outcome = check_test_governed(
            &AllowAll,
            &t,
            &EnumOptions::default(),
            &PipelineOptions::default(),
        );
        assert_eq!(
            outcome,
            CheckOutcome::Inconclusive {
                reason: InconclusiveReason::Enum(EnumError::UnbalancedRcu { thread: 0 }),
                partial: Tally::default(),
            }
        );
    }

    #[test]
    fn multi_model_pass_fills_shared_enum_stats() {
        // The single enumeration pass behind check_test_multi feeds the
        // counters exactly once no matter how many models ride it, and
        // identically at any job count — campaign `--enum-stats` output
        // stays deterministic for a fixed corpus.
        let t = library::by_name("SB").unwrap().test();
        let snapshot_for = |jobs: usize| {
            let stats = std::sync::Arc::new(crate::EnumStats::default());
            let opts = EnumOptions { stats: Some(stats.clone()), ..EnumOptions::default() };
            let models: [&dyn ConsistencyModel; 2] = [&AllowAll, &AllowAll];
            check_test_multi(&models, &t, &opts, &PipelineOptions { jobs, ..Default::default() })
                .unwrap();
            stats.snapshot()
        };
        let single_model = {
            let stats = std::sync::Arc::new(crate::EnumStats::default());
            let opts = EnumOptions { stats: Some(stats.clone()), ..EnumOptions::default() };
            check_test(&AllowAll, &t, &opts).unwrap();
            stats.snapshot()
        };
        let seq = snapshot_for(1);
        assert!(seq.candidates_emitted > 0, "the pass must emit candidates");
        assert_eq!(
            seq, single_model,
            "N models share one enumeration: counters match a single-model run"
        );
        assert_eq!(seq, snapshot_for(4), "counters are job-count-invariant");
    }

    #[test]
    fn effective_jobs_resolves_zero_and_clamps() {
        assert!(effective_jobs(0) >= 1);
        assert_eq!(effective_jobs(3), 3);
        assert_eq!(effective_jobs(MAX_JOBS + 1), MAX_JOBS);
        assert_eq!(effective_jobs(usize::MAX), MAX_JOBS);
    }

    #[test]
    fn debug_format_of_enum_options_is_key_stable() {
        // The verdict store folds `{:?}` of EnumOptions into cache keys;
        // this string must never change for default options, or every
        // existing store goes cold. The budget, strategy, and stats
        // fields are deliberately excluded.
        assert_eq!(
            format!("{:?}", EnumOptions::default()),
            "EnumOptions { prune_scpv: true, max_executions: 4000000, \
             max_domain_iterations: 16, max_oracle_branches: 200000 }"
        );
    }

    #[test]
    fn enumeration_strategy_and_stats_do_not_perturb_the_key_form() {
        // Stores written before the consistency-driven enumerator — or
        // by its naive ablation twin — must replay byte-identically, so
        // neither knob may surface in the `{:?}` cache-key form.
        let tuned = EnumOptions {
            strategy: crate::enumerate::EnumStrategy::Naive,
            stats: Some(std::sync::Arc::new(crate::enumerate::EnumStats::default())),
            ..EnumOptions::default()
        };
        assert_eq!(format!("{tuned:?}"), format!("{:?}", EnumOptions::default()));
    }
}
