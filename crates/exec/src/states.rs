//! herd-style final-state histograms.
//!
//! herd7 reports, for each litmus test, the set of reachable final states
//! with how many candidate executions produce each, marking the ones that
//! satisfy the condition (`*>`). [`collect_states`] reproduces that
//! output for any [`ConsistencyModel`].

use crate::enumerate::{for_each_execution, EnumError, EnumOptions};
use crate::execution::Execution;
use crate::model::ConsistencyModel;
use lkmm_litmus::ast::Test;
use lkmm_litmus::cond::StateTerm;
use std::collections::BTreeMap;
use std::fmt;

/// One final state: the rendered values of the condition's terms.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct State(pub String);

/// Aggregated per-state counts.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StateCount {
    /// Model-allowed executions ending in this state.
    pub allowed: usize,
    /// Model-forbidden executions ending in this state.
    pub forbidden: usize,
    /// Whether the state satisfies the condition's proposition.
    pub satisfies: bool,
}

/// The histogram over reachable final states.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StateSummary {
    /// Test name.
    pub test_name: String,
    /// Model name.
    pub model_name: String,
    /// Per-state counts, sorted by state rendering.
    pub states: BTreeMap<State, StateCount>,
}

impl StateSummary {
    /// Number of allowed executions satisfying the proposition
    /// (herd's "Positive").
    pub fn positive(&self) -> usize {
        self.states.values().filter(|c| c.satisfies).map(|c| c.allowed).sum()
    }

    /// Number of allowed executions not satisfying it (herd's "Negative").
    pub fn negative(&self) -> usize {
        self.states.values().filter(|c| !c.satisfies).map(|c| c.allowed).sum()
    }
}

impl fmt::Display for StateSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Test {} ({})", self.test_name, self.model_name)?;
        let reachable = self.states.values().filter(|c| c.allowed > 0).count();
        writeln!(f, "States {reachable}")?;
        for (state, count) in &self.states {
            if count.allowed == 0 {
                continue;
            }
            let marker = if count.satisfies { "*>" } else { ":>" };
            writeln!(f, "{:<6} {marker} {}", count.allowed, state.0)?;
        }
        write!(f, "Positive: {} Negative: {}", self.positive(), self.negative())
    }
}

/// Render the final state of one execution over the given terms.
fn render_state(x: &Execution, terms: &[&StateTerm]) -> State {
    let render = |v: crate::event::Val| match v {
        crate::event::Val::Int(i) => i.to_string(),
        crate::event::Val::Loc(l) => format!("&{}", x.locs[l.0]),
    };
    let finals = x.final_values();
    let parts: Vec<String> = terms
        .iter()
        .map(|t| {
            let v = match t {
                StateTerm::Reg { thread, reg } => {
                    x.final_regs.get(*thread).and_then(|m| m.get(reg)).copied()
                }
                StateTerm::Loc(name) => x.loc_id(name).and_then(|l| finals.get(&l).copied()),
            };
            match v {
                None => format!("{t}=?"),
                Some(val) => format!("{t}={}", render(val)),
            }
        })
        .collect();
    State(parts.join("; "))
}

/// Enumerate all candidate executions and build the state histogram.
///
/// # Errors
///
/// Propagates [`EnumError`] from the enumerator.
///
/// # Examples
///
/// ```
/// use lkmm_exec::model::AllowAll;
/// use lkmm_exec::states::collect_states;
/// use lkmm_exec::enumerate::EnumOptions;
///
/// let sb = lkmm_litmus::library::by_name("SB").unwrap().test();
/// let summary = collect_states(&AllowAll, &sb, &EnumOptions::default()).unwrap();
/// assert_eq!(summary.states.len(), 4); // all four read-value combinations
/// assert_eq!(summary.positive(), 1);   // exactly one is the SB state
/// ```
pub fn collect_states(
    model: &dyn ConsistencyModel,
    test: &Test,
    opts: &EnumOptions,
) -> Result<StateSummary, EnumError> {
    let terms: Vec<&StateTerm> = test.condition.prop.terms();
    let mut states: BTreeMap<State, StateCount> = BTreeMap::new();
    for_each_execution(test, opts, &mut |x| {
        let state = render_state(x, &terms);
        let entry = states.entry(state).or_default();
        entry.satisfies = x.satisfies_prop(&test.condition.prop);
        if model.allows(x) {
            entry.allowed += 1;
        } else {
            entry.forbidden += 1;
        }
    })?;
    Ok(StateSummary {
        test_name: test.name.clone(),
        model_name: model.name().to_string(),
        states,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::AllowAll;
    use lkmm_litmus::library;

    #[test]
    fn herd_style_output_shape() {
        let t = library::by_name("MP").unwrap().test();
        let s = collect_states(&AllowAll, &t, &EnumOptions::default()).unwrap();
        let text = s.to_string();
        assert!(text.contains("States 4"), "{text}");
        assert!(text.contains("*>"), "{text}");
        assert!(text.contains("Positive: 1"), "{text}");
        assert_eq!(s.positive() + s.negative(), 4);
    }

    #[test]
    fn forbidden_states_disappear_under_the_model() {
        // Under a model that forbids the weak state, it is not reachable.
        struct NoWeak;
        impl ConsistencyModel for NoWeak {
            fn name(&self) -> &str {
                "no-weak"
            }
            fn allows(&self, x: &Execution) -> bool {
                // Forbid executions where both final regs are (1, 0).
                !(x.final_regs[1].get("r0") == Some(&crate::event::Val::Int(1))
                    && x.final_regs[1].get("r1") == Some(&crate::event::Val::Int(0)))
            }
        }
        let t = library::by_name("MP").unwrap().test();
        let s = collect_states(&NoWeak, &t, &EnumOptions::default()).unwrap();
        assert_eq!(s.positive(), 0);
        let weak = s.states.values().find(|c| c.satisfies).unwrap();
        assert_eq!(weak.allowed, 0);
        assert_eq!(weak.forbidden, 1);
    }

    #[test]
    fn pointer_states_render_symbolically() {
        let t = library::by_name("MP+wmb+addr").unwrap().test();
        let s = collect_states(&AllowAll, &t, &EnumOptions::default()).unwrap();
        assert!(s.states.keys().any(|k| k.0.contains("=&w")), "{:?}", s.states.keys());
    }
}
