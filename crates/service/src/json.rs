//! A minimal JSON value type, parser, and printer.
//!
//! The serve mode speaks JSON-lines; the workspace builds offline with
//! zero external dependencies, so (like SplitMix64 and FNV) the ~RFC 8259
//! subset we need is vendored: objects, arrays, strings with escapes,
//! numbers, booleans, null. Numbers are held as `f64` but printed
//! without a fractional part when integral, so counters round-trip;
//! duplicate object keys keep the last value (as `serde_json` does).

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered key/value pairs (responses print fields in the
    /// order they were built).
    Obj(Vec<(String, Json)>),
}

/// Parse failure: a message and the byte offset it refers to.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    pub message: String,
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parse one JSON document (trailing whitespace allowed, nothing else).
    ///
    /// # Errors
    ///
    /// Returns the first syntax error with its byte offset.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: text.as_bytes(), at: 0, depth: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.at != p.bytes.len() {
            return Err(p.error("trailing characters"));
        }
        Ok(v)
    }

    /// Object field lookup (`None` on non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Convenience constructor: an object from owned pairs.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Convenience constructor: a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience constructor: an integer value.
    pub fn num(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// Parsing is recursive, so nesting depth is capped: `[[[[…` from a
/// hostile client must produce a parse error, not a stack overflow
/// (which `catch_unwind` cannot contain).
const MAX_DEPTH: usize = 256;

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
    depth: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> JsonError {
        JsonError { message: message.to_string(), offset: self.at }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.at), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.at += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.at += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.eat(b) {
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.error("nesting too deep"));
        }
        self.depth += 1;
        let v = match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a value")),
        };
        self.depth -= 1;
        v
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            self.expect(b'}')?;
            return Ok(Json::Obj(fields));
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            self.expect(b']')?;
            return Ok(Json::Arr(items));
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.at + 1..self.at + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.error("bad \\u escape"))?;
                            // Surrogate pairs are rejected rather than
                            // recombined; litmus sources are ASCII.
                            let c = char::from_u32(hex)
                                .ok_or_else(|| self.error("bad \\u escape"))?;
                            out.push(c);
                            self.at += 4;
                        }
                        _ => return Err(self.error("bad escape")),
                    }
                    self.at += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let rest = &self.bytes[self.at..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.at += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.at;
        if self.eat(b'-') {}
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.at += 1;
        }
        if self.eat(b'.') {
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.at += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.at += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.at += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.at += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.at]).unwrap();
        text.parse::<f64>().map(Json::Num).map_err(|_| self.error("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_request() {
        let text = r#"{"op":"check","source":"C t\n{ x=0; }\n","jobs":4,"warm":true}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.get("op").and_then(Json::as_str), Some("check"));
        assert_eq!(v.get("jobs").and_then(Json::as_u64), Some(4));
        assert_eq!(v.get("warm").and_then(Json::as_bool), Some(true));
        assert!(v.get("source").unwrap().as_str().unwrap().contains("x=0"));
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn escapes_survive_round_trip() {
        let v = Json::obj(vec![("s", Json::str("a\"b\\c\nd\te"))]);
        let text = v.to_string();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Json::num(42).to_string(), "42");
        assert_eq!(Json::Num(1.5).to_string(), "1.5");
        assert_eq!(Json::Num(-0.0).to_string(), "0");
    }

    #[test]
    fn arrays_and_nesting() {
        let v = Json::parse(r#"[1, [2, {"a": null}], "x"]"#).unwrap();
        let items = v.as_arr().unwrap();
        assert_eq!(items.len(), 3);
        assert_eq!(items[1].as_arr().unwrap()[1].get("a"), Some(&Json::Null));
    }

    #[test]
    fn errors_carry_offsets() {
        let err = Json::parse(r#"{"a": }"#).unwrap_err();
        assert_eq!(err.offset, 6);
        assert!(Json::parse("[1,2").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse(r#""unterminated"#).is_err());
    }

    #[test]
    fn deep_nesting_is_an_error_not_a_stack_overflow() {
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        let err = Json::parse(&deep).unwrap_err();
        assert!(err.message.contains("too deep"));
        // Well under the cap still parses.
        let ok = "[".repeat(200) + &"]".repeat(200);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn duplicate_keys_keep_the_last_value() {
        let v = Json::parse(r#"{"a":1,"a":2}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(2));
    }
}
