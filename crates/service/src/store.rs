//! Persistent verdict store: an append-only, checksummed binary log with
//! an in-memory index.
//!
//! ## Log format
//!
//! ```text
//! file   := magic record*
//! magic  := "LKMMVS01"                     (8 bytes)
//! record := len:u32le checksum:u64le payload
//! payload := key:u128le verdict:u8 condition_holds:u8
//!            candidates:u64le allowed:u64le witnesses:u64le
//! ```
//!
//! `len` is the payload length (42 today; readers accept longer payloads
//! whose prefix parses, so fields can be appended later), `checksum` is
//! FNV-1a-64 of the payload. Each record is appended with a single
//! `write_all`; durability is a [`VerdictStore::flush`] (`fsync` of the
//! file, plus — once per store lifetime — of the parent directory, so a
//! crash cannot lose the just-created file itself) away.
//!
//! ## Crash safety & recovery
//!
//! A crash can only truncate or tear the *last* record (appends never
//! rewrite earlier bytes). On open, the log is scanned from the start
//! and stops at the first bad frame, distinguishing two defects:
//!
//! * a **torn tail** — the final frame is an incomplete prefix (fewer
//!   bytes on disk than its header promises). This is the expected
//!   artifact of a crash mid-append and is silently truncated away.
//! * a **corrupt frame** — a frame that is fully present but fails its
//!   checksum, carries an absurd length, or does not parse. This is not
//!   something an append crash can produce; it means the bytes rotted
//!   or were overwritten. The frame and everything after it (frame
//!   boundaries past it cannot be trusted) are dropped, and the count
//!   is reported separately so operators can tell rot from crashes.
//!
//! A file whose magic is wrong is treated as empty (quarantined to
//! `<path>.corrupt` rather than deleted). Within the valid prefix,
//! later records win — re-checking a test after a semantic change
//! appends rather than rewrites.
//!
//! ## Locking
//!
//! Opening a store takes a sibling `<path>.lock` advisory lockfile
//! (create-exclusive, holding the owner's PID). A second opener gets
//! [`StoreError::Locked`] instead of interleaving appends into the same
//! log. A lockfile whose PID is no longer alive is stale (the holder
//! crashed before its `Drop` ran) and is reclaimed.
//!
//! ## Maintenance
//!
//! [`VerdictStore::scrub`] verifies every frame checksum read-only (or
//! repairs defects in place), [`VerdictStore::compact`] rewrites the
//! log dropping superseded frames behind an atomic rename (fsyncing
//! file *and* directory), and [`VerdictStore::export`] /
//! [`VerdictStore::merge`] copy warm verdicts between stores with
//! last-writer-wins determinism.

use crate::hash::fnv64;
use lkmm_core::faultpoint;
use lkmm_exec::{TestResult, Verdict};
use std::collections::HashMap;
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 8] = b"LKMMVS01";
const PAYLOAD_LEN: usize = 16 + 1 + 1 + 8 + 8 + 8;
/// Guard against a corrupt length field making the scanner skip the rest
/// of the file: no legitimate payload is remotely this large.
const MAX_PAYLOAD_LEN: u32 = 1 << 20;

/// Errors from opening or maintaining a store.
#[derive(Debug)]
pub enum StoreError {
    /// Another live process (or another handle in this one) holds the
    /// store's advisory lockfile.
    Locked {
        /// The lockfile that is held.
        lock: PathBuf,
        /// The holder's PID as recorded in the lockfile, if readable.
        pid: Option<u32>,
    },
    /// Plain I/O failure.
    Io(io::Error),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Locked { lock, pid } => match pid {
                Some(pid) => {
                    write!(f, "store is locked by pid {pid} (lockfile {})", lock.display())
                }
                None => write!(f, "store is locked (lockfile {})", lock.display()),
            },
            StoreError::Io(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> StoreError {
        StoreError::Io(e)
    }
}

impl From<StoreError> for io::Error {
    /// For callers that only speak `io::Error`; `Locked` degrades to
    /// [`io::ErrorKind::WouldBlock`] (typed callers match on
    /// [`StoreError`] directly to keep the distinct exit code).
    fn from(e: StoreError) -> io::Error {
        match e {
            StoreError::Io(e) => e,
            e @ StoreError::Locked { .. } => io::Error::new(io::ErrorKind::WouldBlock, e.to_string()),
        }
    }
}

/// What [`VerdictStore::open`] found on disk.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Records recovered into the index.
    pub records: usize,
    /// Bytes discarded from an incomplete final frame — the expected
    /// artifact of a crash mid-append (0 on a clean log).
    pub torn_bytes: u64,
    /// Complete-but-invalid frames dropped (bad checksum, absurd
    /// length, or unparseable payload): genuine corruption, which an
    /// append crash cannot produce.
    pub corrupt_frames: usize,
    /// Bytes discarded because of corrupt frames (the frames themselves
    /// plus everything after them, whose boundaries can't be trusted).
    pub corrupt_bytes: u64,
    /// Whether the magic was wrong and the old file was quarantined.
    pub quarantined: bool,
    /// PID recorded in a stale lockfile this open reclaimed (the holder
    /// crashed before its `Drop` removed the lock). `None` when the lock
    /// was free, or when the stale lockfile held no readable PID.
    pub reclaimed_pid: Option<u32>,
}

impl RecoveryReport {
    /// Total bytes discarded past the last valid record, regardless of
    /// why.
    pub fn truncated_bytes(&self) -> u64 {
        self.torn_bytes + self.corrupt_bytes
    }

    /// Whether the log was pristine: every byte accounted for, right
    /// magic.
    pub fn is_clean(&self) -> bool {
        self.truncated_bytes() == 0 && !self.quarantined
    }
}

/// What [`VerdictStore::scrub`] found (and possibly repaired).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Valid frames in the log.
    pub records: usize,
    /// Distinct keys after last-writer-wins replay.
    pub distinct_keys: usize,
    /// Frames superseded by a later frame for the same key.
    pub superseded: usize,
    /// See [`RecoveryReport::torn_bytes`].
    pub torn_bytes: u64,
    /// See [`RecoveryReport::corrupt_frames`].
    pub corrupt_frames: usize,
    /// See [`RecoveryReport::corrupt_bytes`].
    pub corrupt_bytes: u64,
    /// The file's magic was wrong: nothing in it is trustworthy.
    pub wrong_magic: bool,
    /// Whether a repair pass ran and the defects above were healed.
    pub repaired: bool,
}

impl ScrubReport {
    /// Whether the log has any defect a repair would change.
    pub fn defects(&self) -> bool {
        self.wrong_magic || self.torn_bytes > 0 || self.corrupt_frames > 0
    }
}

/// What [`VerdictStore::compact`] / [`VerdictStore::export`] did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CompactReport {
    /// Valid frames read from the source log.
    pub records_in: usize,
    /// Frames written to the compacted log (one per distinct key).
    pub records_out: usize,
    /// Superseded frames dropped (`records_in - records_out`).
    pub superseded: usize,
    /// Defective tail bytes dropped (torn or corrupt).
    pub defect_bytes: u64,
    /// Source log size in bytes.
    pub bytes_before: u64,
    /// Compacted log size in bytes.
    pub bytes_after: u64,
}

/// What [`VerdictStore::merge`] did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MergeReport {
    /// Distinct keys replayed from the source store.
    pub source_keys: usize,
    /// Entries appended into the destination (new keys, plus existing
    /// keys whose result differed — the source wins).
    pub merged: usize,
    /// Entries already present with an identical result.
    pub unchanged: usize,
}

/// RAII advisory lockfile: `<store>.lock` created `create_new` with the
/// owner's PID inside. Dropped (and the file removed) when the store
/// closes. A lockfile naming a dead PID is stale — its holder crashed —
/// and is reclaimed. This is advisory: it serialises cooperating
/// `herd-rs` processes, it does not stop a hostile writer.
pub(crate) struct LockFile {
    path: PathBuf,
    /// PID named by a stale lockfile this acquisition reclaimed, so the
    /// opener can tell the operator *whose* crashed lock it took over.
    reclaimed_pid: Option<u32>,
}

impl LockFile {
    pub(crate) fn acquire(store_path: &Path) -> Result<LockFile, StoreError> {
        let path = sibling(store_path, ".lock");
        let mut reclaimed_pid = None;
        for reclaim_attempted in [false, true] {
            match OpenOptions::new().write(true).create_new(true).open(&path) {
                Ok(mut f) => {
                    // Best-effort: a lockfile without a readable PID is
                    // simply treated as stale by the next contender.
                    let _ = writeln!(f, "{}", std::process::id());
                    let _ = f.sync_data();
                    return Ok(LockFile { path, reclaimed_pid });
                }
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    let pid = fs::read_to_string(&path)
                        .ok()
                        .and_then(|s| s.trim().parse::<u32>().ok());
                    let stale = match pid {
                        Some(pid) => !pid_alive(pid),
                        // Unreadable/empty lockfile: the holder died
                        // between create and write. Reclaim.
                        None => true,
                    };
                    if stale && !reclaim_attempted {
                        reclaimed_pid = pid;
                        let _ = fs::remove_file(&path);
                        continue;
                    }
                    return Err(StoreError::Locked { lock: path, pid });
                }
                Err(e) => return Err(StoreError::Io(e)),
            }
        }
        unreachable!("lock acquisition loop always returns");
    }
}

impl Drop for LockFile {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

fn pid_alive(pid: u32) -> bool {
    if cfg!(target_os = "linux") {
        Path::new(&format!("/proc/{pid}")).exists()
    } else {
        // No portable liveness probe: never reclaim, fail safe.
        true
    }
}

/// `<dir>/<name><suffix>` — unlike `with_extension`, never eats part of
/// the store's own file name.
pub(crate) fn sibling(path: &Path, suffix: &str) -> PathBuf {
    let mut name = path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(suffix);
    path.with_file_name(name)
}

/// `fsync` the directory holding `path`, making renames and the file's
/// own directory entry durable. (POSIX: `fsync(file)` alone does not
/// persist the *entry*; a crash right after can yield an empty
/// directory.)
fn fsync_dir(path: &Path) -> io::Result<()> {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    File::open(parent)?.sync_all()
}

/// How the scan of a log body ended.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct TailDefect {
    torn_bytes: u64,
    corrupt_frames: usize,
    corrupt_bytes: u64,
}

/// Result of scanning the record area (everything after the magic).
pub(crate) struct LogScan {
    /// Valid records in log order (duplicates preserved).
    pub(crate) records: Vec<(u128, TestResult)>,
    /// File offset just past the last valid record.
    good_end: u64,
    defect: TailDefect,
}

impl LogScan {
    /// Total defective tail bytes (torn or corrupt).
    pub(crate) fn defect_bytes(&self) -> u64 {
        self.defect.torn_bytes + self.defect.corrupt_bytes
    }
}

/// Scan `bytes` (the whole file, magic included — assumed already
/// verified) and classify how the log ends.
pub(crate) fn scan_records(bytes: &[u8]) -> LogScan {
    let mut records = Vec::new();
    let mut at = MAGIC.len();
    let mut defect = TailDefect::default();
    loop {
        let remaining = bytes.len() - at;
        if remaining == 0 {
            break;
        }
        // A header needs 12 bytes; fewer on disk is a torn append.
        let Some(header) = bytes.get(at..at + 12) else {
            defect.torn_bytes = remaining as u64;
            break;
        };
        let len = u32::from_le_bytes(header[0..4].try_into().unwrap());
        if len > MAX_PAYLOAD_LEN {
            // A crash truncates; it does not invent a wild length.
            defect.corrupt_frames = 1;
            defect.corrupt_bytes = remaining as u64;
            break;
        }
        let checksum = u64::from_le_bytes(header[4..12].try_into().unwrap());
        let Some(payload) = bytes.get(at + 12..at + 12 + len as usize) else {
            // Header complete, payload short: torn mid-payload.
            defect.torn_bytes = remaining as u64;
            break;
        };
        if fnv64(payload) != checksum {
            defect.corrupt_frames = 1;
            defect.corrupt_bytes = remaining as u64;
            break;
        }
        match parse_payload(payload) {
            Some((key, result)) => {
                records.push((key, result));
                at += 12 + len as usize;
            }
            None => {
                // Checksum held but the payload is gibberish: a writer
                // bug or rot that happened to preserve the checksum.
                defect.corrupt_frames = 1;
                defect.corrupt_bytes = remaining as u64;
                break;
            }
        }
    }
    LogScan { records, good_end: at as u64, defect }
}

/// Last-writer-wins replay into key order: deterministic content for
/// compacted snapshots regardless of original append order.
pub(crate) fn replay_sorted(records: &[(u128, TestResult)]) -> Vec<(u128, TestResult)> {
    let mut map: HashMap<u128, TestResult> = HashMap::with_capacity(records.len());
    for (key, result) in records {
        map.insert(*key, result.clone());
    }
    let mut out: Vec<(u128, TestResult)> = map.into_iter().collect();
    out.sort_unstable_by_key(|(k, _)| *k);
    out
}

fn encode_record(key: u128, r: &TestResult) -> Vec<u8> {
    let payload = encode_payload(key, r);
    let mut record = Vec::with_capacity(12 + payload.len());
    record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    record.extend_from_slice(&fnv64(&payload).to_le_bytes());
    record.extend_from_slice(&payload);
    record
}

/// Write a fresh log holding exactly `records` to `dst`, atomically:
/// build `<dst>.tmp`, fsync it, rename over `dst`, fsync the directory.
/// A crash at any point leaves either the old `dst` intact (plus a
/// stray `.tmp` the next attempt truncates) or the complete new one.
pub(crate) fn write_snapshot(dst: &Path, records: &[(u128, TestResult)]) -> io::Result<u64> {
    let tmp = sibling(dst, ".tmp");
    let mut out = Vec::with_capacity(MAGIC.len() + records.len() * (12 + PAYLOAD_LEN));
    out.extend_from_slice(MAGIC);
    for (key, result) in records {
        out.extend_from_slice(&encode_record(*key, result));
    }
    let mut f = OpenOptions::new().write(true).create(true).truncate(true).open(&tmp)?;
    if faultpoint::should_fail("store.compact.crash") {
        // Simulated crash mid-rewrite: half the snapshot reaches the
        // temp file, the rename never happens, the original survives.
        f.write_all(&out[..out.len() / 2])?;
        return Err(io::Error::new(
            io::ErrorKind::Other,
            "faultpoint: injected crash at `store.compact.crash`",
        ));
    }
    f.write_all(&out)?;
    f.sync_data()?;
    drop(f);
    fs::rename(&tmp, dst)?;
    fsync_dir(dst)?;
    Ok(out.len() as u64)
}

/// Read a log file for maintenance, classifying its magic.
pub(crate) fn read_log(path: &Path) -> io::Result<(Vec<u8>, bool)> {
    let bytes = fs::read(path)?;
    let wrong_magic =
        !bytes.is_empty() && (bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC);
    Ok((bytes, wrong_magic))
}

/// Append-only on-disk verdict cache with an in-memory index.
///
/// All lookups hit the index; the file is only read at open and only
/// appended afterwards. An in-memory store (no backing file) supports
/// the same API for tests and ephemeral servers.
pub struct VerdictStore {
    index: HashMap<u128, TestResult>,
    file: Option<File>,
    path: Option<PathBuf>,
    recovery: RecoveryReport,
    appended: usize,
    /// Held for the lifetime of a file-backed store; removed on drop.
    _lock: Option<LockFile>,
    /// Offset of the end of the last fully-written record.
    end: u64,
    /// A previous append failed partway: the file may hold a torn tail
    /// past `end` that must be cut back before the next append.
    dirty_tail: bool,
    /// Whether the parent directory has been fsynced since open (done
    /// on the first flush, so a crash can't lose the file entry).
    dir_synced: bool,
    /// Log records whose verdict a later record for the same key has
    /// replaced: reclaimable space a compaction would drop.
    superseded: usize,
}

impl VerdictStore {
    /// Open (creating if absent) the store at `path`, taking its
    /// advisory lockfile and recovering the valid prefix of the log.
    ///
    /// # Errors
    ///
    /// [`StoreError::Locked`] if another live process holds the store;
    /// otherwise I/O errors opening, reading, or truncating the file.
    pub fn open(path: impl AsRef<Path>) -> Result<VerdictStore, StoreError> {
        let path = path.as_ref().to_path_buf();
        let lock = LockFile::acquire(&path)?;
        let reclaimed_pid = lock.reclaimed_pid;
        let mut file = OpenOptions::new().read(true).write(true).create(true).open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;

        let mut recovery = RecoveryReport::default();
        let mut index = HashMap::new();
        let good_end: u64;

        if bytes.is_empty() {
            file.write_all(MAGIC)?;
            good_end = MAGIC.len() as u64;
        } else if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
            // Not our file (or a torn first write): quarantine and start
            // fresh rather than silently destroying whatever it was.
            drop(file);
            let quarantine = path.with_extension("corrupt");
            fs::rename(&path, &quarantine)?;
            file = OpenOptions::new().read(true).write(true).create(true).open(&path)?;
            file.write_all(MAGIC)?;
            // The rename and the fresh file must both survive a crash.
            fsync_dir(&path)?;
            good_end = MAGIC.len() as u64;
            recovery.quarantined = true;
        } else {
            let scan = scan_records(&bytes);
            for (key, result) in scan.records {
                index.insert(key, result);
                recovery.records += 1;
            }
            recovery.torn_bytes = scan.defect.torn_bytes;
            recovery.corrupt_frames = scan.defect.corrupt_frames;
            recovery.corrupt_bytes = scan.defect.corrupt_bytes;
            good_end = scan.good_end;
            if recovery.truncated_bytes() > 0 {
                file.set_len(good_end)?;
            }
        }
        file.seek(SeekFrom::Start(good_end))?;
        recovery.reclaimed_pid = reclaimed_pid;
        let superseded = recovery.records - index.len();
        Ok(VerdictStore {
            index,
            file: Some(file),
            path: Some(path),
            recovery,
            appended: 0,
            _lock: Some(lock),
            end: good_end,
            dirty_tail: false,
            dir_synced: false,
            superseded,
        })
    }

    /// A store with no backing file: same semantics, nothing persists.
    pub fn in_memory() -> VerdictStore {
        VerdictStore {
            index: HashMap::new(),
            file: None,
            path: None,
            recovery: RecoveryReport::default(),
            appended: 0,
            _lock: None,
            end: 0,
            dirty_tail: false,
            dir_synced: false,
            superseded: 0,
        }
    }

    /// The backing file, if any.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// What recovery found at open time.
    pub fn recovery(&self) -> RecoveryReport {
        self.recovery
    }

    /// Number of distinct keys in the index.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Records appended since open.
    pub fn appended(&self) -> usize {
        self.appended
    }

    /// Log records superseded by a later write to the same key — the
    /// space an in-place compaction would reclaim.
    pub fn superseded(&self) -> usize {
        self.superseded
    }

    /// Cached result for `key`.
    pub fn get(&self, key: u128) -> Option<&TestResult> {
        self.index.get(&key)
    }

    /// Every live entry, in unspecified order. Callers needing
    /// determinism (snapshots, merges) sort by key.
    pub fn entries(&self) -> impl Iterator<Item = (u128, &TestResult)> + '_ {
        self.index.iter().map(|(&k, v)| (k, v))
    }

    /// Insert `result` under `key`, appending to the log. A no-op if an
    /// identical entry is already present; a differing entry for the same
    /// key (e.g. after a model change without a salt bump) is overwritten
    /// in the index and appended, so replay keeps the newer verdict.
    ///
    /// A failed append leaves the index untouched and is safe to retry:
    /// the next `put` cuts any torn bytes from the previous attempt back
    /// off the file before writing.
    ///
    /// # Errors
    ///
    /// I/O errors appending to the log.
    pub fn put(&mut self, key: u128, result: TestResult) -> io::Result<bool> {
        if self.index.get(&key) == Some(&result) {
            return Ok(false);
        }
        if let Some(file) = &mut self.file {
            if self.dirty_tail {
                // Heal the torn tail of a failed earlier append so the
                // retry appends after the last *good* record. (A crash
                // instead of a retry leaves the tear for open()-time
                // recovery to cut.)
                file.set_len(self.end)?;
                file.seek(SeekFrom::Start(self.end))?;
                self.dirty_tail = false;
            }
            let record = encode_record(key, &result);
            // One write_all per record: a crash mid-append leaves a torn
            // tail that recovery truncates, never a bad earlier record.
            if faultpoint::should_fail("store.append.torn") {
                // Simulated torn append: half the record reaches the file
                // before the "crash" — exactly what recovery truncates.
                self.dirty_tail = true;
                file.write_all(&record[..record.len() / 2])?;
                return Err(io::Error::new(
                    io::ErrorKind::Other,
                    "faultpoint: injected I/O error at `store.append.torn`",
                ));
            }
            if let Err(e) = file.write_all(&record) {
                self.dirty_tail = true;
                return Err(e);
            }
            self.end += record.len() as u64;
        }
        if self.index.insert(key, result).is_some() {
            self.superseded += 1;
        }
        self.appended += 1;
        Ok(true)
    }

    /// Force appended records to stable storage: `fsync` the file, and —
    /// the first time — the parent directory, so a crash can't lose the
    /// directory entry of a just-created store.
    ///
    /// # Errors
    ///
    /// I/O errors from the sync.
    pub fn flush(&mut self) -> io::Result<()> {
        if let Some(file) = &mut self.file {
            faultpoint::inject_io("store.flush")?;
            file.sync_data()?;
            if !self.dir_synced {
                faultpoint::inject_io("store.append.sync")?;
                fsync_dir(self.path.as_ref().expect("file-backed store has a path"))?;
                self.dir_synced = true;
            }
        }
        Ok(())
    }

    /// Rewrite the backing log as a key-ordered snapshot of the live
    /// index while the store stays open, dropping superseded frames.
    /// Unlike the offline [`VerdictStore::compact`], this keeps the
    /// lock and the index: a live server can reclaim space without
    /// closing. The snapshot write is atomic (tmp + rename), so a crash
    /// leaves either the old log or the complete new one. A no-op for
    /// in-memory stores.
    ///
    /// # Errors
    ///
    /// I/O errors writing the snapshot or reopening the log.
    pub fn compact_in_place(&mut self) -> io::Result<CompactReport> {
        let Some(path) = self.path.clone() else {
            return Ok(CompactReport::default());
        };
        // Frames currently in the log: one per live key plus one per
        // superseded write (invariant held by `open` and `put`).
        let records_in = self.index.len() + self.superseded;
        let bytes_before = self.end;
        let mut sorted: Vec<(u128, TestResult)> =
            self.index.iter().map(|(&k, v)| (k, v.clone())).collect();
        sorted.sort_by_key(|&(k, _)| k);
        let bytes_after = write_snapshot(&path, &sorted)?;
        // The rename inside `write_snapshot` unlinked the file our
        // handle pointed at: reopen and seek to the new end.
        let mut file = OpenOptions::new().read(true).write(true).open(&path)?;
        file.seek(SeekFrom::Start(bytes_after))?;
        self.file = Some(file);
        self.end = bytes_after;
        self.dirty_tail = false;
        // `write_snapshot` fsynced the directory for the rename.
        self.dir_synced = true;
        let superseded = self.superseded;
        self.superseded = 0;
        Ok(CompactReport {
            records_in,
            records_out: sorted.len(),
            superseded,
            defect_bytes: 0,
            bytes_before,
            bytes_after,
        })
    }

    /// Verify every frame of the log at `path` read-only; with `repair`,
    /// additionally heal what was found (truncate a defective tail,
    /// quarantine a wrong-magic file and re-initialise).
    ///
    /// Takes the store lock: scrubbing under a live writer would
    /// misreport its in-flight tail as torn.
    ///
    /// # Errors
    ///
    /// [`StoreError::Locked`] if the store is in use; I/O errors
    /// reading (including a missing file) or repairing.
    pub fn scrub(path: impl AsRef<Path>, repair: bool) -> Result<ScrubReport, StoreError> {
        let path = path.as_ref();
        let _lock = LockFile::acquire(path)?;
        let (bytes, wrong_magic) = read_log(path)?;
        let mut report = ScrubReport { wrong_magic, ..ScrubReport::default() };
        if wrong_magic {
            if repair {
                let quarantine = path.with_extension("corrupt");
                fs::rename(path, &quarantine)?;
                fs::write(path, MAGIC)?;
                fsync_dir(path)?;
                report.repaired = true;
            }
            return Ok(report);
        }
        if bytes.is_empty() {
            // Created but never written: open() will lay down the magic.
            return Ok(report);
        }
        let scan = scan_records(&bytes);
        report.records = scan.records.len();
        report.distinct_keys = replay_sorted(&scan.records).len();
        report.superseded = report.records - report.distinct_keys;
        report.torn_bytes = scan.defect.torn_bytes;
        report.corrupt_frames = scan.defect.corrupt_frames;
        report.corrupt_bytes = scan.defect.corrupt_bytes;
        if repair && report.defects() {
            let f = OpenOptions::new().write(true).open(path)?;
            f.set_len(scan.good_end)?;
            f.sync_data()?;
            report.repaired = true;
        }
        Ok(report)
    }

    /// Rewrite the log at `path` in place, dropping superseded frames
    /// and any defective tail, behind an atomic rename (+ fsync of file
    /// and directory). The surviving entries are written in key order,
    /// so equal stores compact to byte-identical files.
    ///
    /// # Errors
    ///
    /// [`StoreError::Locked`] if the store is in use; an I/O error for a
    /// missing or wrong-magic file (scrub with repair first) or a failed
    /// rewrite — in which case the original log is untouched.
    pub fn compact(path: impl AsRef<Path>) -> Result<CompactReport, StoreError> {
        let path = path.as_ref();
        let _lock = LockFile::acquire(path)?;
        let (bytes, wrong_magic) = read_log(path)?;
        if wrong_magic {
            return Err(StoreError::Io(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}: not a verdict store (run scrub --repair first)", path.display()),
            )));
        }
        let scan = scan_records(&bytes);
        let sorted = replay_sorted(&scan.records);
        let bytes_after = write_snapshot(path, &sorted)?;
        Ok(CompactReport {
            records_in: scan.records.len(),
            records_out: sorted.len(),
            superseded: scan.records.len() - sorted.len(),
            defect_bytes: scan.defect.torn_bytes + scan.defect.corrupt_bytes,
            bytes_before: bytes.len() as u64,
            bytes_after,
        })
    }

    /// Write a compacted snapshot of the store at `src` to `dst`,
    /// leaving `src` untouched. Locks both paths; the write is atomic
    /// like [`VerdictStore::compact`].
    ///
    /// # Errors
    ///
    /// [`StoreError::Locked`] if either store is in use; I/O errors
    /// reading `src` or writing `dst`.
    pub fn export(src: impl AsRef<Path>, dst: impl AsRef<Path>) -> Result<CompactReport, StoreError> {
        let (src, dst) = (src.as_ref(), dst.as_ref());
        let _src_lock = LockFile::acquire(src)?;
        let _dst_lock = LockFile::acquire(dst)?;
        let (bytes, wrong_magic) = read_log(src)?;
        if wrong_magic {
            return Err(StoreError::Io(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}: not a verdict store (run scrub --repair first)", src.display()),
            )));
        }
        let scan = scan_records(&bytes);
        let sorted = replay_sorted(&scan.records);
        let bytes_after = write_snapshot(dst, &sorted)?;
        Ok(CompactReport {
            records_in: scan.records.len(),
            records_out: sorted.len(),
            superseded: scan.records.len() - sorted.len(),
            defect_bytes: scan.defect.torn_bytes + scan.defect.corrupt_bytes,
            bytes_before: bytes.len() as u64,
            bytes_after,
        })
    }

    /// Merge the entries of the store at `src` into the store at `dst`
    /// (appending; `src` is untouched). Conflicting keys resolve
    /// last-writer-wins in the merged-in store's favour, and entries are
    /// replayed in key order, so merging the same stores always yields
    /// the same log.
    ///
    /// # Errors
    ///
    /// [`StoreError::Locked`] if either store is in use; I/O errors
    /// reading `src` or appending to `dst`.
    pub fn merge(dst: impl AsRef<Path>, src: impl AsRef<Path>) -> Result<MergeReport, StoreError> {
        let (dst, src) = (dst.as_ref(), src.as_ref());
        let _src_lock = LockFile::acquire(src)?;
        let mut store = VerdictStore::open(dst)?;
        let (bytes, wrong_magic) = read_log(src)?;
        if wrong_magic {
            return Err(StoreError::Io(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}: not a verdict store (run scrub --repair first)", src.display()),
            )));
        }
        let sorted = replay_sorted(&scan_records(&bytes).records);
        let mut report = MergeReport { source_keys: sorted.len(), ..MergeReport::default() };
        for (key, result) in sorted {
            if store.put(key, result)? {
                report.merged += 1;
            } else {
                report.unchanged += 1;
            }
        }
        store.flush()?;
        Ok(report)
    }
}

/// Per-shard health line reported by sharded backends (see
/// [`crate::shard::ShardedStore`]); a plain [`VerdictStore`] reports
/// none.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Shard ordinal (0-based).
    pub shard: usize,
    /// Backing log path, if file-backed.
    pub path: Option<PathBuf>,
    /// Distinct keys in the shard's index.
    pub records: usize,
    /// Records appended to the shard since open.
    pub appended: usize,
    /// Superseded frames a compaction would drop.
    pub superseded: usize,
    /// Whether open-time recovery quarantined a wrong-magic log.
    pub quarantined: bool,
    /// Why the shard stopped accepting appends, if it has been poisoned
    /// by an append failure (reads keep working).
    pub poisoned: Option<String>,
    /// Appends dropped because the shard was already poisoned.
    pub dropped: usize,
}

/// The storage behaviour the checking layers actually need: keyed
/// verdict lookup, append, and durability — the [`VerdictStore`] API
/// minus maintenance statics. Splitting this out lets
/// [`crate::BatchChecker`] and [`crate::MultiBatchChecker`] run
/// unchanged over a plain store, a shared [`crate::ShardedStore`]
/// handle, or anything else that can answer these six questions.
///
/// `get` returns an owned result (not `&TestResult`) so that
/// lock-guarded backends can release their lock before returning.
pub trait VerdictLog {
    /// Cached result for `key`.
    fn get(&self, key: u128) -> Option<TestResult>;
    /// Insert `result` under `key`. `Ok(false)` if nothing was written
    /// (already present, or the backend dropped it after quarantining a
    /// failing shard).
    fn put(&mut self, key: u128, result: TestResult) -> io::Result<bool>;
    /// Force appended records to stable storage.
    fn flush(&mut self) -> io::Result<()>;
    /// Distinct keys stored.
    fn len(&self) -> usize;
    /// Whether the log holds no keys.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Records appended since open.
    fn appended(&self) -> usize;
    /// Aggregate open-time recovery findings.
    fn recovery(&self) -> RecoveryReport;
    /// Backing path (the base path for sharded backends), if any.
    fn path(&self) -> Option<PathBuf>;
    /// Per-shard breakdown; empty for unsharded backends.
    fn shard_stats(&self) -> Vec<ShardStats> {
        Vec::new()
    }
}

impl VerdictLog for VerdictStore {
    fn get(&self, key: u128) -> Option<TestResult> {
        VerdictStore::get(self, key).cloned()
    }

    fn put(&mut self, key: u128, result: TestResult) -> io::Result<bool> {
        VerdictStore::put(self, key, result)
    }

    fn flush(&mut self) -> io::Result<()> {
        VerdictStore::flush(self)
    }

    fn len(&self) -> usize {
        VerdictStore::len(self)
    }

    fn appended(&self) -> usize {
        VerdictStore::appended(self)
    }

    fn recovery(&self) -> RecoveryReport {
        VerdictStore::recovery(self)
    }

    fn path(&self) -> Option<PathBuf> {
        VerdictStore::path(self).map(Path::to_path_buf)
    }
}

fn encode_payload(key: u128, r: &TestResult) -> Vec<u8> {
    let mut out = Vec::with_capacity(PAYLOAD_LEN);
    out.extend_from_slice(&key.to_le_bytes());
    out.push(match r.verdict {
        Verdict::Forbidden => 0,
        Verdict::Allowed => 1,
    });
    out.push(u8::from(r.condition_holds));
    out.extend_from_slice(&(r.candidates as u64).to_le_bytes());
    out.extend_from_slice(&(r.allowed as u64).to_le_bytes());
    out.extend_from_slice(&(r.witnesses as u64).to_le_bytes());
    out
}

fn parse_payload(payload: &[u8]) -> Option<(u128, TestResult)> {
    if payload.len() < PAYLOAD_LEN {
        return None;
    }
    let key = u128::from_le_bytes(payload[0..16].try_into().unwrap());
    let verdict = match payload[16] {
        0 => Verdict::Forbidden,
        1 => Verdict::Allowed,
        _ => return None,
    };
    let condition_holds = match payload[17] {
        0 => false,
        1 => true,
        _ => return None,
    };
    let u64_at = |i: usize| u64::from_le_bytes(payload[i..i + 8].try_into().unwrap());
    let result = TestResult {
        verdict,
        condition_holds,
        candidates: u64_at(18) as usize,
        allowed: u64_at(26) as usize,
        witnesses: u64_at(34) as usize,
    };
    Some((key, result))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(i: usize) -> TestResult {
        TestResult {
            verdict: if i % 2 == 0 { Verdict::Allowed } else { Verdict::Forbidden },
            condition_holds: i % 3 == 0,
            candidates: 10 + i,
            allowed: 5 + i,
            witnesses: i,
        }
    }

    fn temp_path(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("lkmm-store-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        let _ = std::fs::remove_file(sibling(&p, ".lock"));
        p
    }

    #[test]
    fn round_trips_across_reopen() {
        let path = temp_path("roundtrip");
        {
            let mut s = VerdictStore::open(&path).unwrap();
            for i in 0..10 {
                assert!(s.put(i as u128 * 7, sample(i)).unwrap());
            }
            // Identical re-put is a no-op.
            assert!(!s.put(0, sample(0)).unwrap());
            s.flush().unwrap();
        }
        let s = VerdictStore::open(&path).unwrap();
        assert_eq!(s.len(), 10);
        assert_eq!(s.recovery(), RecoveryReport { records: 10, ..Default::default() });
        assert!(s.recovery().is_clean());
        for i in 0..10 {
            assert_eq!(s.get(i as u128 * 7), Some(&sample(i)));
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_prefix_kept() {
        let path = temp_path("torn");
        {
            let mut s = VerdictStore::open(&path).unwrap();
            for i in 0..5 {
                s.put(i as u128, sample(i)).unwrap();
            }
        }
        // Chop the file mid-way through the last record.
        let len = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 10).unwrap();
        drop(f);

        let s = VerdictStore::open(&path).unwrap();
        assert_eq!(s.len(), 4);
        assert!(s.recovery().torn_bytes > 0, "a chopped tail is torn, not corrupt");
        assert_eq!(s.recovery().corrupt_frames, 0);
        for i in 0..4 {
            assert_eq!(s.get(i as u128), Some(&sample(i)));
        }
        // The truncation is durable: a third open sees a clean log.
        drop(s);
        let s = VerdictStore::open(&path).unwrap();
        assert!(s.recovery().is_clean());
        assert_eq!(s.len(), 4);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_record_truncates_from_there() {
        let path = temp_path("corrupt");
        {
            let mut s = VerdictStore::open(&path).unwrap();
            for i in 0..5 {
                s.put(i as u128, sample(i)).unwrap();
            }
        }
        // Flip one payload byte in the third record.
        let mut bytes = std::fs::read(&path).unwrap();
        let record = 12 + PAYLOAD_LEN;
        let offset = 8 + 2 * record + 12 + 3;
        bytes[offset] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();

        let s = VerdictStore::open(&path).unwrap();
        assert_eq!(s.len(), 2, "records before the corruption survive");
        assert_eq!(s.recovery().corrupt_frames, 1, "a checksum failure is corruption");
        assert!(s.recovery().corrupt_bytes > 0);
        assert_eq!(s.recovery().torn_bytes, 0, "nothing was torn, the frame was whole");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn wrong_magic_quarantines() {
        let path = temp_path("magic");
        std::fs::write(&path, b"definitely not a verdict store").unwrap();
        let s = VerdictStore::open(&path).unwrap();
        assert!(s.recovery().quarantined);
        assert_eq!(s.len(), 0);
        assert!(path.with_extension("corrupt").exists());
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(path.with_extension("corrupt")).unwrap();
    }

    #[test]
    fn later_records_win_on_replay() {
        let path = temp_path("lastwins");
        {
            let mut s = VerdictStore::open(&path).unwrap();
            s.put(42, sample(0)).unwrap();
            s.put(42, sample(1)).unwrap();
        }
        let s = VerdictStore::open(&path).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(42), Some(&sample(1)));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn in_memory_store_has_same_semantics() {
        let mut s = VerdictStore::in_memory();
        assert!(s.is_empty());
        assert!(s.put(1, sample(1)).unwrap());
        assert!(!s.put(1, sample(1)).unwrap());
        assert_eq!(s.get(1), Some(&sample(1)));
        s.flush().unwrap();
        assert!(s.path().is_none());
    }

    #[test]
    fn second_opener_is_locked_out() {
        let path = temp_path("locked");
        let s = VerdictStore::open(&path).unwrap();
        match VerdictStore::open(&path) {
            Err(StoreError::Locked { pid, .. }) => {
                assert_eq!(pid, Some(std::process::id()));
            }
            other => panic!("expected Locked, got {:?}", other.map(|_| "store")),
        }
        // Maintenance verbs respect the same lock.
        assert!(matches!(VerdictStore::scrub(&path, false), Err(StoreError::Locked { .. })));
        assert!(matches!(VerdictStore::compact(&path), Err(StoreError::Locked { .. })));
        drop(s);
        // The lock dies with the store.
        let _ = VerdictStore::open(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn stale_lock_is_reclaimed() {
        let path = temp_path("stale");
        // No PID this large exists: the holder is long gone.
        std::fs::write(sibling(&path, ".lock"), format!("{}\n", u32::MAX)).unwrap();
        let s = VerdictStore::open(&path).unwrap();
        assert!(s.is_empty());
        assert_eq!(s.recovery().reclaimed_pid, Some(u32::MAX), "reclaim names the holder PID");
        drop(s);
        // An unreadable lockfile (holder died pre-write) is also stale,
        // but there is no PID to report.
        std::fs::write(sibling(&path, ".lock"), "").unwrap();
        let s = VerdictStore::open(&path).unwrap();
        assert_eq!(s.recovery().reclaimed_pid, None);
        drop(s);
        // A clean open reclaims nothing.
        let s = VerdictStore::open(&path).unwrap();
        assert_eq!(s.recovery().reclaimed_pid, None);
        drop(s);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn in_place_compaction_drops_superseded_frames() {
        let path = temp_path("inplace");
        let mut s = VerdictStore::open(&path).unwrap();
        for key in 0..8u128 {
            s.put(key, sample(key as usize)).unwrap();
        }
        // Rewrite half the keys with differing verdicts: 4 superseded
        // frames in the log.
        for key in 0..4u128 {
            s.put(key, sample(key as usize + 100)).unwrap();
        }
        assert_eq!(s.superseded(), 4);
        let report = s.compact_in_place().unwrap();
        assert_eq!(report.records_in, 12);
        assert_eq!(report.records_out, 8);
        assert_eq!(report.superseded, 4);
        assert!(report.bytes_after < report.bytes_before);
        assert_eq!(s.superseded(), 0);
        // The store stays live: appends after compaction still work and
        // survive reopen alongside the compacted content.
        s.put(50, sample(50)).unwrap();
        s.flush().unwrap();
        drop(s);
        let s = VerdictStore::open(&path).unwrap();
        assert!(s.recovery().is_clean());
        assert_eq!(s.len(), 9);
        assert_eq!(s.get(2), Some(&sample(102)));
        assert_eq!(s.get(50), Some(&sample(50)));
        drop(s);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn scrub_classifies_and_repairs_defects() {
        let path = temp_path("scrub");
        {
            let mut s = VerdictStore::open(&path).unwrap();
            for i in 0..6 {
                s.put(i as u128 % 4, sample(i)).unwrap(); // 2 keys superseded
            }
            s.flush().unwrap();
        }
        let clean = VerdictStore::scrub(&path, false).unwrap();
        assert_eq!(clean.records, 6);
        assert_eq!(clean.distinct_keys, 4);
        assert_eq!(clean.superseded, 2);
        assert!(!clean.defects() && !clean.repaired);

        // Tear the tail; verify-only scrub reports but leaves it.
        let len = std::fs::metadata(&path).unwrap().len();
        OpenOptions::new().write(true).open(&path).unwrap().set_len(len - 7).unwrap();
        let torn = VerdictStore::scrub(&path, false).unwrap();
        assert_eq!(torn.torn_bytes, (12 + PAYLOAD_LEN - 7) as u64);
        assert_eq!(torn.corrupt_frames, 0);
        assert!(torn.defects() && !torn.repaired);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), len - 7, "verify-only never writes");

        // Repair truncates; the next scrub is clean.
        let repaired = VerdictStore::scrub(&path, true).unwrap();
        assert!(repaired.repaired);
        let after = VerdictStore::scrub(&path, false).unwrap();
        assert!(!after.defects());
        assert_eq!(after.records, 5);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn scrub_repairs_wrong_magic() {
        let path = temp_path("scrub-magic");
        std::fs::write(&path, b"garbage, not a store").unwrap();
        let report = VerdictStore::scrub(&path, false).unwrap();
        assert!(report.wrong_magic && report.defects() && !report.repaired);
        let report = VerdictStore::scrub(&path, true).unwrap();
        assert!(report.wrong_magic && report.repaired);
        assert!(path.with_extension("corrupt").exists());
        assert!(!VerdictStore::scrub(&path, false).unwrap().defects());
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(path.with_extension("corrupt")).unwrap();
    }

    #[test]
    fn compact_drops_superseded_and_defective_tail() {
        let path = temp_path("compact");
        {
            let mut s = VerdictStore::open(&path).unwrap();
            for i in 0..8 {
                s.put(i as u128 % 3, sample(i)).unwrap();
            }
            s.flush().unwrap();
        }
        // Tear the tail too: compaction drops it along with dupes.
        let len = std::fs::metadata(&path).unwrap().len();
        OpenOptions::new().write(true).open(&path).unwrap().set_len(len - 5).unwrap();

        let report = VerdictStore::compact(&path).unwrap();
        assert_eq!(report.records_in, 7);
        assert_eq!(report.records_out, 3);
        assert_eq!(report.superseded, 4);
        assert!(report.defect_bytes > 0);
        assert!(report.bytes_after < report.bytes_before);

        // Content survives: last writer per key, scrub spotless.
        let s = VerdictStore::open(&path).unwrap();
        assert_eq!(s.len(), 3);
        assert_eq!(s.get(0), Some(&sample(6)));
        assert_eq!(s.get(1), Some(&sample(4)), "the torn i=7 record never counted");
        assert_eq!(s.get(2), Some(&sample(5)));
        drop(s);
        let scrub = VerdictStore::scrub(&path, false).unwrap();
        assert!(!scrub.defects());
        assert_eq!(scrub.superseded, 0);

        // Compaction is canonical: compacting again changes nothing.
        let again = VerdictStore::compact(&path).unwrap();
        assert_eq!(again.bytes_before, again.bytes_after);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn export_snapshots_and_merge_pools() {
        let a = temp_path("merge-a");
        let b = temp_path("merge-b");
        let snap = temp_path("merge-snap");
        {
            let mut s = VerdictStore::open(&a).unwrap();
            s.put(1, sample(1)).unwrap();
            s.put(2, sample(2)).unwrap();
            s.put(5, sample(0)).unwrap(); // conflicts with b's 5
            s.flush().unwrap();
        }
        {
            let mut s = VerdictStore::open(&b).unwrap();
            s.put(3, sample(3)).unwrap();
            s.put(2, sample(2)).unwrap(); // identical to a's 2
            s.put(5, sample(5)).unwrap(); // wins: merged-in store is newer
            s.flush().unwrap();
        }
        let exported = VerdictStore::export(&b, &snap).unwrap();
        assert_eq!(exported.records_out, 3);
        // Source store is untouched and openable.
        assert_eq!(VerdictStore::open(&b).unwrap().len(), 3);

        let report = VerdictStore::merge(&a, &snap).unwrap();
        assert_eq!(report.source_keys, 3);
        assert_eq!(report.merged, 2, "new key 3 plus conflicting key 5");
        assert_eq!(report.unchanged, 1, "identical key 2 not re-appended");

        let s = VerdictStore::open(&a).unwrap();
        assert_eq!(s.len(), 4);
        assert_eq!(s.get(5), Some(&sample(5)), "merge is last-writer-wins");
        assert_eq!(s.get(1), Some(&sample(1)));
        drop(s);
        for p in [&a, &b, &snap] {
            std::fs::remove_file(p).unwrap();
        }
    }

    #[test]
    fn merge_is_deterministic() {
        // Merging the same source into equal destinations produces
        // byte-identical logs, whatever the hash-map iteration order.
        let src = temp_path("mdet-src");
        let d1 = temp_path("mdet-d1");
        let d2 = temp_path("mdet-d2");
        {
            let mut s = VerdictStore::open(&src).unwrap();
            for i in 0..16 {
                s.put((i as u128) << 64 | i as u128, sample(i)).unwrap();
            }
            s.flush().unwrap();
        }
        for d in [&d1, &d2] {
            let mut s = VerdictStore::open(d).unwrap();
            s.put(7, sample(7)).unwrap();
            s.flush().unwrap();
            drop(s);
            VerdictStore::merge(d, &src).unwrap();
        }
        assert_eq!(std::fs::read(&d1).unwrap(), std::fs::read(&d2).unwrap());
        for p in [&src, &d1, &d2] {
            std::fs::remove_file(p).unwrap();
        }
    }

    #[test]
    fn failed_append_is_retryable_after_tail_heal() {
        // Simulate a torn half-record (as the append faultpoint leaves
        // behind) and check the next put cuts it before appending.
        let path = temp_path("heal");
        let mut s = VerdictStore::open(&path).unwrap();
        s.put(1, sample(1)).unwrap();
        s.dirty_tail = true; // pretend the last append failed partway
        {
            let f = s.file.as_mut().unwrap();
            f.write_all(&[0xAB; 9]).unwrap(); // torn garbage past `end`
        }
        s.put(2, sample(2)).unwrap();
        s.flush().unwrap();
        drop(s);
        let s = VerdictStore::open(&path).unwrap();
        assert!(s.recovery().is_clean(), "retry healed the tear in place");
        assert_eq!(s.len(), 2);
        std::fs::remove_file(&path).unwrap();
    }
}
