//! Persistent verdict store: an append-only, checksummed binary log with
//! an in-memory index.
//!
//! ## Log format
//!
//! ```text
//! file   := magic record*
//! magic  := "LKMMVS01"                     (8 bytes)
//! record := len:u32le checksum:u64le payload
//! payload := key:u128le verdict:u8 condition_holds:u8
//!            candidates:u64le allowed:u64le witnesses:u64le
//! ```
//!
//! `len` is the payload length (42 today; readers accept longer payloads
//! whose prefix parses, so fields can be appended later), `checksum` is
//! FNV-1a-64 of the payload. Each record is appended with a single
//! `write_all`; durability is a [`VerdictStore::flush`] (`fsync`) away.
//!
//! ## Crash safety & recovery
//!
//! A crash can only truncate or tear the *last* record (appends never
//! rewrite earlier bytes). On open, the log is scanned from the start;
//! at the first frame that is short, oversized, or fails its checksum,
//! the file is truncated back to the end of the last good record and the
//! valid prefix is kept. A file whose magic is wrong is treated as
//! empty (quarantined to `<path>.corrupt` rather than deleted). Within
//! the valid prefix, later records win — re-checking a test after a
//! semantic change appends rather than rewrites.

use crate::hash::fnv64;
use lkmm_core::faultpoint;
use lkmm_exec::{TestResult, Verdict};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 8] = b"LKMMVS01";
const PAYLOAD_LEN: usize = 16 + 1 + 1 + 8 + 8 + 8;
/// Guard against a corrupt length field making the scanner skip the rest
/// of the file: no legitimate payload is remotely this large.
const MAX_PAYLOAD_LEN: u32 = 1 << 20;

/// What [`VerdictStore::open`] found on disk.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Records recovered into the index.
    pub records: usize,
    /// Bytes discarded past the last valid record (0 on a clean log).
    pub truncated_bytes: u64,
    /// Whether the magic was wrong and the old file was quarantined.
    pub quarantined: bool,
}

/// Append-only on-disk verdict cache with an in-memory index.
///
/// All lookups hit the index; the file is only read at open and only
/// appended afterwards. An in-memory store (no backing file) supports
/// the same API for tests and ephemeral servers.
pub struct VerdictStore {
    index: HashMap<u128, TestResult>,
    file: Option<File>,
    path: Option<PathBuf>,
    recovery: RecoveryReport,
    appended: usize,
}

impl VerdictStore {
    /// Open (creating if absent) the store at `path`, recovering the
    /// valid prefix of the log.
    ///
    /// # Errors
    ///
    /// I/O errors opening, reading, or truncating the file.
    pub fn open(path: impl AsRef<Path>) -> io::Result<VerdictStore> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new().read(true).write(true).create(true).open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;

        let mut recovery = RecoveryReport::default();
        let mut index = HashMap::new();
        let mut good_end: u64;

        if bytes.is_empty() {
            file.write_all(MAGIC)?;
            good_end = MAGIC.len() as u64;
        } else if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
            // Not our file (or a torn first write): quarantine and start
            // fresh rather than silently destroying whatever it was.
            drop(file);
            let quarantine = path.with_extension("corrupt");
            std::fs::rename(&path, &quarantine)?;
            file = OpenOptions::new().read(true).write(true).create(true).open(&path)?;
            file.write_all(MAGIC)?;
            good_end = MAGIC.len() as u64;
            recovery.quarantined = true;
        } else {
            let mut at = MAGIC.len();
            good_end = at as u64;
            while let Some((payload, next)) = next_frame(&bytes, at) {
                match parse_payload(payload) {
                    Some((key, result)) => {
                        index.insert(key, result);
                        recovery.records += 1;
                        at = next;
                        good_end = at as u64;
                    }
                    None => break,
                }
            }
            recovery.truncated_bytes = bytes.len() as u64 - good_end;
            if recovery.truncated_bytes > 0 {
                file.set_len(good_end)?;
            }
        }
        file.seek(SeekFrom::Start(good_end))?;
        Ok(VerdictStore { index, file: Some(file), path: Some(path), recovery, appended: 0 })
    }

    /// A store with no backing file: same semantics, nothing persists.
    pub fn in_memory() -> VerdictStore {
        VerdictStore {
            index: HashMap::new(),
            file: None,
            path: None,
            recovery: RecoveryReport::default(),
            appended: 0,
        }
    }

    /// The backing file, if any.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// What recovery found at open time.
    pub fn recovery(&self) -> RecoveryReport {
        self.recovery
    }

    /// Number of distinct keys in the index.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Records appended since open.
    pub fn appended(&self) -> usize {
        self.appended
    }

    /// Cached result for `key`.
    pub fn get(&self, key: u128) -> Option<&TestResult> {
        self.index.get(&key)
    }

    /// Insert `result` under `key`, appending to the log. A no-op if an
    /// identical entry is already present; a differing entry for the same
    /// key (e.g. after a model change without a salt bump) is overwritten
    /// in the index and appended, so replay keeps the newer verdict.
    ///
    /// # Errors
    ///
    /// I/O errors appending to the log.
    pub fn put(&mut self, key: u128, result: TestResult) -> io::Result<bool> {
        if self.index.get(&key) == Some(&result) {
            return Ok(false);
        }
        if let Some(file) = &mut self.file {
            let payload = encode_payload(key, &result);
            let mut record = Vec::with_capacity(12 + payload.len());
            record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            record.extend_from_slice(&fnv64(&payload).to_le_bytes());
            record.extend_from_slice(&payload);
            // One write_all per record: a crash mid-append leaves a torn
            // tail that recovery truncates, never a bad earlier record.
            if faultpoint::should_fail("store.append.torn") {
                // Simulated torn append: half the record reaches the file
                // before the "crash" — exactly what recovery truncates.
                file.write_all(&record[..record.len() / 2])?;
                return Err(io::Error::new(
                    io::ErrorKind::Other,
                    "faultpoint: injected I/O error at `store.append.torn`",
                ));
            }
            file.write_all(&record)?;
        }
        self.index.insert(key, result);
        self.appended += 1;
        Ok(true)
    }

    /// Force appended records to stable storage (`fsync`).
    ///
    /// # Errors
    ///
    /// I/O errors from the sync.
    pub fn flush(&mut self) -> io::Result<()> {
        if let Some(file) = &mut self.file {
            faultpoint::inject_io("store.flush")?;
            file.sync_data()?;
        }
        Ok(())
    }
}

fn next_frame(bytes: &[u8], at: usize) -> Option<(&[u8], usize)> {
    let header = bytes.get(at..at + 12)?;
    let len = u32::from_le_bytes(header[0..4].try_into().unwrap());
    if len > MAX_PAYLOAD_LEN {
        return None;
    }
    let checksum = u64::from_le_bytes(header[4..12].try_into().unwrap());
    let payload = bytes.get(at + 12..at + 12 + len as usize)?;
    if fnv64(payload) != checksum {
        return None;
    }
    Some((payload, at + 12 + len as usize))
}

fn encode_payload(key: u128, r: &TestResult) -> Vec<u8> {
    let mut out = Vec::with_capacity(PAYLOAD_LEN);
    out.extend_from_slice(&key.to_le_bytes());
    out.push(match r.verdict {
        Verdict::Forbidden => 0,
        Verdict::Allowed => 1,
    });
    out.push(u8::from(r.condition_holds));
    out.extend_from_slice(&(r.candidates as u64).to_le_bytes());
    out.extend_from_slice(&(r.allowed as u64).to_le_bytes());
    out.extend_from_slice(&(r.witnesses as u64).to_le_bytes());
    out
}

fn parse_payload(payload: &[u8]) -> Option<(u128, TestResult)> {
    if payload.len() < PAYLOAD_LEN {
        return None;
    }
    let key = u128::from_le_bytes(payload[0..16].try_into().unwrap());
    let verdict = match payload[16] {
        0 => Verdict::Forbidden,
        1 => Verdict::Allowed,
        _ => return None,
    };
    let condition_holds = match payload[17] {
        0 => false,
        1 => true,
        _ => return None,
    };
    let u64_at = |i: usize| u64::from_le_bytes(payload[i..i + 8].try_into().unwrap());
    let result = TestResult {
        verdict,
        condition_holds,
        candidates: u64_at(18) as usize,
        allowed: u64_at(26) as usize,
        witnesses: u64_at(34) as usize,
    };
    Some((key, result))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(i: usize) -> TestResult {
        TestResult {
            verdict: if i % 2 == 0 { Verdict::Allowed } else { Verdict::Forbidden },
            condition_holds: i % 3 == 0,
            candidates: 10 + i,
            allowed: 5 + i,
            witnesses: i,
        }
    }

    fn temp_path(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("lkmm-store-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn round_trips_across_reopen() {
        let path = temp_path("roundtrip");
        {
            let mut s = VerdictStore::open(&path).unwrap();
            for i in 0..10 {
                assert!(s.put(i as u128 * 7, sample(i)).unwrap());
            }
            // Identical re-put is a no-op.
            assert!(!s.put(0, sample(0)).unwrap());
            s.flush().unwrap();
        }
        let s = VerdictStore::open(&path).unwrap();
        assert_eq!(s.len(), 10);
        assert_eq!(s.recovery(), RecoveryReport { records: 10, ..Default::default() });
        for i in 0..10 {
            assert_eq!(s.get(i as u128 * 7), Some(&sample(i)));
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_prefix_kept() {
        let path = temp_path("torn");
        {
            let mut s = VerdictStore::open(&path).unwrap();
            for i in 0..5 {
                s.put(i as u128, sample(i)).unwrap();
            }
        }
        // Chop the file mid-way through the last record.
        let len = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 10).unwrap();
        drop(f);

        let s = VerdictStore::open(&path).unwrap();
        assert_eq!(s.len(), 4);
        assert!(s.recovery().truncated_bytes > 0);
        for i in 0..4 {
            assert_eq!(s.get(i as u128), Some(&sample(i)));
        }
        // The truncation is durable: a third open sees a clean log.
        drop(s);
        let s = VerdictStore::open(&path).unwrap();
        assert_eq!(s.recovery().truncated_bytes, 0);
        assert_eq!(s.len(), 4);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_record_truncates_from_there() {
        let path = temp_path("corrupt");
        {
            let mut s = VerdictStore::open(&path).unwrap();
            for i in 0..5 {
                s.put(i as u128, sample(i)).unwrap();
            }
        }
        // Flip one payload byte in the third record.
        let mut bytes = std::fs::read(&path).unwrap();
        let record = 12 + PAYLOAD_LEN;
        let offset = 8 + 2 * record + 12 + 3;
        bytes[offset] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();

        let s = VerdictStore::open(&path).unwrap();
        assert_eq!(s.len(), 2, "records before the corruption survive");
        assert!(s.recovery().truncated_bytes > 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn wrong_magic_quarantines() {
        let path = temp_path("magic");
        std::fs::write(&path, b"definitely not a verdict store").unwrap();
        let s = VerdictStore::open(&path).unwrap();
        assert!(s.recovery().quarantined);
        assert_eq!(s.len(), 0);
        assert!(path.with_extension("corrupt").exists());
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(path.with_extension("corrupt")).unwrap();
    }

    #[test]
    fn later_records_win_on_replay() {
        let path = temp_path("lastwins");
        {
            let mut s = VerdictStore::open(&path).unwrap();
            s.put(42, sample(0)).unwrap();
            s.put(42, sample(1)).unwrap();
        }
        let s = VerdictStore::open(&path).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(42), Some(&sample(1)));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn in_memory_store_has_same_semantics() {
        let mut s = VerdictStore::in_memory();
        assert!(s.is_empty());
        assert!(s.put(1, sample(1)).unwrap());
        assert!(!s.put(1, sample(1)).unwrap());
        assert_eq!(s.get(1), Some(&sample(1)));
        s.flush().unwrap();
        assert!(s.path().is_none());
    }
}
