//! Batch checking through the verdict store.
//!
//! [`BatchChecker`] is the paper's §5 workflow as a service: ingest a
//! corpus (the built-in library, parsed files, or a generator sweep),
//! deduplicate isomorphic tests by canonical hash, answer what the store
//! already knows, schedule only the misses across the parallel pipeline,
//! and write the new verdicts back. Re-checking a corpus after a model
//! tweak *with a bumped salt* recomputes everything; re-checking without
//! one is pure cache replay — zero candidate enumerations.
//!
//! Checks run through the governed pipeline: a [`Budget`] installed with
//! [`BatchChecker::set_budget`] bounds each check, and checks that do
//! not complete surface as [`CheckOutcome::Inconclusive`] per-test
//! outcomes instead of failing the batch. Inconclusive verdicts are
//! **never written to the store** — they describe the budget, not the
//! test, so a retry with a bigger budget must see a miss, not a poisoned
//! hit.

use crate::canon::cache_key;
use crate::store::{VerdictLog, VerdictStore};
use lkmm_core::budget::Budget;
use lkmm_exec::{
    check_test_governed, CheckOutcome, ConsistencyModel, EnumOptions, PipelineOptions, TestResult,
};
use lkmm_generator::family::family_tests;
use lkmm_generator::{Edge, GenError};
use lkmm_litmus::ast::Test;
use std::collections::HashMap;
use std::fmt;
use std::io;
use std::time::Instant;

/// Where one test's result came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Provenance {
    /// Answered from the store without enumerating anything.
    Hit,
    /// Enumerated and checked in this batch, then stored.
    Computed,
    /// Shared the canonical key of an earlier test in the same batch.
    Deduped,
}

impl fmt::Display for Provenance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Provenance::Hit => "hit",
            Provenance::Computed => "computed",
            Provenance::Deduped => "deduped",
        })
    }
}

/// One checked corpus member.
#[derive(Clone, Debug)]
pub struct BatchOutcome {
    /// The test's (original, pre-canonicalization) name.
    pub name: String,
    /// Content-addressed cache key.
    pub key: u128,
    /// The structured outcome. Store hits and deduped replays are always
    /// `Complete` (inconclusive outcomes are never cached); computed
    /// outcomes are `Inconclusive` when the budget ran out.
    pub outcome: CheckOutcome,
    /// How it was answered.
    pub provenance: Provenance,
}

impl BatchOutcome {
    /// The completed verdict data, if the check finished.
    pub fn result(&self) -> Option<&TestResult> {
        self.outcome.result()
    }
}

/// Aggregate observability for one [`BatchChecker::check_corpus`] call.
#[derive(Clone, Debug)]
pub struct BatchReport {
    /// Per-test outcomes, in corpus order.
    pub outcomes: Vec<BatchOutcome>,
    /// Store hits.
    pub hits: usize,
    /// Tests actually enumerated and checked to completion.
    pub computed: usize,
    /// In-batch duplicates of an earlier canonical key.
    pub deduped: usize,
    /// Tests whose check stopped early on a budget/fault (not stored).
    pub inconclusive: usize,
    /// Candidate executions enumerated for the whole batch (0 on a fully
    /// warm cache), including those of inconclusive partial runs.
    pub candidates_enumerated: usize,
    /// Wall-clock for the batch, in microseconds.
    pub micros: u128,
}

/// Batch checking failure. Enumeration and budget problems are *not*
/// errors here — they surface as per-test [`CheckOutcome::Inconclusive`]
/// outcomes, so one pathological corpus member cannot fail the batch.
#[derive(Debug)]
pub enum BatchError {
    /// The store could not be written.
    Io(io::Error),
    /// Generator ingestion was handed an invalid cycle.
    Generate(GenError),
}

impl fmt::Display for BatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BatchError::Io(e) => write!(f, "verdict store: {e}"),
            BatchError::Generate(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for BatchError {}

impl From<io::Error> for BatchError {
    fn from(e: io::Error) -> Self {
        BatchError::Io(e)
    }
}

impl From<GenError> for BatchError {
    fn from(e: GenError) -> Self {
        BatchError::Generate(e)
    }
}

/// A memoizing checker: one model, one store, one version salt.
///
/// Generic over its [`VerdictLog`] backend (default: a plain owned
/// [`VerdictStore`]), so the same checker drives the single-store CLI
/// path and the server's shared [`crate::ShardedStore`] handle.
pub struct BatchChecker<'m, S: VerdictLog = VerdictStore> {
    model: &'m dyn ConsistencyModel,
    store: S,
    salt: String,
    enum_opts: EnumOptions,
    pipe: PipelineOptions,
    session_hits: usize,
    session_computed: usize,
    session_inconclusive: usize,
}

impl<'m, S: VerdictLog> BatchChecker<'m, S> {
    /// A checker writing through `store`. `salt` versions the cache: it
    /// should name the model/interpreter revision (bump it when checking
    /// semantics change and old entries silently stop matching). The
    /// enumerator options are folded into every key, since they can
    /// change counts.
    pub fn new(model: &'m dyn ConsistencyModel, store: S, salt: &str) -> Self {
        BatchChecker {
            model,
            store,
            salt: salt.to_string(),
            enum_opts: EnumOptions::default(),
            pipe: PipelineOptions { jobs: 0, ..PipelineOptions::default() },
            session_hits: 0,
            session_computed: 0,
            session_inconclusive: 0,
        }
    }

    /// Override the enumeration options (folded into cache keys, except
    /// the budget — see [`BatchChecker::set_budget`]).
    pub fn with_options(mut self, opts: EnumOptions) -> Self {
        self.enum_opts = opts;
        self
    }

    /// Check misses on `jobs` pipeline workers (`0` = one per hardware
    /// thread). Job count never affects results, so it is *not* part of
    /// the cache key. Early exit is deliberately unsupported here: its
    /// lower-bound counts must never be cached as exact.
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.pipe.jobs = jobs;
        self
    }

    /// Bound each worker's candidate queue (clamped to ≥ 1 downstream).
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        self.pipe.queue_depth = depth;
        self
    }

    /// Record batch-occupancy and arena-reuse counters into `stats`
    /// during enumeration passes. Observability only — like job count,
    /// never part of cache keys, and a warm store (which enumerates
    /// nothing) legitimately leaves the counters at zero.
    pub fn with_pipeline_stats(
        mut self,
        stats: Option<std::sync::Arc<lkmm_exec::DataPlaneStats>>,
    ) -> Self {
        self.pipe.stats = stats;
        self
    }

    /// Builder form of [`BatchChecker::set_budget`].
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.set_budget(budget);
        self
    }

    /// Bound every subsequent check by `budget`. The budget is *not*
    /// part of the cache key: it cannot change a completed verdict, and
    /// inconclusive outcomes are never stored, so entries computed under
    /// any budget are interchangeable.
    pub fn set_budget(&mut self, budget: Budget) {
        self.enum_opts.budget = budget;
    }

    /// Set (or clear) an absolute deadline on the current budget. The
    /// serve loop uses this to give each request its own deadline
    /// without rebuilding the checker.
    pub fn set_deadline(&mut self, deadline: Option<Instant>) {
        self.enum_opts.budget.deadline = deadline;
    }

    /// The cache key this checker derives for `test`.
    pub fn key_of(&self, test: &Test) -> u128 {
        // EnumOptions influence candidate counts (caps, Scpv pruning),
        // so two configurations must never share an entry. The Debug
        // form deliberately excludes the budget.
        let salt = format!("{}|{:?}", self.salt, self.enum_opts);
        cache_key(test, self.model.name(), &salt)
    }

    /// Check one test, answering from the store when possible. A check
    /// stopped by its budget (or a contained worker panic) returns an
    /// `Inconclusive` outcome and stores nothing, so retrying with a
    /// bigger budget recomputes it.
    ///
    /// # Errors
    ///
    /// Store-append failure only.
    pub fn check_one(&mut self, test: &Test) -> Result<BatchOutcome, BatchError> {
        let key = self.key_of(test);
        if let Some(result) = self.store.get(key) {
            self.session_hits += 1;
            return Ok(BatchOutcome {
                name: test.name.clone(),
                key,
                outcome: CheckOutcome::Complete(result),
                provenance: Provenance::Hit,
            });
        }
        let outcome = check_test_governed(self.model, test, &self.enum_opts, &self.pipe);
        match &outcome {
            CheckOutcome::Complete(result) => {
                self.store.put(key, result.clone())?;
                self.session_computed += 1;
            }
            CheckOutcome::Inconclusive { .. } => {
                self.session_inconclusive += 1;
            }
        }
        Ok(BatchOutcome { name: test.name.clone(), key, outcome, provenance: Provenance::Computed })
    }

    /// Check a corpus: dedupe by canonical key, replay hits, compute
    /// misses, write back, and sync the store once at the end.
    ///
    /// The budget's `deadline`/`cancel` axes also govern the corpus
    /// *between* tests: once tripped, every remaining test is reported
    /// `Inconclusive` without being checked (outcomes keep corpus order
    /// and length). The relative `time_limit` axis stays per-check.
    ///
    /// # Errors
    ///
    /// Store failure (the store keeps everything computed before the
    /// failing test).
    pub fn check_corpus(&mut self, tests: &[Test]) -> Result<BatchReport, BatchError> {
        use lkmm_exec::{InconclusiveReason, Tally};
        let start = Instant::now();
        let mut outcomes: Vec<BatchOutcome> = Vec::with_capacity(tests.len());
        let mut seen: HashMap<u128, usize> = HashMap::new();
        let mut hits = 0;
        let mut computed = 0;
        let mut deduped = 0;
        let mut inconclusive = 0;
        let mut candidates_enumerated = 0;
        // Corpus-level governor: absolute deadline and cancellation only.
        // Candidate/step fuel and the relative time limit are per-check.
        let mut corpus_meter = Budget {
            max_candidates: None,
            max_eval_steps: None,
            time_limit: None,
            ..self.enum_opts.budget.clone()
        }
        .meter();
        for test in tests {
            let key = self.key_of(test);
            if let Some(&first) = seen.get(&key) {
                deduped += 1;
                outcomes.push(BatchOutcome {
                    name: test.name.clone(),
                    key,
                    outcome: outcomes[first].outcome.clone(),
                    provenance: Provenance::Deduped,
                });
                continue;
            }
            if let Err(kind) = corpus_meter.poll_now() {
                inconclusive += 1;
                self.session_inconclusive += 1;
                outcomes.push(BatchOutcome {
                    name: test.name.clone(),
                    key,
                    outcome: CheckOutcome::Inconclusive {
                        reason: InconclusiveReason::BudgetExceeded(kind),
                        partial: Tally::default(),
                    },
                    provenance: Provenance::Computed,
                });
                continue;
            }
            let outcome = self.check_one(test)?;
            match (&outcome.provenance, &outcome.outcome) {
                (Provenance::Hit, _) => {
                    hits += 1;
                    seen.insert(key, outcomes.len());
                }
                (Provenance::Computed, CheckOutcome::Complete(result)) => {
                    computed += 1;
                    candidates_enumerated += result.candidates;
                    // Only conclusive outcomes join the dedupe map: a
                    // later isomorph of an inconclusive test deserves
                    // its own attempt, not a replay of a budget trip.
                    seen.insert(key, outcomes.len());
                }
                (Provenance::Computed, CheckOutcome::Inconclusive { partial, .. }) => {
                    inconclusive += 1;
                    candidates_enumerated += partial.candidates;
                }
                (Provenance::Deduped, _) => unreachable!("check_one never dedupes"),
            }
            outcomes.push(outcome);
        }
        self.store.flush()?;
        Ok(BatchReport {
            outcomes,
            hits,
            computed,
            deduped,
            inconclusive,
            candidates_enumerated,
            micros: start.elapsed().as_micros(),
        })
    }

    /// Check every test of the built-in paper library.
    ///
    /// # Errors
    ///
    /// See [`BatchChecker::check_corpus`].
    pub fn check_library(&mut self) -> Result<BatchReport, BatchError> {
        let tests: Vec<Test> =
            lkmm_litmus::library::all().iter().map(lkmm_litmus::library::PaperTest::test).collect();
        self.check_corpus(&tests)
    }

    /// Generator ingestion: check every well-formed variation of `base`
    /// (see [`lkmm_generator::family`]) through the cache.
    ///
    /// # Errors
    ///
    /// Invalid base cycle or store failure.
    pub fn check_family(&mut self, base: &[Edge]) -> Result<BatchReport, BatchError> {
        let tests = family_tests(base)?;
        self.check_corpus(&tests)
    }

    /// The underlying store.
    pub fn store(&self) -> &S {
        &self.store
    }

    /// Store hits answered since construction.
    pub fn session_hits(&self) -> usize {
        self.session_hits
    }

    /// Tests computed (not replayed) since construction.
    pub fn session_computed(&self) -> usize {
        self.session_computed
    }

    /// Checks stopped by budgets/faults since construction (not stored).
    pub fn session_inconclusive(&self) -> usize {
        self.session_inconclusive
    }

    /// Sync the store to stable storage.
    ///
    /// # Errors
    ///
    /// I/O errors from the sync.
    pub fn flush(&mut self) -> io::Result<()> {
        self.store.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lkmm_exec::model::AllowAll;
    use lkmm_litmus::parse;

    #[test]
    fn second_corpus_pass_is_all_hits_with_zero_enumerations() {
        let tests: Vec<Test> =
            lkmm_litmus::library::all().iter().take(6).map(|pt| pt.test()).collect();
        let mut checker = BatchChecker::new(&AllowAll, VerdictStore::in_memory(), "test-salt");
        let cold = checker.check_corpus(&tests).unwrap();
        assert_eq!(cold.computed, tests.len());
        assert!(cold.candidates_enumerated > 0);

        let warm = checker.check_corpus(&tests).unwrap();
        assert_eq!(warm.hits, tests.len());
        assert_eq!(warm.computed, 0);
        assert_eq!(warm.candidates_enumerated, 0);
        for (c, w) in cold.outcomes.iter().zip(&warm.outcomes) {
            assert_eq!(c.result(), w.result());
            assert!(c.result().is_some());
            assert_eq!(c.key, w.key);
        }
    }

    #[test]
    fn isomorphic_corpus_members_dedupe() {
        let a = parse("C a\n{ x=0; }\nP0(int *x) { WRITE_ONCE(*x, 1); }\nexists (x=1)").unwrap();
        let b = parse("C b\n{ y=0; }\nP0(int *y) { WRITE_ONCE(*y, 1); }\nexists (y=1)").unwrap();
        let mut checker = BatchChecker::new(&AllowAll, VerdictStore::in_memory(), "s");
        let report = checker.check_corpus(&[a, b]).unwrap();
        assert_eq!(report.computed, 1);
        assert_eq!(report.deduped, 1);
        assert_eq!(report.outcomes[0].result(), report.outcomes[1].result());
        assert_eq!(report.outcomes[1].provenance, Provenance::Deduped);
    }

    #[test]
    fn family_ingestion_runs_through_the_cache() {
        use lkmm_generator::{Extremity::{R, W}, InternalKind};
        let mp = [
            Edge::internal(InternalKind::Po, W, W),
            Edge::Rfe,
            Edge::internal(InternalKind::Po, R, R),
            Edge::Fre,
        ];
        let mut checker = BatchChecker::new(&AllowAll, VerdictStore::in_memory(), "s");
        let cold = checker.check_family(&mp).unwrap();
        assert_eq!(cold.outcomes.len(), 35);
        let warm = checker.check_family(&mp).unwrap();
        assert_eq!(warm.computed, 0);
        assert_eq!(warm.hits + warm.deduped, 35);
    }

    #[test]
    fn different_salts_do_not_share_entries() {
        let t = parse("C t\n{ x=0; }\nP0(int *x) { WRITE_ONCE(*x, 1); }\nexists (x=1)").unwrap();
        let mut one = BatchChecker::new(&AllowAll, VerdictStore::in_memory(), "v1");
        let key_v1 = one.key_of(&t);
        let mut two = BatchChecker::new(&AllowAll, VerdictStore::in_memory(), "v2");
        assert_ne!(key_v1, two.key_of(&t));
        let _ = (one.check_one(&t).unwrap(), two.check_one(&t).unwrap());
    }

    #[test]
    fn warm_naive_store_replays_byte_identically_under_pruned_enumeration() {
        // A store populated before the consistency-driven enumerator
        // landed (equivalently: by the naive ablation strategy) must be
        // pure hits for the pruned default — same keys, same outcomes,
        // and not a byte appended to the backing file.
        use lkmm_exec::{EnumOptions, EnumStrategy};
        let path = {
            let mut p = std::env::temp_dir();
            p.push(format!("lkmm-batch-warm-replay-{}.bin", std::process::id()));
            let _ = std::fs::remove_file(&p);
            p
        };
        let tests: Vec<Test> =
            lkmm_litmus::library::all().iter().take(8).map(|pt| pt.test()).collect();

        let mut naive = BatchChecker::new(&AllowAll, VerdictStore::open(&path).unwrap(), "s")
            .with_options(EnumOptions { strategy: EnumStrategy::Naive, ..Default::default() });
        let naive_keys: Vec<u128> = tests.iter().map(|t| naive.key_of(t)).collect();
        let cold = naive.check_corpus(&tests).unwrap();
        assert!(cold.computed > 0);
        drop(naive);
        let bytes_cold = std::fs::read(&path).unwrap();

        let mut pruned = BatchChecker::new(&AllowAll, VerdictStore::open(&path).unwrap(), "s");
        let pruned_keys: Vec<u128> = tests.iter().map(|t| pruned.key_of(t)).collect();
        assert_eq!(naive_keys, pruned_keys, "strategy must not perturb cache keys");
        let warm = pruned.check_corpus(&tests).unwrap();
        assert_eq!(warm.computed, 0);
        assert_eq!(warm.candidates_enumerated, 0);
        assert_eq!(warm.hits + warm.deduped, tests.len());
        for (c, w) in cold.outcomes.iter().zip(&warm.outcomes) {
            assert_eq!(c.key, w.key);
            assert_eq!(c.result(), w.result());
        }
        drop(pruned);
        let bytes_warm = std::fs::read(&path).unwrap();
        assert_eq!(bytes_cold, bytes_warm, "warm replay must not rewrite the store");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn budget_is_not_part_of_the_cache_key() {
        let t = parse("C t\n{ x=0; }\nP0(int *x) { WRITE_ONCE(*x, 1); }\nexists (x=1)").unwrap();
        let plain = BatchChecker::new(&AllowAll, VerdictStore::in_memory(), "s");
        let tight = BatchChecker::new(&AllowAll, VerdictStore::in_memory(), "s")
            .with_budget(Budget::default().with_max_candidates(1));
        assert_eq!(plain.key_of(&t), tight.key_of(&t));
    }

    #[test]
    fn inconclusive_is_not_cached_and_retries_recompute() {
        let t = lkmm_litmus::library::by_name("SB").unwrap().test();
        let mut checker = BatchChecker::new(&AllowAll, VerdictStore::in_memory(), "s")
            .with_budget(Budget::default().with_max_candidates(1));
        let starved = checker.check_one(&t).unwrap();
        assert!(starved.result().is_none(), "1 candidate cannot finish SB");
        assert_eq!(checker.session_inconclusive(), 1);
        assert_eq!(checker.store().len(), 0, "inconclusive must not be stored");

        checker.set_budget(Budget::unlimited());
        let full = checker.check_one(&t).unwrap();
        assert_eq!(full.provenance, Provenance::Computed);
        let result = full.result().expect("unlimited budget completes").clone();
        assert_eq!(checker.store().len(), 1);

        // And now it hits.
        let hit = checker.check_one(&t).unwrap();
        assert_eq!(hit.provenance, Provenance::Hit);
        assert_eq!(hit.result(), Some(&result));
    }
}
