//! JSON-lines request/response serving.
//!
//! One request per input line, one response object per output line —
//! the classic long-running-daemon shape (`herd-rs serve` wires this to
//! stdin/stdout). Requests:
//!
//! ```text
//! {"op":"check","source":"C t\n…"}          check litmus source
//! {"op":"check","name":"SB+mbs"}            check a built-in library test
//! {"op":"batch","sources":["…","…"]}        check many (deduped) at once
//! {"op":"batch","names":["SB","MP"]}        … by library name
//! {"op":"batch","library":true}             … the whole paper library
//! {"op":"batch","family":"PodWW Rfe PodRR Fre"}   … a generator sweep
//! {"op":"stats"}                            store/session counters
//! {"op":"flush"}                            fsync the store
//! ```
//!
//! Every response carries `"ok"` plus per-request observability: cache
//! provenance (`hit`/`computed`/`deduped`), in-batch dedup counts,
//! candidates enumerated, and wall-clock micros. Malformed input yields
//! `{"ok":false,"error":…}` and the loop continues — one bad request
//! must not take the daemon down.
//!
//! ## Fault isolation
//!
//! The loop is hardened against hostile or broken clients
//! ([`ServeOptions`]): request lines are read through a byte cap (an
//! oversized line is drained and answered with an error, never buffered
//! whole), invalid UTF-8 is an error response, a panic while answering
//! one request is contained (`catch_unwind`) and reported as an error
//! response, and an optional per-request deadline bounds each request's
//! checking time — an over-deadline check comes back `inconclusive`
//! rather than wedging the daemon. Only transport failures abort.

use crate::batch::{BatchChecker, BatchOutcome, BatchReport};
use crate::json::Json;
use crate::store::VerdictLog;
use lkmm_exec::CheckOutcome;
use lkmm_litmus::ast::Test;
use std::io::{self, BufRead, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// Hardening knobs for one [`serve_with`] session.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServeOptions {
    /// Longest accepted request line, in bytes. Longer lines are drained
    /// without being buffered and answered with an error response.
    pub max_request_bytes: usize,
    /// Wall-clock bound for answering one request. Installed as an
    /// absolute deadline on the checker's budget at the start of each
    /// request; checks that exceed it report `inconclusive`.
    pub request_time_limit: Option<Duration>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions { max_request_bytes: 4 << 20, request_time_limit: None }
    }
}

/// Counters for one [`serve`] session.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Requests answered (including errors).
    pub requests: usize,
    /// Requests answered with `"ok":false`.
    pub errors: usize,
}

/// [`serve_with`] under default [`ServeOptions`].
///
/// # Errors
///
/// Only transport failures (reading `input`, writing `output`) abort the
/// loop; per-request failures become `"ok":false` responses.
pub fn serve<S: VerdictLog>(
    checker: &mut BatchChecker<'_, S>,
    input: impl BufRead,
    output: impl Write,
) -> io::Result<ServeSummary> {
    serve_with(checker, input, output, &ServeOptions::default())
}

/// Run the request loop until end-of-input, answering through `checker`.
/// The store is synced on every `flush` request and once at exit.
///
/// # Errors
///
/// Only transport failures (reading `input`, writing `output`) abort the
/// loop; per-request failures become `"ok":false` responses.
pub fn serve_with<S: VerdictLog>(
    checker: &mut BatchChecker<'_, S>,
    mut input: impl BufRead,
    mut output: impl Write,
    opts: &ServeOptions,
) -> io::Result<ServeSummary> {
    let mut summary = ServeSummary::default();
    let max = opts.max_request_bytes;
    let mut buf = Vec::new();
    loop {
        buf.clear();
        // Read through a cap: at most max+1 bytes are ever buffered, so
        // a client cannot make the daemon hold an unbounded line.
        let n = io::Read::take(&mut input, max as u64 + 1).read_until(b'\n', &mut buf)?;
        if n == 0 {
            break;
        }
        if buf.last() == Some(&b'\n') {
            buf.pop();
            if buf.last() == Some(&b'\r') {
                buf.pop();
            }
        }
        let response = if buf.len() > max {
            // The cap truncated the line mid-way: skip its remainder.
            drain_line(&mut input)?;
            error_response(&format!("request line exceeds {max} bytes"))
        } else {
            match std::str::from_utf8(&buf) {
                Ok(line) if line.trim().is_empty() => continue,
                Ok(line) => answer_isolated(checker, line, opts),
                Err(_) => error_response("request line is not valid UTF-8"),
            }
        };
        summary.requests += 1;
        if response.get("ok") != Some(&Json::Bool(true)) {
            summary.errors += 1;
        }
        writeln!(output, "{response}")?;
        output.flush()?;
    }
    checker.flush()?;
    Ok(summary)
}

/// Discard input up to and including the next newline (or end-of-input).
fn drain_line(input: &mut impl BufRead) -> io::Result<()> {
    loop {
        let available = input.fill_buf()?;
        if available.is_empty() {
            return Ok(());
        }
        match available.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                input.consume(pos + 1);
                return Ok(());
            }
            None => {
                let len = available.len();
                input.consume(len);
            }
        }
    }
}

/// Answer one request with the session's per-request governance: the
/// deadline is (re)armed for this request, and a panic anywhere in the
/// handler is contained into an error response.
fn answer_isolated<S: VerdictLog>(
    checker: &mut BatchChecker<'_, S>,
    line: &str,
    opts: &ServeOptions,
) -> Json {
    if let Some(limit) = opts.request_time_limit {
        checker.set_deadline(Some(Instant::now() + limit));
    }
    catch_unwind(AssertUnwindSafe(|| answer(checker, line)))
        .unwrap_or_else(|_| error_response("internal error: request handler panicked"))
}

/// Answer one request line (exposed for tests and non-stdio embeddings).
pub fn answer<S: VerdictLog>(checker: &mut BatchChecker<'_, S>, line: &str) -> Json {
    let request = match Json::parse(line) {
        Ok(v) => v,
        Err(e) => return error_response(&format!("bad request: {e}")),
    };
    match request.get("op").and_then(Json::as_str) {
        Some("check") => op_check(checker, &request),
        Some("batch") => op_batch(checker, &request),
        Some("stats") => op_stats(checker),
        Some("flush") => op_flush(checker),
        Some(other) => error_response(&format!("unknown op `{other}` (check, batch, stats, flush)")),
        None => error_response("missing string field `op`"),
    }
}

fn error_response(message: &str) -> Json {
    Json::obj(vec![("ok", Json::Bool(false)), ("error", Json::str(message))])
}

fn library_test(name: &str) -> Result<Test, String> {
    lkmm_litmus::library::by_name(name)
        .map(|pt| pt.test())
        .ok_or_else(|| format!("no library test named `{name}`"))
}

fn parse_source(source: &str) -> Result<Test, String> {
    lkmm_litmus::parse(source).map_err(|e| format!("parse error: {e}"))
}

fn op_check<S: VerdictLog>(checker: &mut BatchChecker<'_, S>, request: &Json) -> Json {
    let test = match (
        request.get("source").and_then(Json::as_str),
        request.get("name").and_then(Json::as_str),
    ) {
        (Some(source), None) => parse_source(source),
        (None, Some(name)) => library_test(name),
        _ => Err("`check` needs exactly one of `source` or `name`".to_string()),
    };
    let test = match test {
        Ok(t) => t,
        Err(e) => return error_response(&e),
    };
    let start = Instant::now();
    match checker.check_one(&test) {
        Ok(outcome) => {
            let mut fields = vec![("ok", Json::Bool(true)), ("op", Json::str("check"))];
            fields.extend(outcome_fields(&outcome));
            fields.push(("micros", Json::num(start.elapsed().as_micros() as u64)));
            Json::obj(fields)
        }
        Err(e) => error_response(&e.to_string()),
    }
}

fn op_batch<S: VerdictLog>(checker: &mut BatchChecker<'_, S>, request: &Json) -> Json {
    let report = match gather_batch(request) {
        Ok(tests) => match checker.check_corpus(&tests) {
            Ok(report) => report,
            Err(e) => return error_response(&e.to_string()),
        },
        Err(e) => return error_response(&e),
    };
    batch_response(&report)
}

/// Resolve a batch request's corpus. The four sources compose: one
/// request may mix `sources`, `names`, `library`, and `family`.
fn gather_batch(request: &Json) -> Result<Vec<Test>, String> {
    let mut tests = Vec::new();
    let mut any_field = false;
    if let Some(sources) = request.get("sources") {
        any_field = true;
        let items = sources.as_arr().ok_or("`sources` must be an array of strings")?;
        for item in items {
            let src = item.as_str().ok_or("`sources` must be an array of strings")?;
            tests.push(parse_source(src)?);
        }
    }
    if let Some(names) = request.get("names") {
        any_field = true;
        let items = names.as_arr().ok_or("`names` must be an array of strings")?;
        for item in items {
            let name = item.as_str().ok_or("`names` must be an array of strings")?;
            tests.push(library_test(name)?);
        }
    }
    if request.get("library").and_then(Json::as_bool) == Some(true) {
        any_field = true;
        tests.extend(lkmm_litmus::library::all().iter().map(|pt| pt.test()));
    }
    if let Some(family) = request.get("family") {
        any_field = true;
        let spec = family.as_str().ok_or("`family` must be a cycle string like \"PodWW Rfe PodRR Fre\"")?;
        let base = lkmm_generator::parse_cycle(spec).map_err(|e| e.to_string())?;
        tests.extend(
            lkmm_generator::family::family_tests(&base).map_err(|e| e.to_string())?,
        );
    }
    if !any_field {
        return Err("`batch` needs `sources`, `names`, `library`, or `family`".to_string());
    }
    Ok(tests)
}

fn outcome_fields(outcome: &BatchOutcome) -> Vec<(&'static str, Json)> {
    let mut fields = vec![
        ("name", Json::str(&outcome.name)),
        ("key", Json::str(format!("{:032x}", outcome.key))),
    ];
    match &outcome.outcome {
        CheckOutcome::Complete(result) => {
            fields.push(("verdict", Json::str(result.verdict.to_string())));
            fields.push(("condition_holds", Json::Bool(result.condition_holds)));
            fields.push(("candidates", Json::num(result.candidates as u64)));
            fields.push(("allowed", Json::num(result.allowed as u64)));
            fields.push(("witnesses", Json::num(result.witnesses as u64)));
        }
        // Inconclusive outcomes carry their reason plus the exact partial
        // tallies (lower bounds) instead of a verdict.
        CheckOutcome::Inconclusive { reason, partial } => {
            fields.push(("inconclusive", Json::Bool(true)));
            fields.push(("reason", Json::str(reason.to_string())));
            fields.push(("candidates", Json::num(partial.candidates as u64)));
            fields.push(("allowed", Json::num(partial.allowed as u64)));
            fields.push(("witnesses", Json::num(partial.witnesses as u64)));
        }
    }
    fields.push(("cache", Json::str(outcome.provenance.to_string())));
    fields
}

fn batch_response(report: &BatchReport) -> Json {
    let results: Vec<Json> =
        report.outcomes.iter().map(|o| Json::Obj(
            outcome_fields(o).into_iter().map(|(k, v)| (k.to_string(), v)).collect(),
        )).collect();
    let mut fields = vec![
        ("ok", Json::Bool(true)),
        ("op", Json::str("batch")),
        ("count", Json::num(report.outcomes.len() as u64)),
        ("hits", Json::num(report.hits as u64)),
        ("computed", Json::num(report.computed as u64)),
        ("deduped", Json::num(report.deduped as u64)),
    ];
    // Emitted only when present, so budget-free sessions stay
    // byte-identical to older builds.
    if report.inconclusive > 0 {
        fields.push(("inconclusive", Json::num(report.inconclusive as u64)));
    }
    fields.push(("candidates_enumerated", Json::num(report.candidates_enumerated as u64)));
    fields.push(("micros", Json::num(report.micros as u64)));
    fields.push(("results", Json::Arr(results)));
    Json::obj(fields)
}

fn op_stats<S: VerdictLog>(checker: &BatchChecker<'_, S>) -> Json {
    let store = checker.store();
    let recovery = store.recovery();
    let mut fields = vec![
        ("ok", Json::Bool(true)),
        ("op", Json::str("stats")),
        ("entries", Json::num(store.len() as u64)),
        ("appended", Json::num(store.appended() as u64)),
        ("session_hits", Json::num(checker.session_hits() as u64)),
        ("session_computed", Json::num(checker.session_computed() as u64)),
    ];
    if checker.session_inconclusive() > 0 {
        fields.push(("session_inconclusive", Json::num(checker.session_inconclusive() as u64)));
    }
    fields.push(("recovered_records", Json::num(recovery.records as u64)));
    fields.push(("recovery_torn_bytes", Json::num(recovery.torn_bytes)));
    fields.push(("recovery_corrupt_frames", Json::num(recovery.corrupt_frames as u64)));
    fields.push(("recovery_corrupt_bytes", Json::num(recovery.corrupt_bytes)));
    fields.push((
        "path",
        match store.path() {
            Some(p) => Json::str(p.display().to_string()),
            None => Json::Null,
        },
    ));
    // Sharded backends report a per-shard breakdown; plain stores emit
    // nothing here, keeping stdio sessions byte-identical to older
    // builds.
    let shards = store.shard_stats();
    if !shards.is_empty() {
        fields.push((
            "shards",
            Json::Arr(
                shards
                    .iter()
                    .map(|st| {
                        let mut f = vec![
                            ("shard".to_string(), Json::num(st.shard as u64)),
                            ("records".to_string(), Json::num(st.records as u64)),
                            ("appended".to_string(), Json::num(st.appended as u64)),
                            ("superseded".to_string(), Json::num(st.superseded as u64)),
                        ];
                        if st.quarantined {
                            f.push(("quarantined".to_string(), Json::Bool(true)));
                        }
                        if let Some(reason) = &st.poisoned {
                            f.push(("poisoned".to_string(), Json::str(reason)));
                            f.push(("dropped".to_string(), Json::num(st.dropped as u64)));
                        }
                        Json::Obj(f)
                    })
                    .collect(),
            ),
        ));
    }
    Json::obj(fields)
}

fn op_flush<S: VerdictLog>(checker: &mut BatchChecker<'_, S>) -> Json {
    match checker.flush() {
        Ok(()) => Json::obj(vec![
            ("ok", Json::Bool(true)),
            ("op", Json::str("flush")),
            ("entries", Json::num(checker.store().len() as u64)),
        ]),
        Err(e) => error_response(&format!("flush: {e}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::VerdictStore;
    use lkmm_core::budget::Budget;
    use lkmm_exec::model::AllowAll;

    fn checker() -> BatchChecker<'static> {
        BatchChecker::new(&AllowAll, VerdictStore::in_memory(), "test")
    }

    #[test]
    fn check_by_name_then_hits_on_repeat() {
        let mut c = checker();
        let first = answer(&mut c, r#"{"op":"check","name":"SB"}"#);
        assert_eq!(first.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(first.get("cache").and_then(Json::as_str), Some("computed"));
        let second = answer(&mut c, r#"{"op":"check","name":"SB"}"#);
        assert_eq!(second.get("cache").and_then(Json::as_str), Some("hit"));
        assert_eq!(first.get("verdict"), second.get("verdict"));
        assert_eq!(first.get("candidates"), second.get("candidates"));
    }

    #[test]
    fn malformed_lines_do_not_stop_the_loop() {
        let mut c = checker();
        let input = "not json\n{\"op\":\"nope\"}\n\n{\"op\":\"stats\"}\n";
        let mut out = Vec::new();
        let summary = serve(&mut c, input.as_bytes(), &mut out).unwrap();
        assert_eq!(summary, ServeSummary { requests: 3, errors: 2 });
        let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"ok\":false"));
        assert!(lines[2].contains("\"op\":\"stats\""));
    }

    #[test]
    fn batch_mixes_sources_and_dedupes() {
        let mut c = checker();
        let line = r#"{"op":"batch","names":["SB","SB"],"family":"PodWW Rfe PodRR Fre"}"#;
        let response = answer(&mut c, line);
        assert_eq!(response.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(response.get("count").and_then(Json::as_u64), Some(2 + 35));
        assert!(response.get("deduped").and_then(Json::as_u64).unwrap() >= 1);
        let results = response.get("results").unwrap().as_arr().unwrap();
        assert_eq!(results.len(), 37);
        assert_eq!(response.get("inconclusive"), None, "absent without a budget");
    }

    #[test]
    fn check_requires_exactly_one_input() {
        let mut c = checker();
        let both = answer(&mut c, r#"{"op":"check","name":"SB","source":"C t\n"}"#);
        assert_eq!(both.get("ok"), Some(&Json::Bool(false)));
        let neither = answer(&mut c, r#"{"op":"check"}"#);
        assert_eq!(neither.get("ok"), Some(&Json::Bool(false)));
        let unknown = answer(&mut c, r#"{"op":"check","name":"NOPE"}"#);
        assert!(unknown.get("error").and_then(Json::as_str).unwrap().contains("NOPE"));
    }

    #[test]
    fn stats_reflect_session_activity() {
        let mut c = checker();
        let _ = answer(&mut c, r#"{"op":"check","name":"SB"}"#);
        let _ = answer(&mut c, r#"{"op":"check","name":"SB"}"#);
        let stats = answer(&mut c, r#"{"op":"stats"}"#);
        assert_eq!(stats.get("session_computed").and_then(Json::as_u64), Some(1));
        assert_eq!(stats.get("session_hits").and_then(Json::as_u64), Some(1));
        assert_eq!(stats.get("entries").and_then(Json::as_u64), Some(1));
        assert_eq!(stats.get("path"), Some(&Json::Null));
        assert_eq!(stats.get("session_inconclusive"), None, "absent when zero");
        let flush = answer(&mut c, r#"{"op":"flush"}"#);
        assert_eq!(flush.get("ok"), Some(&Json::Bool(true)));
    }

    #[test]
    fn oversized_request_lines_are_drained_not_buffered() {
        let mut c = checker();
        let opts = ServeOptions { max_request_bytes: 64, ..ServeOptions::default() };
        let long = format!("{{\"op\":\"check\",\"source\":\"{}\"}}\n", "x".repeat(1000));
        let input = format!("{long}{{\"op\":\"stats\"}}\n");
        let mut out = Vec::new();
        let summary = serve_with(&mut c, input.as_bytes(), &mut out, &opts).unwrap();
        assert_eq!(summary, ServeSummary { requests: 2, errors: 1 });
        let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().lines().collect();
        assert!(lines[0].contains("exceeds 64 bytes"), "{}", lines[0]);
        assert!(lines[1].contains("\"op\":\"stats\""), "next request still answered");
    }

    #[test]
    fn invalid_utf8_is_an_error_response_not_a_crash() {
        let mut c = checker();
        let mut input: Vec<u8> = vec![0xff, 0xfe, 0x80, b'\n'];
        input.extend_from_slice(b"{\"op\":\"stats\"}\n");
        let mut out = Vec::new();
        let summary = serve(&mut c, &input[..], &mut out).unwrap();
        assert_eq!(summary, ServeSummary { requests: 2, errors: 1 });
        assert!(std::str::from_utf8(&out).unwrap().contains("not valid UTF-8"));
    }

    #[test]
    fn starved_check_reports_inconclusive_fields() {
        let mut c = checker().with_budget(Budget::default().with_max_candidates(1));
        let response = answer(&mut c, r#"{"op":"check","name":"SB"}"#);
        assert_eq!(response.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(response.get("inconclusive"), Some(&Json::Bool(true)));
        assert_eq!(response.get("verdict"), None, "no verdict without completion");
        assert_eq!(
            response.get("reason").and_then(Json::as_str),
            Some("candidate budget exhausted")
        );
        assert_eq!(response.get("candidates").and_then(Json::as_u64), Some(1));
        let stats = answer(&mut c, r#"{"op":"stats"}"#);
        assert_eq!(stats.get("session_inconclusive").and_then(Json::as_u64), Some(1));
        assert_eq!(stats.get("entries").and_then(Json::as_u64), Some(0), "never cached");
    }

    #[test]
    fn batch_counts_inconclusive_when_budgeted() {
        let mut c = checker().with_budget(Budget::default().with_max_candidates(1));
        let response = answer(&mut c, r#"{"op":"batch","names":["SB","MP"]}"#);
        assert_eq!(response.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(response.get("inconclusive").and_then(Json::as_u64), Some(2));
        assert_eq!(response.get("computed").and_then(Json::as_u64), Some(0));
    }
}
