//! Sharded verdict store: N independent [`VerdictStore`] logs behind one
//! [`VerdictLog`] handle, partitioned by key prefix so concurrent
//! writers never contend on a file.
//!
//! ## Layout
//!
//! With one shard the store *is* a plain [`VerdictStore`] at the base
//! path — byte-interchangeable with the single-store pipeline, so a
//! cold run through a 1-shard server produces the identical log. With
//! `n > 1` shards the logs live at `<base>.shard<i>of<n>` siblings
//! (each with its own PR-8 lockfile) and an advisory lock on the base
//! path itself keeps a plain opener from racing the sharded family.
//!
//! ## Routing
//!
//! A key routes to `(key >> 96) % n`: the *top* 32 bits of the
//! 128-bit content hash, so routing is stable under any shard count
//! and uncorrelated with the low bits other layers use for display.
//! Every key lives in exactly one shard; cross-shard order is
//! therefore irrelevant to replay, which is what makes the merged
//! export below deterministic.
//!
//! ## Quarantine, not collapse
//!
//! An append failure (I/O error, or the `shard.append` faultpoint)
//! *poisons* that one shard: its log stops growing, reads keep being
//! served from its index, later appends to it are counted as dropped,
//! and the other shards are untouched. A multi-client server degrades
//! to a partial cache instead of dying — exactly the contract
//! [`VerdictLog::put`] documents with its `Ok(false)`.
//!
//! ## Compaction
//!
//! Each shard tracks superseded frames; when a shard crosses the
//! configured threshold its log is rewritten in place (atomic
//! snapshot + rename) on the next append, bounding log growth under
//! re-checking workloads without a maintenance window.

use crate::store::{
    read_log, replay_sorted, scan_records, sibling, write_snapshot, CompactReport, LockFile,
    MergeReport, RecoveryReport, ShardStats, StoreError, VerdictLog, VerdictStore,
};
use lkmm_core::faultpoint;
use lkmm_exec::TestResult;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard};

/// One shard: a plain store plus its quarantine state.
struct Shard {
    store: VerdictStore,
    /// Why this shard stopped accepting appends, if it did.
    poisoned: Option<String>,
    /// Appends discarded because the shard was already poisoned.
    dropped: usize,
}

/// N independent verdict logs behind the [`VerdictLog`] API.
///
/// All methods take `&self`: each shard sits behind its own mutex, so
/// a `ShardedStore` can be shared across worker threads (typically as
/// an `Arc`, which also implements [`VerdictLog`]) and appends to
/// different shards proceed in parallel.
pub struct ShardedStore {
    shards: Vec<Mutex<Shard>>,
    base: Option<PathBuf>,
    /// fsync after every successful append (a server acking requests
    /// must not lose acked verdicts to a crash).
    durable: bool,
    /// In-place-compact a shard once it accumulates this many
    /// superseded frames (0 = never).
    compact_threshold: usize,
    /// Advisory lock on the base path while `n > 1` (the shard files
    /// carry their own locks; this one fences plain openers).
    _base_lock: Option<LockFile>,
}

impl ShardedStore {
    /// Open (creating if absent) `shards` logs for the store family at
    /// `base`, locking every member for the lifetime of the handle.
    ///
    /// # Errors
    ///
    /// [`StoreError::Locked`] if any member is held by a live process;
    /// I/O errors opening or recovering any shard. `shards` must be
    /// ≥ 1.
    pub fn open(base: impl AsRef<Path>, shards: usize) -> Result<ShardedStore, StoreError> {
        assert!(shards >= 1, "a sharded store needs at least one shard");
        let base = base.as_ref().to_path_buf();
        let base_lock = if shards > 1 { Some(LockFile::acquire(&base)?) } else { None };
        let mut opened = Vec::with_capacity(shards);
        for path in Self::shard_paths(&base, shards) {
            opened.push(Mutex::new(Shard {
                store: VerdictStore::open(path)?,
                poisoned: None,
                dropped: 0,
            }));
        }
        Ok(ShardedStore {
            shards: opened,
            base: Some(base),
            durable: false,
            compact_threshold: 0,
            _base_lock: base_lock,
        })
    }

    /// `shards` in-memory logs: same semantics, nothing persists.
    pub fn in_memory(shards: usize) -> ShardedStore {
        assert!(shards >= 1, "a sharded store needs at least one shard");
        ShardedStore {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard { store: VerdictStore::in_memory(), poisoned: None, dropped: 0 })
                })
                .collect(),
            base: None,
            durable: false,
            compact_threshold: 0,
            _base_lock: None,
        }
    }

    /// Builder: fsync each append before reporting it stored.
    pub fn durable(mut self, durable: bool) -> ShardedStore {
        self.durable = durable;
        self
    }

    /// Builder: in-place-compact a shard once it holds `threshold`
    /// superseded frames (0 disables).
    pub fn with_compact_threshold(mut self, threshold: usize) -> ShardedStore {
        self.compact_threshold = threshold;
        self
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The log paths for a `shards`-way family at `base`: the base path
    /// itself for one shard, `<base>.shard<i>of<n>` siblings otherwise.
    pub fn shard_paths(base: &Path, shards: usize) -> Vec<PathBuf> {
        if shards <= 1 {
            vec![base.to_path_buf()]
        } else {
            (0..shards).map(|i| sibling(base, &format!(".shard{i}of{shards}"))).collect()
        }
    }

    /// Discover how many shards the family at `base` has on disk by
    /// probing for `<base>.shard0of<n>` siblings (n = 2..=64). Returns
    /// 1 — a plain store — when none exist.
    pub fn discover(base: &Path) -> usize {
        for n in 2..=64 {
            if sibling(base, &format!(".shard0of{n}")).exists() {
                return n;
            }
        }
        1
    }

    fn route(&self, key: u128) -> usize {
        ((key >> 96) as u32 as usize) % self.shards.len()
    }

    /// A panicking worker must not wedge the whole store: take the data
    /// even from a poisoned mutex (shard state stays consistent — every
    /// mutation below completes or marks the shard poisoned itself).
    fn guard(&self, i: usize) -> MutexGuard<'_, Shard> {
        self.shards[i].lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Cached result for `key`, from whichever shard owns it. Poisoned
    /// shards still answer reads.
    pub fn get(&self, key: u128) -> Option<TestResult> {
        self.guard(self.route(key)).store.get(key).cloned()
    }

    /// Insert `result` under `key` in its shard. `Ok(false)` when
    /// nothing was written: the entry was already present, or the shard
    /// is (or just became) quarantined — an append failure poisons the
    /// shard instead of propagating, so one bad log cannot take the
    /// service down.
    pub fn put(&self, key: u128, result: TestResult) -> io::Result<bool> {
        let shard = self.route(key);
        let mut g = self.guard(shard);
        if g.poisoned.is_some() {
            g.dropped += 1;
            return Ok(false);
        }
        let outcome = faultpoint::inject_io("shard.append")
            .and_then(|()| g.store.put(key, result))
            .and_then(|wrote| {
                if wrote && self.durable {
                    g.store.flush()?;
                }
                Ok(wrote)
            });
        let wrote = match outcome {
            Ok(wrote) => wrote,
            Err(e) => {
                g.poisoned = Some(e.to_string());
                return Ok(false);
            }
        };
        if self.compact_threshold > 0 && g.store.superseded() >= self.compact_threshold {
            if let Err(e) = g.store.compact_in_place() {
                g.poisoned = Some(format!("compaction failed: {e}"));
            }
        }
        Ok(wrote)
    }

    /// Flush every healthy shard. A failing flush quarantines that
    /// shard (visible in [`ShardedStore::stats`]) rather than erroring,
    /// for the same reason as [`ShardedStore::put`].
    pub fn flush(&self) {
        for i in 0..self.shards.len() {
            let mut g = self.guard(i);
            if g.poisoned.is_some() {
                continue;
            }
            if let Err(e) = g.store.flush() {
                g.poisoned = Some(format!("flush failed: {e}"));
            }
        }
    }

    /// Distinct keys across all shards.
    pub fn len(&self) -> usize {
        (0..self.shards.len()).map(|i| self.guard(i).store.len()).sum()
    }

    /// Whether no shard holds any key.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records appended across all shards since open.
    pub fn appended(&self) -> usize {
        (0..self.shards.len()).map(|i| self.guard(i).store.appended()).sum()
    }

    /// Superseded frames across all shards.
    pub fn superseded(&self) -> usize {
        (0..self.shards.len()).map(|i| self.guard(i).store.superseded()).sum()
    }

    /// The base path, if file-backed.
    pub fn path(&self) -> Option<&Path> {
        self.base.as_deref()
    }

    /// Aggregated open-time recovery findings: counters summed,
    /// `quarantined` if any shard was, the first reclaimed PID kept.
    pub fn recovery(&self) -> RecoveryReport {
        let mut agg = RecoveryReport::default();
        for i in 0..self.shards.len() {
            let r = self.guard(i).store.recovery();
            agg.records += r.records;
            agg.torn_bytes += r.torn_bytes;
            agg.corrupt_frames += r.corrupt_frames;
            agg.corrupt_bytes += r.corrupt_bytes;
            agg.quarantined |= r.quarantined;
            agg.reclaimed_pid = agg.reclaimed_pid.or(r.reclaimed_pid);
        }
        agg
    }

    /// Per-shard health, in shard order.
    pub fn stats(&self) -> Vec<ShardStats> {
        (0..self.shards.len())
            .map(|i| {
                let g = self.guard(i);
                ShardStats {
                    shard: i,
                    path: g.store.path().map(Path::to_path_buf),
                    records: g.store.len(),
                    appended: g.store.appended(),
                    superseded: g.store.superseded(),
                    quarantined: g.store.recovery().quarantined,
                    poisoned: g.poisoned.clone(),
                    dropped: g.dropped,
                }
            })
            .collect()
    }

    /// Write one key-ordered compacted snapshot of the whole family at
    /// `base` (however many shards it has on disk) to `dst`. Because
    /// every key lives in exactly one shard, this is byte-identical to
    /// [`VerdictStore::export`] of an unsharded store with the same
    /// contents — the mechanism CI uses to compare a sharded
    /// multi-client run against the sequential path.
    ///
    /// # Errors
    ///
    /// [`StoreError::Locked`] if any member (or `dst`) is in use; I/O
    /// errors reading shards or writing the snapshot.
    pub fn export_merged(
        base: impl AsRef<Path>,
        dst: impl AsRef<Path>,
    ) -> Result<CompactReport, StoreError> {
        let (base, dst) = (base.as_ref(), dst.as_ref());
        let shards = Self::discover(base);
        let _base_lock = if shards > 1 { Some(LockFile::acquire(base)?) } else { None };
        let _dst_lock = LockFile::acquire(dst)?;
        let mut locks = Vec::new();
        let mut records = Vec::new();
        let mut bytes_before = 0u64;
        let mut defect_bytes = 0u64;
        for path in Self::shard_paths(base, shards) {
            if shards > 1 {
                locks.push(LockFile::acquire(&path)?);
            }
            if !path.exists() {
                continue;
            }
            let (bytes, wrong_magic) = read_log(&path)?;
            if wrong_magic {
                return Err(StoreError::Io(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{}: not a verdict store (run scrub --repair first)", path.display()),
                )));
            }
            bytes_before += bytes.len() as u64;
            let scan = scan_records(&bytes);
            defect_bytes += scan.defect_bytes();
            records.extend(scan.records);
        }
        let records_in = records.len();
        let sorted = replay_sorted(&records);
        let bytes_after = write_snapshot(dst, &sorted)?;
        Ok(CompactReport {
            records_in,
            records_out: sorted.len(),
            superseded: records_in - sorted.len(),
            defect_bytes,
            bytes_before,
            bytes_after,
        })
    }

    /// Replay the plain store at `src` into a `shards`-way family at
    /// `dst_base`, routing each key to its shard — how an existing warm
    /// single log is promoted for a sharded server.
    ///
    /// # Errors
    ///
    /// [`StoreError::Locked`] if `src` or any destination member is in
    /// use; I/O errors reading or appending.
    pub fn merge_into_shards(
        dst_base: impl AsRef<Path>,
        shards: usize,
        src: impl AsRef<Path>,
    ) -> Result<MergeReport, StoreError> {
        let (dst_base, src) = (dst_base.as_ref(), src.as_ref());
        let _src_lock = LockFile::acquire(src)?;
        let dst = ShardedStore::open(dst_base, shards)?;
        let (bytes, wrong_magic) = read_log(src)?;
        if wrong_magic {
            return Err(StoreError::Io(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}: not a verdict store (run scrub --repair first)", src.display()),
            )));
        }
        let sorted = replay_sorted(&scan_records(&bytes).records);
        let mut report = MergeReport { source_keys: sorted.len(), ..MergeReport::default() };
        for (key, result) in sorted {
            if dst.put(key, result)? {
                report.merged += 1;
            } else {
                report.unchanged += 1;
            }
        }
        dst.flush();
        Ok(report)
    }
}

impl VerdictLog for Arc<ShardedStore> {
    fn get(&self, key: u128) -> Option<TestResult> {
        ShardedStore::get(self, key)
    }

    fn put(&mut self, key: u128, result: TestResult) -> io::Result<bool> {
        ShardedStore::put(self, key, result)
    }

    fn flush(&mut self) -> io::Result<()> {
        ShardedStore::flush(self);
        Ok(())
    }

    fn len(&self) -> usize {
        ShardedStore::len(self)
    }

    fn appended(&self) -> usize {
        ShardedStore::appended(self)
    }

    fn recovery(&self) -> RecoveryReport {
        ShardedStore::recovery(self)
    }

    fn path(&self) -> Option<PathBuf> {
        ShardedStore::path(self).map(Path::to_path_buf)
    }

    fn shard_stats(&self) -> Vec<ShardStats> {
        ShardedStore::stats(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lkmm_exec::Verdict;

    fn sample(i: usize) -> TestResult {
        TestResult {
            verdict: if i % 2 == 0 { Verdict::Allowed } else { Verdict::Forbidden },
            condition_holds: i % 3 == 0,
            candidates: 10 + i,
            allowed: 5 + i,
            witnesses: i,
        }
    }

    /// Keys spread across the routing prefix (top 32 bits vary).
    fn spread_key(i: u32) -> u128 {
        ((i as u128) << 96) | i as u128
    }

    fn temp_base(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("lkmm-shard-test-{tag}-{}", std::process::id()));
        for n in 1..=8 {
            for path in ShardedStore::shard_paths(&p, n) {
                let _ = std::fs::remove_file(&path);
                let _ = std::fs::remove_file(sibling(&path, ".lock"));
            }
        }
        let _ = std::fs::remove_file(sibling(&p, ".lock"));
        p
    }

    fn cleanup(base: &Path, shards: usize) {
        for path in ShardedStore::shard_paths(base, shards) {
            let _ = std::fs::remove_file(path);
        }
    }

    #[test]
    fn single_shard_is_a_plain_store() {
        let base = temp_base("plain");
        let s = ShardedStore::open(&base, 1).unwrap();
        for i in 0..16 {
            assert!(s.put(spread_key(i), sample(i as usize)).unwrap());
        }
        s.flush();
        drop(s);
        // A plain VerdictStore opens the very same file.
        let plain = VerdictStore::open(&base).unwrap();
        assert_eq!(plain.len(), 16);
        assert_eq!(plain.get(spread_key(3)), Some(&sample(3)));
        drop(plain);
        cleanup(&base, 1);
    }

    #[test]
    fn keys_partition_across_shards_and_survive_reopen() {
        let base = temp_base("partition");
        let s = ShardedStore::open(&base, 4).unwrap();
        for i in 0..64 {
            assert!(s.put(spread_key(i), sample(i as usize)).unwrap());
        }
        s.flush();
        let stats = s.stats();
        assert_eq!(stats.len(), 4);
        assert_eq!(stats.iter().map(|st| st.records).sum::<usize>(), 64);
        assert!(stats.iter().all(|st| st.records > 0), "spread keys hit every shard");
        drop(s);
        let s = ShardedStore::open(&base, 4).unwrap();
        assert_eq!(s.len(), 64);
        for i in 0..64 {
            assert_eq!(s.get(spread_key(i)), Some(sample(i as usize)));
        }
        assert!(s.recovery().is_clean());
        drop(s);
        cleanup(&base, 4);
    }

    #[test]
    fn sharded_family_locks_out_second_opener() {
        let base = temp_base("locks");
        let s = ShardedStore::open(&base, 2).unwrap();
        // Base lock fences both another family and a plain opener.
        assert!(matches!(ShardedStore::open(&base, 2), Err(StoreError::Locked { .. })));
        assert!(matches!(VerdictStore::open(&base), Err(StoreError::Locked { .. })));
        drop(s);
        let _reopen = ShardedStore::open(&base, 2).unwrap();
        cleanup(&base, 2);
    }

    #[test]
    fn merged_export_is_byte_identical_to_plain_export() {
        let base_sharded = temp_base("exp-sharded");
        let base_plain = temp_base("exp-plain");
        let sharded = ShardedStore::open(&base_sharded, 4).unwrap();
        let plain = ShardedStore::open(&base_plain, 1).unwrap();
        // Different insertion orders on purpose: exports are key-sorted.
        for i in 0..40 {
            sharded.put(spread_key(i), sample(i as usize)).unwrap();
        }
        for i in (0..40).rev() {
            plain.put(spread_key(i), sample(i as usize)).unwrap();
        }
        sharded.flush();
        plain.flush();
        drop(sharded);
        drop(plain);
        let dst_a = temp_base("exp-out-a");
        let dst_b = temp_base("exp-out-b");
        ShardedStore::export_merged(&base_sharded, &dst_a).unwrap();
        VerdictStore::export(&base_plain, &dst_b).unwrap();
        assert_eq!(std::fs::read(&dst_a).unwrap(), std::fs::read(&dst_b).unwrap());
        cleanup(&base_sharded, 4);
        cleanup(&base_plain, 1);
        cleanup(&dst_a, 1);
        cleanup(&dst_b, 1);
    }

    #[test]
    fn merge_into_shards_promotes_a_plain_store() {
        let plain = temp_base("promote-src");
        {
            let s = ShardedStore::open(&plain, 1).unwrap();
            for i in 0..32 {
                s.put(spread_key(i), sample(i as usize)).unwrap();
            }
            s.flush();
        }
        let family = temp_base("promote-dst");
        let report = ShardedStore::merge_into_shards(&family, 4, &plain).unwrap();
        assert_eq!(report.source_keys, 32);
        assert_eq!(report.merged, 32);
        let s = ShardedStore::open(&family, 4).unwrap();
        assert_eq!(s.len(), 32);
        assert_eq!(s.get(spread_key(7)), Some(sample(7)));
        drop(s);
        cleanup(&plain, 1);
        cleanup(&family, 4);
    }

    #[test]
    fn threshold_compaction_reclaims_superseded_frames() {
        let base = temp_base("threshold");
        let s = ShardedStore::open(&base, 1).unwrap().with_compact_threshold(4);
        for i in 0..8 {
            s.put(spread_key(i), sample(i as usize)).unwrap();
        }
        // Re-put with differing results until the threshold trips.
        for round in 1..=4 {
            for i in 0..8 {
                s.put(spread_key(i), sample(i as usize + round * 100)).unwrap();
            }
        }
        assert!(
            s.superseded() < 4,
            "compaction kept superseded frames below the threshold, found {}",
            s.superseded()
        );
        assert_eq!(s.len(), 8);
        drop(s);
        let s = ShardedStore::open(&base, 1).unwrap();
        assert_eq!(s.len(), 8);
        assert_eq!(s.get(spread_key(2)), Some(sample(402)));
        drop(s);
        cleanup(&base, 1);
    }
}
