//! Vendored FNV-1a hashing (64- and 128-bit).
//!
//! The verdict store needs a stable, dependency-free content hash: cache
//! keys must survive process restarts and be identical across machines,
//! which rules out `std::hash` (`RandomState` is seeded per process and
//! `SipHasher`'s unkeyed form is deprecated). FNV-1a is tiny, fully
//! specified, and plenty for content addressing — 128-bit keys make
//! accidental collisions over even a billion-test corpus astronomically
//! unlikely, and a poisoned entry is merely a wrong cached verdict for an
//! attacker-chosen test, not a memory-safety issue, so a cryptographic
//! hash buys nothing here. Vendored like SplitMix64 in `lkmm-sim`: the
//! workspace builds offline with zero external dependencies.

const FNV64_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV64_PRIME: u64 = 0x0000_0100_0000_01b3;

const FNV128_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c20d;
const FNV128_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

/// Streaming 64-bit FNV-1a (record checksums in the store log).
#[derive(Clone, Debug)]
pub struct Fnv64(u64);

impl Fnv64 {
    pub fn new() -> Self {
        Fnv64(FNV64_OFFSET)
    }

    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV64_PRIME);
        }
    }

    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

/// Streaming 128-bit FNV-1a (content-addressed cache keys).
#[derive(Clone, Debug)]
pub struct Fnv128(u128);

impl Fnv128 {
    pub fn new() -> Self {
        Fnv128(FNV128_OFFSET)
    }

    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u128::from(b);
            self.0 = self.0.wrapping_mul(FNV128_PRIME);
        }
    }

    pub fn finish(&self) -> u128 {
        self.0
    }
}

impl Default for Fnv128 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot 64-bit FNV-1a.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv64_known_vectors() {
        // Reference values of the published FNV-1a test suite.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn fnv128_distinguishes_and_is_stable() {
        let mut a = Fnv128::new();
        a.write(b"hello");
        let mut b = Fnv128::new();
        b.write(b"hellp");
        assert_ne!(a.finish(), b.finish());
        // Streaming in pieces equals one-shot.
        let mut c = Fnv128::new();
        c.write(b"hel");
        c.write(b"lo");
        assert_eq!(a.finish(), c.finish());
    }
}
