//! Canonical form and content-addressed cache keys for litmus tests.
//!
//! Generator output (and humans) produce *isomorphic* tests that differ
//! only in inessential presentation: location and register names, thread
//! order, `/\`-operand order, explicit-vs-implicit zero initialisation.
//! A verdict cache keyed on raw source would miss all of them. This
//! module computes a deterministic canonical [`Test`] such that any two
//! tests related by those transformations map to the same value, and a
//! 128-bit content hash of its rendering ([`cache_key`]) usable as a
//! store key.
//!
//! The canonical form (in application order):
//!
//! 1. **Init normalisation** — every location referenced by a thread
//!    body, the condition, or reachable through pointer initialisers gets
//!    an explicit init entry (absent ⇒ `0`); locations referenced nowhere
//!    are dropped (they generate no events and no condition mentions
//!    them).
//! 2. **Thread ordering** — threads sort by a name-blind structural
//!    fingerprint (body rendered with first-occurrence placeholder names
//!    plus init values), tie-broken by each thread's footprint in the
//!    condition; the sort is stable, and condition thread indices are
//!    remapped.
//! 3. **Alpha-renaming** — locations become `x0, x1, …` in order of first
//!    appearance (sorted-body traversal, then condition, then pointer
//!    targets); registers become `r0, r1, …` per thread (body traversal,
//!    then condition).
//! 4. **Condition normalisation** — `/\` and `\/` chains are flattened,
//!    operands normalised recursively, sorted, and deduplicated (both
//!    connectives are commutative, associative, and idempotent over
//!    final-state propositions); double negation is removed; the test
//!    name is replaced by a fixed marker.
//!
//! Soundness: the cache only ever *merges* tests whose canonical forms
//! are equal, every step above preserves check semantics (the LKMM and
//! all comparison models are thread-symmetric and name-blind), and the
//! checked test is always the original — so a merged entry serves the
//! exact `TestResult` either member would have computed. Missing an
//! isomorphic pair (the renaming is first-occurrence greedy, not a
//! minimal graph canonisation) costs a cache miss, never a wrong answer.

use crate::hash::Fnv128;
use lkmm_litmus::ast::{InitVal, Test, Thread};
use lkmm_litmus::cond::{CondVal, Condition, Prop, StateTerm};
use lkmm_litmus::rename::{
    body_to_string, permute_threads, rename_stmts, rename_test, thread_locations,
    thread_registers,
};
use std::collections::{BTreeMap, BTreeSet};

/// Bump when the canonical form or key derivation changes: stored keys
/// from older revisions then never match, so stale verdicts are invisible
/// rather than wrong.
pub const CANON_REVISION: u32 = 1;

/// The name given to every canonical test (original names are
/// presentation, not semantics).
pub const CANON_NAME: &str = "canonical";

/// Compute the canonical form of `test`.
pub fn canonicalize(test: &Test) -> Test {
    // 1. Init normalisation over the referenced-location set.
    let referenced = referenced_locations(test);
    let init: BTreeMap<String, InitVal> = referenced
        .iter()
        .map(|l| (l.clone(), test.init.get(l).cloned().unwrap_or(InitVal::Int(0))))
        .collect();
    let base = Test {
        name: test.name.clone(),
        init,
        threads: test.threads.clone(),
        condition: test.condition.clone(),
    };

    // 2. Thread ordering by (structural fingerprint, condition footprint).
    let keys: Vec<(String, String)> = base
        .threads
        .iter()
        .enumerate()
        .map(|(i, t)| {
            (thread_fingerprint(t, &base.init), cond_signature(i, t, &base.condition.prop))
        })
        .collect();
    let mut order: Vec<usize> = (0..base.threads.len()).collect();
    order.sort_by(|&a, &b| keys[a].cmp(&keys[b]));
    let permuted = permute_threads(&base, &order);

    // 3. Alpha-renaming: locations globally, registers per thread.
    let mut loc_order: Vec<String> = Vec::new();
    for t in &permuted.threads {
        for l in thread_locations(t) {
            push_unique(&mut loc_order, l);
        }
    }
    for l in prop_locations(&permuted.condition.prop) {
        push_unique(&mut loc_order, l);
    }
    let mut i = 0;
    while i < loc_order.len() {
        if let Some(InitVal::Ptr(target)) = permuted.init.get(&loc_order[i]) {
            push_unique(&mut loc_order, target.clone());
        }
        i += 1;
    }
    let loc_map: BTreeMap<String, String> =
        loc_order.iter().enumerate().map(|(i, l)| (l.clone(), format!("x{i}"))).collect();

    let mut reg_maps: Vec<BTreeMap<String, String>> = Vec::new();
    for (ti, t) in permuted.threads.iter().enumerate() {
        let mut reg_order = thread_registers(t);
        for r in prop_thread_regs(&permuted.condition.prop, ti) {
            push_unique(&mut reg_order, r);
        }
        reg_maps
            .push(reg_order.iter().enumerate().map(|(i, r)| (r.clone(), format!("r{i}"))).collect());
    }
    let renamed = rename_test(&permuted, &loc_map, &reg_maps);

    // 4. Condition normalisation.
    let condition = Condition {
        quantifier: renamed.condition.quantifier,
        prop: normalize_prop(&renamed.condition.prop),
    };
    Test { name: CANON_NAME.to_string(), init: renamed.init, threads: renamed.threads, condition }
}

/// The canonical form rendered as litmus source — the exact byte string
/// the cache key hashes.
pub fn canonical_text(test: &Test) -> String {
    canonicalize(test).to_litmus_string()
}

/// 128-bit content-addressed cache key: hash of the canonical text,
/// salted with the model name (one store may hold many models' verdicts)
/// and a caller-supplied version salt (bump it when model or interpreter
/// semantics change, and old entries silently stop matching).
pub fn cache_key(test: &Test, model_name: &str, salt: &str) -> u128 {
    cache_key_of_text(&canonical_text(test), model_name, salt)
}

/// [`cache_key`] with the canonicalization already done. Canonicalizing
/// dominates key derivation; a multi-column checker canonicalizes each
/// test once and derives every column's key from the same text — the
/// keys are byte-identical to per-column [`cache_key`] calls.
pub fn cache_key_of_text(canonical_text: &str, model_name: &str, salt: &str) -> u128 {
    let mut h = Fnv128::new();
    h.write(b"lkmm-verdict-key");
    h.write(&[0]);
    h.write(model_name.as_bytes());
    h.write(&[0]);
    h.write(salt.as_bytes());
    h.write(&[0]);
    h.write(&CANON_REVISION.to_le_bytes());
    h.write(&[0]);
    h.write(canonical_text.as_bytes());
    h.finish()
}

fn push_unique(order: &mut Vec<String>, name: String) {
    if !order.contains(&name) {
        order.push(name);
    }
}

/// Locations that can influence the check: referenced by a body or the
/// condition, or reachable from such a location through pointer inits.
fn referenced_locations(test: &Test) -> BTreeSet<String> {
    let mut set: BTreeSet<String> = BTreeSet::new();
    for t in &test.threads {
        set.extend(thread_locations(t));
    }
    set.extend(prop_locations(&test.condition.prop));
    loop {
        let mut added = Vec::new();
        for (k, v) in &test.init {
            if set.contains(k) {
                if let InitVal::Ptr(target) = v {
                    if !set.contains(target) {
                        added.push(target.clone());
                    }
                }
            }
        }
        if added.is_empty() {
            break;
        }
        set.extend(added);
    }
    set
}

/// Name-blind structural fingerprint of one thread: the body rendered
/// with thread-local first-occurrence placeholders (`L0, L1, …` for
/// locations, `G0, G1, …` for registers — distinct prefixes so `*L0`
/// and `*G0` stay distinguishable), followed by each location's init
/// value. Invariant under renaming and thread permutation.
fn thread_fingerprint(thread: &Thread, init: &BTreeMap<String, InitVal>) -> String {
    let locs = thread_locations(thread);
    let regs = thread_registers(thread);
    let loc_map: BTreeMap<String, String> =
        locs.iter().enumerate().map(|(i, l)| (l.clone(), format!("L{i}"))).collect();
    let reg_map: BTreeMap<String, String> =
        regs.iter().enumerate().map(|(i, r)| (r.clone(), format!("G{i}"))).collect();
    let mut sig = body_to_string(&rename_stmts(&thread.body, &loc_map, &reg_map));
    for (i, l) in locs.iter().enumerate() {
        match init.get(l) {
            None | Some(InitVal::Int(0)) => sig.push_str(&format!("|L{i}=0")),
            Some(InitVal::Int(v)) => sig.push_str(&format!("|L{i}={v}")),
            // The target's identity is resolved by the global renaming;
            // for *ordering* a pointer marker suffices.
            Some(InitVal::Ptr(_)) => sig.push_str(&format!("|L{i}=&")),
        }
    }
    sig
}

/// How the condition constrains thread `ti`, rename-invariantly: for
/// each `ti:reg = value` term in traversal order, the register's
/// first-occurrence index in the thread body (`?` if the register never
/// appears there) and the compared value.
fn cond_signature(ti: usize, thread: &Thread, prop: &Prop) -> String {
    let body_regs = thread_registers(thread);
    let mut sig = String::new();
    walk_cond_signature(ti, &body_regs, prop, &mut sig);
    sig
}

fn walk_cond_signature(ti: usize, body_regs: &[String], prop: &Prop, sig: &mut String) {
    match prop {
        Prop::True => {}
        Prop::Eq(StateTerm::Reg { thread, reg }, val) if *thread == ti => {
            match body_regs.iter().position(|r| r == reg) {
                Some(i) => sig.push_str(&format!("G{i}")),
                None => sig.push('?'),
            }
            match val {
                CondVal::Int(v) => sig.push_str(&format!("={v};")),
                CondVal::LocRef(_) => sig.push_str("=&;"),
            }
        }
        Prop::Eq(..) => {}
        Prop::And(a, b) | Prop::Or(a, b) => {
            walk_cond_signature(ti, body_regs, a, sig);
            walk_cond_signature(ti, body_regs, b, sig);
        }
        Prop::Not(inner) => walk_cond_signature(ti, body_regs, inner, sig),
    }
}

/// Locations mentioned by the condition (as final-state terms or `&loc`
/// comparison values), in traversal order.
fn prop_locations(prop: &Prop) -> Vec<String> {
    let mut out = Vec::new();
    walk_prop_locations(prop, &mut out);
    out
}

fn walk_prop_locations(prop: &Prop, out: &mut Vec<String>) {
    match prop {
        Prop::True => {}
        Prop::Eq(term, val) => {
            if let StateTerm::Loc(l) = term {
                out.push(l.clone());
            }
            if let CondVal::LocRef(l) = val {
                out.push(l.clone());
            }
        }
        Prop::And(a, b) | Prop::Or(a, b) => {
            walk_prop_locations(a, out);
            walk_prop_locations(b, out);
        }
        Prop::Not(inner) => walk_prop_locations(inner, out),
    }
}

/// Registers of thread `ti` mentioned by the condition, in traversal
/// order.
fn prop_thread_regs(prop: &Prop, ti: usize) -> Vec<String> {
    let mut out = Vec::new();
    walk_prop_thread_regs(prop, ti, &mut out);
    out
}

fn walk_prop_thread_regs(prop: &Prop, ti: usize, out: &mut Vec<String>) {
    match prop {
        Prop::True => {}
        Prop::Eq(StateTerm::Reg { thread, reg }, _) if *thread == ti => out.push(reg.clone()),
        Prop::Eq(..) => {}
        Prop::And(a, b) | Prop::Or(a, b) => {
            walk_prop_thread_regs(a, ti, out);
            walk_prop_thread_regs(b, ti, out);
        }
        Prop::Not(inner) => walk_prop_thread_regs(inner, ti, out),
    }
}

/// Flatten, sort, and deduplicate `/\` and `\/` chains; drop `true` from
/// conjunctions; collapse double negation.
fn normalize_prop(prop: &Prop) -> Prop {
    match prop {
        Prop::True | Prop::Eq(..) => prop.clone(),
        Prop::Not(inner) => match normalize_prop(inner) {
            Prop::Not(doubled) => *doubled,
            p => Prop::Not(Box::new(p)),
        },
        Prop::And(..) => normalize_chain(prop, true),
        Prop::Or(..) => normalize_chain(prop, false),
    }
}

fn normalize_chain(prop: &Prop, is_and: bool) -> Prop {
    let mut operands = Vec::new();
    flatten_chain(prop, is_and, &mut operands);
    if is_and {
        operands.retain(|p| !matches!(p, Prop::True));
    }
    operands.sort_by_key(Prop::to_string);
    operands.dedup();
    let mut it = operands.into_iter();
    let Some(first) = it.next() else {
        // An all-`true` conjunction.
        return Prop::True;
    };
    it.fold(first, |acc, p| {
        if is_and {
            Prop::And(Box::new(acc), Box::new(p))
        } else {
            Prop::Or(Box::new(acc), Box::new(p))
        }
    })
}

fn flatten_chain(prop: &Prop, is_and: bool, out: &mut Vec<Prop>) {
    match (prop, is_and) {
        (Prop::And(a, b), true) | (Prop::Or(a, b), false) => {
            flatten_chain(a, is_and, out);
            flatten_chain(b, is_and, out);
        }
        _ => out.push(normalize_prop(prop)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lkmm_litmus::parse;

    const MP: &str = r#"
C MP
{ x=0; y=0; }
P0(int *x, int *y) { WRITE_ONCE(*x, 1); smp_wmb(); WRITE_ONCE(*y, 1); }
P1(int *x, int *y) {
    int r0; int r1;
    r0 = READ_ONCE(*y); smp_rmb(); r1 = READ_ONCE(*x);
}
exists (1:r0=1 /\ 1:r1=0)
"#;

    /// MP with renamed everything, the threads swapped, and the
    /// condition conjuncts flipped — isomorphic to `MP`.
    const MP_SCRAMBLED: &str = r#"
C MP-scrambled
{ alpha=0; beta=0; }
P0(int *alpha, int *beta) {
    int s9; int s2;
    s9 = READ_ONCE(*beta); smp_rmb(); s2 = READ_ONCE(*alpha);
}
P1(int *alpha, int *beta) { WRITE_ONCE(*alpha, 1); smp_wmb(); WRITE_ONCE(*beta, 1); }
exists (0:s2=0 /\ 0:s9=1)
"#;

    #[test]
    fn isomorphic_tests_share_a_key() {
        let a = parse(MP).unwrap();
        let b = parse(MP_SCRAMBLED).unwrap();
        assert_eq!(canonical_text(&a), canonical_text(&b));
        assert_eq!(cache_key(&a, "LKMM", "v1"), cache_key(&b, "LKMM", "v1"));
    }

    #[test]
    fn key_separates_models_and_salts() {
        let a = parse(MP).unwrap();
        assert_ne!(cache_key(&a, "LKMM", "v1"), cache_key(&a, "SC", "v1"));
        assert_ne!(cache_key(&a, "LKMM", "v1"), cache_key(&a, "LKMM", "v2"));
    }

    #[test]
    fn mutants_get_distinct_keys() {
        let a = parse(MP).unwrap();
        // Different compared value.
        let b = parse(&MP.replace("1:r1=0", "1:r1=1")).unwrap();
        // Different fence.
        let c = parse(&MP.replace("smp_wmb", "smp_mb")).unwrap();
        // Different quantifier.
        let d = parse(&MP.replace("exists", "~exists")).unwrap();
        let k = |t: &Test| cache_key(t, "LKMM", "v1");
        assert_ne!(k(&a), k(&b));
        assert_ne!(k(&a), k(&c));
        assert_ne!(k(&a), k(&d));
        assert_ne!(k(&b), k(&c));
    }

    #[test]
    fn implicit_and_explicit_zero_init_are_identified() {
        let a = parse("C t\n{ x=0; }\nP0(int *x) { WRITE_ONCE(*x, 1); }\nexists (x=1)").unwrap();
        let b = parse("C t\n{ }\nP0(int *x) { WRITE_ONCE(*x, 1); }\nexists (x=1)").unwrap();
        assert_eq!(canonical_text(&a), canonical_text(&b));
    }

    #[test]
    fn unreferenced_zero_location_is_dropped() {
        let a = parse("C t\n{ x=0; junk=0; }\nP0(int *x) { WRITE_ONCE(*x, 1); }\nexists (x=1)")
            .unwrap();
        let b = parse("C t\n{ x=0; }\nP0(int *x) { WRITE_ONCE(*x, 1); }\nexists (x=1)").unwrap();
        assert_eq!(canonical_text(&a), canonical_text(&b));
    }

    #[test]
    fn condition_only_location_is_kept() {
        let a = parse("C t\n{ x=7; }\nP0(int *y) { WRITE_ONCE(*y, 1); }\nexists (x=7)").unwrap();
        let b = parse("C t\n{ }\nP0(int *y) { WRITE_ONCE(*y, 1); }\nexists (x=7)").unwrap();
        assert_ne!(canonical_text(&a), canonical_text(&b));
    }

    #[test]
    fn canonical_text_is_reparseable_and_idempotent() {
        for pt in lkmm_litmus::library::all() {
            let t = pt.test();
            let canon = canonicalize(&t);
            let reparsed = parse(&canon.to_litmus_string())
                .unwrap_or_else(|e| panic!("{}: canonical form must reparse: {e}", pt.name));
            assert_eq!(reparsed, canon, "{}: reparse changed the canonical form", pt.name);
            assert_eq!(
                canonicalize(&canon),
                canon,
                "{}: canonicalization must be idempotent",
                pt.name
            );
        }
    }

    #[test]
    fn pointer_init_targets_survive() {
        let src = "C t\n{ p=&x; x=2; }\nP0(int *p) { int r0; r0 = READ_ONCE(*p); }\nexists (0:r0=2)";
        let t = parse(src).unwrap();
        let canon = canonicalize(&t);
        // Both p and its target must be present under canonical names.
        assert_eq!(canon.init.len(), 2);
        assert!(canon.init.values().any(|v| matches!(v, InitVal::Ptr(_))));
    }
}
