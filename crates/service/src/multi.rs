//! Multi-model batch checking: many columns, one enumeration per test.
//!
//! [`MultiBatchChecker`] generalises [`crate::BatchChecker`] to N models
//! sharing one verdict store. For each corpus member it resolves every
//! column independently against the store (per-column cache keys are
//! byte-identical to what N separate `BatchChecker`s would derive, so
//! warm stores written by either path replay interchangeably), then runs
//! **one** governed enumeration pass over just the columns that missed —
//! the PR-1 pipeline evaluates all of them per candidate against a
//! shared facts layer. A fully warm store enumerates nothing; a cold
//! seven-column run enumerates each test once instead of seven times.
//!
//! Per-column bookkeeping (hits, computed, deduped, inconclusive,
//! candidates) keeps the exact semantics of N sequential passes: a
//! column's `candidates_enumerated` counts the candidates *its* verdict
//! consumed, so per-column observability is unchanged; the shared-pass
//! saving shows up in [`MultiBatchReport::candidates_actual`], which
//! counts each enumeration once no matter how many columns rode on it.

use crate::batch::{BatchError, BatchOutcome, Provenance};
use crate::canon::{cache_key, cache_key_of_text, canonical_text};
use crate::store::{VerdictLog, VerdictStore};
use lkmm_core::budget::{Budget, BudgetKind, Meter};
use lkmm_exec::{
    check_test_multi_governed, CheckOutcome, ConsistencyModel, EnumOptions, InconclusiveReason,
    MultiCheckOutcome, PipelineOptions, Tally,
};
use lkmm_litmus::ast::Test;
use std::collections::HashMap;
use std::io;
use std::time::Instant;

/// One column of a multi-model batch: a model plus its cache salt.
pub struct MultiColumn<'m> {
    /// The checker answering this column.
    pub model: &'m dyn ConsistencyModel,
    /// Version salt for this column's cache keys — the same string a
    /// dedicated [`crate::BatchChecker`] for this column would be built
    /// with (e.g. `"{base}|col:{name}"` in the conformance matrix).
    pub salt: String,
}

/// Per-column results and counters, aligned to the corpus.
#[derive(Clone, Debug)]
pub struct ColumnReport {
    /// One slot per corpus member; `None` where the column was masked
    /// out (the checker does not cover the test).
    pub outcomes: Vec<Option<BatchOutcome>>,
    /// Store hits.
    pub hits: usize,
    /// Verdicts computed to completion this batch.
    pub computed: usize,
    /// In-batch duplicates of an earlier canonical key.
    pub deduped: usize,
    /// Checks stopped by the budget (not stored).
    pub inconclusive: usize,
    /// Candidates backing this column's computed verdicts (0 on a fully
    /// warm store) — matches what a dedicated single-model pass reports.
    pub candidates_enumerated: usize,
}

/// Aggregate outcome of one [`MultiBatchChecker::check_corpus`] call.
#[derive(Clone, Debug)]
pub struct MultiBatchReport {
    /// One report per column, in constructor order.
    pub columns: Vec<ColumnReport>,
    /// Enumeration passes actually run (each serving ≥ 1 column).
    pub enumeration_passes: usize,
    /// Candidates actually enumerated, counted once per pass — the
    /// denominator of the single-enumeration saving.
    pub candidates_actual: usize,
    /// Wall-clock for the batch, in microseconds.
    pub micros: u128,
}

/// A memoizing multi-model checker: N columns, one store, one
/// enumeration per cold test. Generic over its [`VerdictLog`] backend
/// (default: a plain owned [`VerdictStore`]) like
/// [`crate::BatchChecker`].
pub struct MultiBatchChecker<'m, S: VerdictLog = VerdictStore> {
    columns: Vec<MultiColumn<'m>>,
    store: S,
    enum_opts: EnumOptions,
    pipe: PipelineOptions,
}

impl<'m, S: VerdictLog> MultiBatchChecker<'m, S> {
    /// A checker for `columns` writing through `store`.
    ///
    /// # Panics
    ///
    /// Panics on an empty column set.
    pub fn new(columns: Vec<MultiColumn<'m>>, store: S) -> Self {
        assert!(!columns.is_empty(), "multi-model batch needs at least one column");
        MultiBatchChecker {
            columns,
            store,
            enum_opts: EnumOptions::default(),
            pipe: PipelineOptions { jobs: 0, ..PipelineOptions::default() },
        }
    }

    /// Override the enumeration options (folded into cache keys, except
    /// the budget).
    pub fn with_options(mut self, opts: EnumOptions) -> Self {
        self.enum_opts = opts;
        self
    }

    /// Check misses on `jobs` pipeline workers (`0` = one per hardware
    /// thread). Never part of cache keys.
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.pipe.jobs = jobs;
        self
    }

    /// Bound each worker's candidate queue.
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        self.pipe.queue_depth = depth;
        self
    }

    /// Record batch-occupancy and arena-reuse counters into `stats`
    /// during enumeration passes. Observability only — like job count,
    /// never part of cache keys, and a warm store (which enumerates
    /// nothing) legitimately leaves the counters at zero.
    pub fn with_pipeline_stats(
        mut self,
        stats: Option<std::sync::Arc<lkmm_exec::DataPlaneStats>>,
    ) -> Self {
        self.pipe.stats = stats;
        self
    }

    /// Bound every subsequent check by `budget` (not part of cache keys;
    /// inconclusive outcomes are never stored).
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.enum_opts.budget = budget;
        self
    }

    /// The cache key column `col` derives for `test` — byte-identical to
    /// [`crate::BatchChecker::key_of`] on a checker built with the same
    /// salt, so stores are shared freely between the two paths.
    pub fn key_of(&self, col: usize, test: &Test) -> u128 {
        let c = &self.columns[col];
        let salt = format!("{}|{:?}", c.salt, self.enum_opts);
        cache_key(test, c.model.name(), &salt)
    }

    /// Check a corpus across every column: per column, dedupe by
    /// canonical key and replay store hits; then run one shared governed
    /// enumeration per test over the columns still missing, write the
    /// completed verdicts back, and sync the store once at the end.
    ///
    /// `mask[c][i]` gates column `c` on corpus member `i` (an unsupported
    /// cell stays `None`). The budget's `deadline`/`cancel` axes govern
    /// the corpus between tests exactly as in
    /// [`crate::BatchChecker::check_corpus`].
    ///
    /// This is [`MultiBatchChecker::begin_corpus`] driven over the whole
    /// slice at once; a driver that streams units (for checkpointing or
    /// retries) uses the [`CorpusRun`] API directly.
    ///
    /// # Errors
    ///
    /// Store-append failure only.
    pub fn check_corpus(
        &mut self,
        tests: &[Test],
        mask: &[Vec<bool>],
    ) -> Result<MultiBatchReport, BatchError> {
        assert_eq!(mask.len(), self.columns.len(), "one mask row per column");
        for row in mask {
            assert_eq!(row.len(), tests.len(), "one mask slot per corpus member");
        }
        let ncols = self.columns.len();
        let mut run = self.begin_corpus();
        let mut row = vec![false; ncols];
        for (i, test) in tests.iter().enumerate() {
            for c in 0..ncols {
                row[c] = mask[c][i];
            }
            run.check_unit(i, test, &row)?;
        }
        run.finish(tests.len())
    }

    /// Start a streaming corpus session: per-run dedupe maps, counters,
    /// and corpus meter, fed one unit at a time via
    /// [`CorpusRun::check_unit`]. The checker (and its store) is borrowed
    /// for the run's lifetime.
    pub fn begin_corpus(&mut self) -> CorpusRun<'_, 'm, S> {
        let ncols = self.columns.len();
        // Corpus-level governor: absolute deadline and cancellation only;
        // candidate/step fuel and the relative time limit are per-check.
        let corpus_meter = Budget {
            max_candidates: None,
            max_eval_steps: None,
            time_limit: None,
            ..self.enum_opts.budget.clone()
        }
        .meter();
        // The per-column key salts are fixed for the whole run (the
        // checker is exclusively borrowed); deriving them here keeps
        // the Debug-format of the options out of the per-unit path.
        let salts: Vec<String> = self
            .columns
            .iter()
            .map(|c| format!("{}|{:?}", c.salt, self.enum_opts))
            .collect();
        CorpusRun {
            columns: (0..ncols)
                .map(|_| ColumnReport {
                    outcomes: Vec::new(),
                    hits: 0,
                    computed: 0,
                    deduped: 0,
                    inconclusive: 0,
                    candidates_enumerated: 0,
                })
                .collect(),
            seen: vec![HashMap::new(); ncols],
            salts,
            enumeration_passes: 0,
            candidates_actual: 0,
            corpus_meter,
            start: Instant::now(),
            checker: self,
        }
    }

    /// The underlying store.
    pub fn store(&self) -> &S {
        &self.store
    }

    /// Sync the store to stable storage.
    ///
    /// # Errors
    ///
    /// I/O errors from the sync.
    pub fn flush(&mut self) -> io::Result<()> {
        self.store.flush()
    }
}

/// A streaming corpus session over a [`MultiBatchChecker`]: the caller
/// feeds units one at a time (in any index order, normally ascending)
/// and collects the aggregate [`MultiBatchReport`] at the end. This is
/// what a checkpointing campaign driver runs on — it can flush the
/// store between units, skip quarantined indices (their slots stay
/// `None`), and *re-run* a unit whose first attempt failed partway.
///
/// ## Retry semantics
///
/// `check_unit` is safe to call again with the same index after an
/// error or a contained panic: outcome slots are per-index and simply
/// overwritten, columns that already completed (their verdict reached
/// the store or the dedupe map) replay instead of recomputing, and only
/// the columns that never finished are enumerated again. Session
/// counters (`hits`/`computed`/`deduped`) may double-count across such
/// a retry — they are stderr observability, deliberately excluded from
/// deterministic reports.
/// A retry-worthy failure recorded in a unit's cells (see
/// [`CorpusRun::unit_fault`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnitFault {
    /// At least one cell is inconclusive because model evaluation
    /// panicked (contained by the pipeline's per-candidate
    /// `catch_unwind`).
    WorkerPanicked,
    /// At least one cell tripped the relative wall-clock limit.
    TimedOut,
}

pub struct CorpusRun<'a, 'm, S: VerdictLog = VerdictStore> {
    checker: &'a mut MultiBatchChecker<'m, S>,
    columns: Vec<ColumnReport>,
    seen: Vec<HashMap<u128, usize>>,
    /// Fully-derived per-column key salts (base salt + options), fixed
    /// for the run.
    salts: Vec<String>,
    enumeration_passes: usize,
    candidates_actual: usize,
    corpus_meter: Meter,
    start: Instant,
}

impl<S: VerdictLog> CorpusRun<'_, '_, S> {
    /// Check corpus member `i` across every column `mask_row` enables
    /// (one slot per column). Outcome storage grows to cover `i`.
    ///
    /// # Errors
    ///
    /// Store-append failure only; see the retry semantics above.
    pub fn check_unit(
        &mut self,
        i: usize,
        test: &Test,
        mask_row: &[bool],
    ) -> Result<(), BatchError> {
        let ncols = self.checker.columns.len();
        assert_eq!(mask_row.len(), ncols, "one mask slot per column");
        for col in &mut self.columns {
            if col.outcomes.len() <= i {
                col.outcomes.resize(i + 1, None);
            }
        }
        // One canonicalization serves every column: the columns differ
        // only in the (model, salt) folded into the hash, not in the
        // canonical text, and canonicalizing dominates key derivation —
        // this is what makes a store-warm replay (and a checkpoint
        // resume) cheap.
        let canon = canonical_text(test);
        let keys: Vec<u128> = (0..ncols)
            .map(|c| {
                cache_key_of_text(&canon, self.checker.columns[c].model.name(), &self.salts[c])
            })
            .collect();
        // Resolve each column against its dedupe map and the store;
        // whatever is left shares one enumeration pass.
        let mut missing: Vec<usize> = Vec::new();
        for c in 0..ncols {
            if !mask_row[c] {
                continue;
            }
            let key = keys[c];
            if let Some(&first) = self.seen[c].get(&key) {
                self.columns[c].deduped += 1;
                let replay = self.columns[c].outcomes[first]
                    .as_ref()
                    .expect("dedupe map only indexes filled slots")
                    .outcome
                    .clone();
                self.columns[c].outcomes[i] = Some(BatchOutcome {
                    name: test.name.clone(),
                    key,
                    outcome: replay,
                    provenance: Provenance::Deduped,
                });
            } else if let Some(result) = self.checker.store.get(key) {
                self.columns[c].hits += 1;
                self.seen[c].insert(key, i);
                self.columns[c].outcomes[i] = Some(BatchOutcome {
                    name: test.name.clone(),
                    key,
                    outcome: CheckOutcome::Complete(result),
                    provenance: Provenance::Hit,
                });
            } else {
                missing.push(c);
            }
        }
        if missing.is_empty() {
            return Ok(());
        }
        if let Err(kind) = self.corpus_meter.poll_now() {
            for &c in &missing {
                self.columns[c].inconclusive += 1;
                self.columns[c].outcomes[i] = Some(BatchOutcome {
                    name: test.name.clone(),
                    key: keys[c],
                    outcome: CheckOutcome::Inconclusive {
                        reason: InconclusiveReason::BudgetExceeded(kind),
                        partial: Tally::default(),
                    },
                    provenance: Provenance::Computed,
                });
            }
            return Ok(());
        }
        let models: Vec<&dyn ConsistencyModel> =
            missing.iter().map(|&c| self.checker.columns[c].model).collect();
        let outcome =
            check_test_multi_governed(&models, test, &self.checker.enum_opts, &self.checker.pipe);
        self.enumeration_passes += 1;
        match outcome {
            MultiCheckOutcome::Complete(results) => {
                let mut counted = false;
                for (&c, result) in missing.iter().zip(results) {
                    if !counted {
                        self.candidates_actual += result.candidates;
                        counted = true;
                    }
                    let key = keys[c];
                    self.checker.store.put(key, result.clone())?;
                    self.columns[c].computed += 1;
                    self.columns[c].candidates_enumerated += result.candidates;
                    self.seen[c].insert(key, i);
                    self.columns[c].outcomes[i] = Some(BatchOutcome {
                        name: test.name.clone(),
                        key,
                        outcome: CheckOutcome::Complete(result),
                        provenance: Provenance::Computed,
                    });
                }
            }
            MultiCheckOutcome::Inconclusive { reason, partials } => {
                let mut counted = false;
                for (&c, partial) in missing.iter().zip(partials) {
                    if !counted {
                        self.candidates_actual += partial.candidates;
                        counted = true;
                    }
                    self.columns[c].inconclusive += 1;
                    self.columns[c].candidates_enumerated += partial.candidates;
                    // Inconclusive outcomes join neither the store
                    // nor the dedupe map: a later isomorph deserves
                    // its own attempt.
                    self.columns[c].outcomes[i] = Some(BatchOutcome {
                        name: test.name.clone(),
                        key: keys[c],
                        outcome: CheckOutcome::Inconclusive { reason: reason.clone(), partial },
                        provenance: Provenance::Computed,
                    });
                }
            }
        }
        Ok(())
    }

    /// Clear every outcome recorded for unit `i` (slots revert to `None`)
    /// and drop dedupe-map entries that point at it, so later isomorphs
    /// resolve through the store instead of replaying a wiped slot. A
    /// supervising driver calls this before retrying a failed unit and
    /// before quarantining one — verdicts that already reached the store
    /// stay there (they are content-addressed and valid regardless of
    /// which attempt produced them) and replay as hits on the retry.
    pub fn reset_unit(&mut self, i: usize) {
        for (c, col) in self.columns.iter_mut().enumerate() {
            if col.outcomes.len() > i {
                col.outcomes[i] = None;
            }
            self.seen[c].retain(|_, &mut first| first != i);
        }
    }

    /// Clone unit `i`'s outcome cells, one per column (`None` for
    /// masked or unvisited slots) — what a streaming driver feeds its
    /// per-row oracles the moment the unit completes, instead of
    /// waiting for the whole corpus.
    pub fn row_cells(&self, i: usize) -> Vec<Option<CheckOutcome>> {
        self.columns
            .iter()
            .map(|col| col.outcomes.get(i).and_then(Option::as_ref).map(|o| o.outcome.clone()))
            .collect()
    }

    /// Per-column count of filled outcome slots. Deterministic for a
    /// given set of visited units (unlike the hit/computed counters,
    /// which may double-count across retries).
    pub fn filled_per_column(&self) -> Vec<usize> {
        self.columns
            .iter()
            .map(|col| col.outcomes.iter().filter(|o| o.is_some()).count())
            .collect()
    }

    /// Whether unit `i`'s recorded cells carry a failure a retry could
    /// plausibly repair: a contained worker panic, or a relative
    /// wall-clock trip (the caller decides whether its budget makes
    /// `TimedOut` retry-worthy — an absolute corpus deadline does not).
    /// Deterministic fuel trips (candidates, eval steps) are *not*
    /// faults: re-running them reproduces the same inconclusive cell.
    pub fn unit_fault(&self, i: usize) -> Option<UnitFault> {
        let mut fault = None;
        for col in &self.columns {
            let Some(Some(o)) = col.outcomes.get(i) else { continue };
            match &o.outcome {
                CheckOutcome::Inconclusive {
                    reason: InconclusiveReason::WorkerPanicked, ..
                } => return Some(UnitFault::WorkerPanicked),
                CheckOutcome::Inconclusive {
                    reason: InconclusiveReason::BudgetExceeded(BudgetKind::WallClock),
                    ..
                } => fault = Some(UnitFault::TimedOut),
                _ => {}
            }
        }
        fault
    }

    /// Sync the store mid-run — what a checkpointing driver calls before
    /// recording progress, so the checkpoint never claims verdicts that
    /// aren't durable.
    ///
    /// # Errors
    ///
    /// I/O errors from the sync.
    pub fn flush(&mut self) -> io::Result<()> {
        self.checker.store.flush()
    }

    /// Close the session: pad every column to `total_units` slots
    /// (unvisited indices stay `None`), flush the store, and return the
    /// aggregate report.
    ///
    /// # Errors
    ///
    /// I/O errors from the final flush.
    pub fn finish(mut self, total_units: usize) -> Result<MultiBatchReport, BatchError> {
        for col in &mut self.columns {
            if col.outcomes.len() < total_units {
                col.outcomes.resize(total_units, None);
            }
        }
        self.checker.store.flush()?;
        Ok(MultiBatchReport {
            columns: self.columns,
            enumeration_passes: self.enumeration_passes,
            candidates_actual: self.candidates_actual,
            micros: self.start.elapsed().as_micros(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::BatchChecker;
    use lkmm_exec::model::AllowAll;
    use lkmm_exec::Verdict;

    fn corpus(n: usize) -> Vec<Test> {
        lkmm_litmus::library::all().iter().take(n).map(|pt| pt.test()).collect()
    }

    fn full_mask(ncols: usize, ntests: usize) -> Vec<Vec<bool>> {
        vec![vec![true; ntests]; ncols]
    }

    #[test]
    fn multi_keys_match_dedicated_batch_checkers() {
        let tests = corpus(4);
        let sc = lkmm_models::Sc;
        let tso = lkmm_models::X86Tso;
        let multi = MultiBatchChecker::new(
            vec![
                MultiColumn { model: &sc, salt: "v1|col:sc".into() },
                MultiColumn { model: &tso, salt: "v1|col:tso".into() },
            ],
            VerdictStore::in_memory(),
        );
        let single_sc = BatchChecker::new(&sc, VerdictStore::in_memory(), "v1|col:sc");
        let single_tso = BatchChecker::new(&tso, VerdictStore::in_memory(), "v1|col:tso");
        for t in &tests {
            assert_eq!(multi.key_of(0, t), single_sc.key_of(t));
            assert_eq!(multi.key_of(1, t), single_tso.key_of(t));
        }
    }

    #[test]
    fn one_enumeration_serves_every_cold_column() {
        let tests = corpus(5);
        let sc = lkmm_models::Sc;
        let tso = lkmm_models::X86Tso;
        let armv8 = lkmm_models::Armv8;
        let mut multi = MultiBatchChecker::new(
            vec![
                MultiColumn { model: &sc, salt: "s|col:sc".into() },
                MultiColumn { model: &tso, salt: "s|col:tso".into() },
                MultiColumn { model: &armv8, salt: "s|col:armv8".into() },
            ],
            VerdictStore::in_memory(),
        );
        let mask = full_mask(3, tests.len());
        let cold = multi.check_corpus(&tests, &mask).unwrap();
        assert_eq!(cold.enumeration_passes, tests.len());
        // Per-column counters still report the full per-verdict cost…
        let per_column: usize = cold.columns[0].candidates_enumerated;
        assert!(per_column > 0);
        assert_eq!(cold.columns[1].candidates_enumerated, per_column);
        // …while the shared pass only paid once.
        assert_eq!(cold.candidates_actual, per_column);

        // Warm re-run: all hits, nothing enumerated.
        let warm = multi.check_corpus(&tests, &mask).unwrap();
        assert_eq!(warm.enumeration_passes, 0);
        assert_eq!(warm.candidates_actual, 0);
        for (c, w) in cold.columns.iter().zip(&warm.columns) {
            assert_eq!(w.hits, tests.len());
            assert_eq!(w.computed, 0);
            for (co, wo) in c.outcomes.iter().zip(&w.outcomes) {
                assert_eq!(
                    co.as_ref().unwrap().outcome.result(),
                    wo.as_ref().unwrap().outcome.result()
                );
            }
        }
    }

    #[test]
    fn verdicts_match_sequential_single_model_passes() {
        let tests = corpus(6);
        let sc = lkmm_models::Sc;
        let c11 = lkmm_models::OriginalC11;
        let mut multi = MultiBatchChecker::new(
            vec![
                MultiColumn { model: &sc, salt: "q|col:sc".into() },
                MultiColumn { model: &c11, salt: "q|col:c11".into() },
            ],
            VerdictStore::in_memory(),
        );
        let report = multi.check_corpus(&tests, &full_mask(2, tests.len())).unwrap();
        for (c, (model, salt)) in
            [(&sc as &dyn ConsistencyModel, "q|col:sc"), (&c11, "q|col:c11")]
                .into_iter()
                .enumerate()
        {
            let mut single = BatchChecker::new(model, VerdictStore::in_memory(), salt);
            let seq = single.check_corpus(&tests).unwrap();
            for (m, s) in report.columns[c].outcomes.iter().zip(&seq.outcomes) {
                let m = m.as_ref().unwrap();
                assert_eq!(m.key, s.key);
                assert_eq!(m.outcome.result(), s.outcome.result());
                assert_eq!(m.provenance, s.provenance);
            }
        }
    }

    #[test]
    fn masked_cells_stay_none_and_cost_nothing() {
        let tests = corpus(3);
        let sc = lkmm_models::Sc;
        let mut multi = MultiBatchChecker::new(
            vec![
                MultiColumn { model: &sc, salt: "m|col:a".into() },
                MultiColumn { model: &AllowAll, salt: "m|col:b".into() },
            ],
            VerdictStore::in_memory(),
        );
        let mask = vec![vec![true, true, true], vec![true, false, false]];
        let report = multi.check_corpus(&tests, &mask).unwrap();
        assert!(report.columns[1].outcomes[1].is_none());
        assert!(report.columns[1].outcomes[2].is_none());
        assert_eq!(report.columns[1].computed + report.columns[1].hits, 1);
        assert!(report.columns[0].outcomes.iter().all(Option::is_some));
    }

    #[test]
    fn partial_warmth_enumerates_only_for_the_cold_column() {
        let tests = corpus(4);
        let sc = lkmm_models::Sc;
        let tso = lkmm_models::X86Tso;
        let mut multi = MultiBatchChecker::new(
            vec![
                MultiColumn { model: &sc, salt: "p|col:sc".into() },
                MultiColumn { model: &tso, salt: "p|col:tso".into() },
            ],
            VerdictStore::in_memory(),
        );
        // Warm the SC column alone by masking TSO out entirely.
        let sc_only = vec![vec![true; tests.len()], vec![false; tests.len()]];
        let first = multi.check_corpus(&tests, &sc_only).unwrap();
        assert_eq!(first.enumeration_passes, tests.len());
        // With both columns on, SC replays and the still-cold TSO column
        // drives one fresh pass per test.
        let second = multi.check_corpus(&tests, &full_mask(2, tests.len())).unwrap();
        assert_eq!(second.columns[0].hits, tests.len(), "sc column replays");
        assert_eq!(second.columns[1].computed, tests.len(), "tso column computes");
        assert_eq!(second.enumeration_passes, tests.len(), "one pass per cold test");
        for o in second.columns[1].outcomes.iter().flatten() {
            assert!(matches!(
                o.outcome.result().map(|r| r.verdict),
                Some(Verdict::Allowed | Verdict::Forbidden)
            ));
        }
    }

    #[test]
    fn budget_trip_marks_every_missing_column_inconclusive() {
        let tests = corpus(2);
        let sc = lkmm_models::Sc;
        let tso = lkmm_models::X86Tso;
        let mut multi = MultiBatchChecker::new(
            vec![
                MultiColumn { model: &sc, salt: "b|col:sc".into() },
                MultiColumn { model: &tso, salt: "b|col:tso".into() },
            ],
            VerdictStore::in_memory(),
        )
        .with_budget(Budget::default().with_max_candidates(1));
        let report = multi.check_corpus(&tests, &full_mask(2, tests.len())).unwrap();
        for col in &report.columns {
            assert_eq!(col.inconclusive, tests.len());
            assert_eq!(col.computed, 0);
        }
        assert_eq!(multi.store().len(), 0, "inconclusive is never stored");
    }
}
