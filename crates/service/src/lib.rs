//! Verdict store and batch checking service.
//!
//! Checking a litmus test is expensive — candidate-execution counts grow
//! combinatorially with test size — while corpora (the paper library,
//! generator sweeps, regression suites) are full of repeats and
//! isomorphic variants. This crate makes verdicts *content-addressed*:
//!
//! * [`canon`] — a deterministic canonical form for [`lkmm_litmus::ast::Test`]
//!   (sorted thread order, alpha-renamed locations/registers, normalized
//!   condition) and a 128-bit content hash over it, keyed by model name
//!   and a caller-supplied version salt.
//! * [`store`] — [`store::VerdictStore`], a crash-safe append-only log of
//!   `key → verdict` records with an in-memory index. Recovery tolerates
//!   torn or corrupt tails by truncating to the last valid record. The
//!   [`store::VerdictLog`] trait splits out the lookup/append/flush
//!   surface the checkers need, so they run over any backend.
//! * [`shard`] — [`shard::ShardedStore`], N independent logs partitioned
//!   by key prefix behind the same [`store::VerdictLog`] API: parallel
//!   appends without file contention, per-shard quarantine, and
//!   threshold-triggered in-place compaction.
//! * [`batch`] — [`batch::BatchChecker`], which dedupes a corpus by
//!   canonical key, replays store hits, and schedules only the misses
//!   across the parallel checking pipeline.
//! * [`serve`] — a JSON-lines request/response loop (`herd-rs serve`)
//!   exposing check/batch/stats/flush with per-request observability.
//! * [`hash`] / [`json`] — vendored FNV hashing and a minimal JSON
//!   parser/printer, keeping the workspace dependency-free.
//!
//! Soundness note: the canonical form is only ever a *cache key*. The
//! original test is what gets checked, so an under-aggressive
//! canonicalization costs cache misses, never wrong answers; two tests
//! that reach the same canonical form are isomorphic and share their
//! verdict and counts exactly.

pub mod batch;
pub mod canon;
pub mod hash;
pub mod json;
pub mod multi;
pub mod serve;
pub mod shard;
pub mod store;

pub use batch::{BatchChecker, BatchError, BatchOutcome, BatchReport, Provenance};
pub use multi::{
    ColumnReport, CorpusRun, MultiBatchChecker, MultiBatchReport, MultiColumn, UnitFault,
};
pub use canon::{cache_key, cache_key_of_text, canonical_text, canonicalize, CANON_REVISION};
pub use serve::{serve, serve_with, ServeOptions, ServeSummary};
pub use shard::ShardedStore;
pub use store::{
    CompactReport, MergeReport, RecoveryReport, ScrubReport, ShardStats, StoreError, VerdictLog,
    VerdictStore,
};
