//! Property-style tests for the canonicalization layer, run over the
//! whole built-in paper library as the corpus. Dependency-free: instead
//! of random generation, the "properties" quantify over every library
//! test × a deterministic set of isomorphisms (thread rotations and
//! reversals, location renames, register renames) and semantic mutants
//! (quantifier flips, negated conditions, changed init values).

use lkmm_litmus::ast::{InitVal, Test};
use lkmm_litmus::cond::{Condition, Prop, Quantifier};
use lkmm_litmus::rename::{
    permute_threads, rename_test, thread_locations, thread_registers,
};
use lkmm_service::canon::{cache_key, canonical_text, canonicalize};
use std::collections::BTreeMap;

const MODEL: &str = "lkmm";
const SALT: &str = "props";

fn key(test: &Test) -> u128 {
    cache_key(test, MODEL, SALT)
}

fn library() -> Vec<(&'static str, Test)> {
    lkmm_litmus::library::all().iter().map(|pt| (pt.name, pt.test())).collect()
}

/// Every global location and per-thread register, renamed with an ugly
/// prefix that sorts differently from the original names.
fn scrambled_names(test: &Test) -> Test {
    let mut locs: BTreeMap<String, String> = BTreeMap::new();
    for loc in test.init.keys() {
        locs.insert(loc.clone(), format!("zz_{loc}_q"));
    }
    for thread in &test.threads {
        for loc in thread_locations(thread) {
            locs.entry(loc.clone()).or_insert_with(|| format!("zz_{loc}_q"));
        }
    }
    let regs: Vec<BTreeMap<String, String>> = test
        .threads
        .iter()
        .map(|t| {
            thread_registers(t)
                .into_iter()
                .map(|r| {
                    let to = format!("aa{r}");
                    (r, to)
                })
                .collect()
        })
        .collect();
    rename_test(test, &locs, &regs)
}

fn rotations(n: usize) -> Vec<Vec<usize>> {
    let mut orders = Vec::new();
    for shift in 0..n {
        orders.push((0..n).map(|i| (i + shift) % n).collect());
    }
    orders.push((0..n).rev().collect());
    orders
}

#[test]
fn isomorphic_variants_hash_identically_across_the_library() {
    for (name, test) in library() {
        let original = key(&test);
        let renamed = scrambled_names(&test);
        assert_eq!(
            key(&renamed),
            original,
            "{name}: location/register rename changed the cache key"
        );
        for order in rotations(test.threads.len()) {
            let permuted = permute_threads(&test, &order);
            assert_eq!(
                key(&permuted),
                original,
                "{name}: thread order {order:?} changed the cache key"
            );
            // Rename and permutation composed, in both orders.
            assert_eq!(key(&scrambled_names(&permuted)), original, "{name}: {order:?}∘rename");
            assert_eq!(key(&permute_threads(&renamed, &order)), original, "{name}: rename∘{order:?}");
        }
    }
}

#[test]
fn semantic_mutants_change_the_key() {
    for (name, test) in library() {
        let original = key(&test);

        let mut flipped = test.clone();
        flipped.condition = Condition {
            quantifier: match test.condition.quantifier {
                Quantifier::Exists => Quantifier::Forall,
                _ => Quantifier::Exists,
            },
            prop: test.condition.prop.clone(),
        };
        assert_ne!(key(&flipped), original, "{name}: quantifier flip kept the key");

        let mut negated = test.clone();
        negated.condition = Condition {
            quantifier: test.condition.quantifier,
            prop: Prop::Not(Box::new(test.condition.prop.clone())),
        };
        assert_ne!(key(&negated), original, "{name}: negated condition kept the key");

        if let Some((loc, InitVal::Int(v))) =
            test.init.iter().find_map(|(l, v)| match v {
                InitVal::Int(i) => Some((l.clone(), InitVal::Int(*i))),
                InitVal::Ptr(_) => None,
            })
        {
            let mut reinit = test.clone();
            reinit.init.insert(loc.clone(), InitVal::Int(v + 41));
            assert_ne!(key(&reinit), original, "{name}: init change of `{loc}` kept the key");
        }
    }
}

#[test]
fn different_models_and_salts_never_share_keys() {
    for (name, test) in library() {
        assert_ne!(
            cache_key(&test, "lkmm", SALT),
            cache_key(&test, "sc", SALT),
            "{name}: models share a key"
        );
        assert_ne!(
            cache_key(&test, MODEL, "v1"),
            cache_key(&test, MODEL, "v2"),
            "{name}: salts share a key"
        );
    }
}

#[test]
fn canonicalization_is_idempotent_and_reparseable() {
    for (name, test) in library() {
        let canon = canonicalize(&test);
        let twice = canonicalize(&canon);
        assert_eq!(
            canon.to_litmus_string(),
            twice.to_litmus_string(),
            "{name}: canonicalization is not idempotent"
        );
        let reparsed = lkmm_litmus::parse(&canonical_text(&test))
            .unwrap_or_else(|e| panic!("{name}: canonical text does not reparse: {e}"));
        assert_eq!(key(&reparsed), key(&test), "{name}: reparsed canonical text changed the key");
    }
}

/// The load-bearing soundness property: canonicalization is a semantics-
/// preserving transformation, so checking the canonical form against the
/// real LKMM gives the same verdict *and the same counts* as the
/// original. (The cache only ever checks originals, but this is what
/// justifies sharing one entry between tests with equal canonical forms.)
#[test]
fn canonicalization_preserves_lkmm_verdicts_across_the_library() {
    use lkmm_exec::{check_test, EnumOptions};
    let model = lkmm::Lkmm::new();
    let opts = EnumOptions::default();
    for (name, test) in library() {
        let original = check_test(&model, &test, &opts)
            .unwrap_or_else(|e| panic!("{name}: original failed to enumerate: {e}"));
        let canon = canonicalize(&test);
        let canonical = check_test(&model, &canon, &opts)
            .unwrap_or_else(|e| panic!("{name}: canonical form failed to enumerate: {e}"));
        assert_eq!(original, canonical, "{name}: canonical form changed the LKMM result");
    }
}
