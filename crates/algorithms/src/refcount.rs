//! `Arc`-style refcount family (clone / drop / upgrade).
//!
//! Thread 0 is the *user*: it writes the payload words, then drops its
//! reference with `atomic_fetch_sub_release`. Middle threads clone
//! (`atomic_fetch_add_relaxed` — a relaxed increment is all a clone
//! needs, exactly as in Rust's `Arc`) and then drop both the clone and
//! their original reference. The last thread is the *reaper*: it drops
//! its reference and, when it observed the count at 1 (it freed the
//! object), reads the payload back — the stand-in for the free. The
//! safety invariant is no use-after-free: a reaper that frees must see
//! every payload write, i.e. `d = 1 ∧ payload = 0` is Forbidden. The
//! release on every drop plus the reaper's `smp_rmb` (the final-drop
//! acquire ordering) carry the guarantee through the release chain of
//! RMWs on the counter; the relaxed twin strips both and is Allowed.
//!
//! The `upgrade` variant models `Weak::upgrade`: a `cmpxchg` taking the
//! count from 1 to 2 (the final loop iteration), after which the
//! upgrader's own drop may be the freeing one. The `premature` twin is
//! broken even under SC — the user writes the payload *after* dropping
//! (use-after-drop), which the interleaving machine also catches.
//!
//! All variants are straight-line (the count observations live in the
//! condition), so every program is runnable on the simulators and the
//! klitmus host runner.

use crate::interleave::{Machine, Op};
use crate::{AlgoProgram, FamilyId, FamilyParams};
use lkmm_exec::Verdict;
use std::fmt::Write;

struct Flavor {
    sub: &'static str,
    /// Reaper's acquire ordering before touching the freed object.
    rmb: bool,
}

const SAFE: Flavor = Flavor { sub: "atomic_fetch_sub_release", rmb: true };
const RELAXED: Flavor = Flavor { sub: "atomic_fetch_sub_relaxed", rmb: false };

/// `premature`: the user drops before writing (use-after-drop).
fn source(name: &str, p: &FamilyParams, f: &Flavor, premature: bool) -> String {
    let mut locs = vec![format!("c={}", p.threads)];
    let mut args = vec!["int *c".to_string()];
    for k in 0..p.sections {
        locs.push(format!("p{k}=0"));
        args.push(format!("int *p{k}"));
    }
    let mut s = format!("C {name}\n{{ {}; }}\n", locs.join("; "));
    let writes = |s: &mut String| {
        for k in 0..p.sections {
            let _ = writeln!(s, "    WRITE_ONCE(*p{k}, 1);");
        }
    };
    // Thread 0: the user.
    let _ = writeln!(s, "P0({})\n{{", args.join(", "));
    let _ = writeln!(s, "    int d;");
    if premature {
        let _ = writeln!(s, "    d = {}(1, c);", f.sub);
        writes(&mut s);
    } else {
        writes(&mut s);
        let _ = writeln!(s, "    d = {}(1, c);", f.sub);
    }
    s.push_str("}\n");
    // Middle threads: clone, drop the clone, drop the original.
    for i in 1..p.threads.saturating_sub(1) {
        let _ = writeln!(s, "P{i}({})\n{{", args.join(", "));
        let _ = writeln!(s, "    int a;");
        let _ = writeln!(s, "    int d1;");
        let _ = writeln!(s, "    int d2;");
        let _ = writeln!(s, "    a = atomic_fetch_add_relaxed(1, c);");
        let _ = writeln!(s, "    d1 = {}(1, c);", f.sub);
        let _ = writeln!(s, "    d2 = {}(1, c);", f.sub);
        s.push_str("}\n");
    }
    // Last thread: the reaper.
    if p.threads > 1 {
        let reaper = p.threads - 1;
        let _ = writeln!(s, "P{reaper}({})\n{{", args.join(", "));
        let _ = writeln!(s, "    int d;");
        for k in 0..p.sections {
            let _ = writeln!(s, "    int q{k};");
        }
        let _ = writeln!(s, "    d = {}(1, c);", f.sub);
        if f.rmb {
            let _ = writeln!(s, "    smp_rmb();");
        }
        for k in 0..p.sections {
            let _ = writeln!(s, "    q{k} = READ_ONCE(*p{k});");
        }
        s.push_str("}\n");
        let mut bad: Vec<String> = Vec::new();
        for k in 0..p.sections {
            bad.push(format!("{reaper}:q{k}=0"));
        }
        let _ = write!(s, "exists ({reaper}:d=1 /\\ ({}))", bad.join(" \\/ "));
    } else {
        // One thread: drop of the only reference; nothing can tear.
        let _ = write!(s, "exists (0:d=0)");
    }
    s
}

/// `Weak::upgrade` final iteration: cmpxchg 1 → 2, then a drop that may
/// free. Fixed two-thread shape (user + upgrader).
fn upgrade_source(name: &str, p: &FamilyParams, f: &Flavor, cas: &str) -> String {
    let mut locs = vec!["c=1".to_string()];
    let mut args = vec!["int *c".to_string()];
    for k in 0..p.sections {
        locs.push(format!("p{k}=0"));
        args.push(format!("int *p{k}"));
    }
    let mut s = format!("C {name}\n{{ {}; }}\n", locs.join("; "));
    let _ = writeln!(s, "P0({})\n{{", args.join(", "));
    let _ = writeln!(s, "    int d;");
    for k in 0..p.sections {
        let _ = writeln!(s, "    WRITE_ONCE(*p{k}, 1);");
    }
    let _ = writeln!(s, "    d = {}(1, c);", f.sub);
    s.push_str("}\n");
    let _ = writeln!(s, "P1({})\n{{", args.join(", "));
    let _ = writeln!(s, "    int u;");
    let _ = writeln!(s, "    int d;");
    for k in 0..p.sections {
        let _ = writeln!(s, "    int q{k};");
    }
    let _ = writeln!(s, "    u = {cas}(c, 1, 2);");
    let _ = writeln!(s, "    d = {}(1, c);", f.sub);
    if f.rmb {
        let _ = writeln!(s, "    smp_rmb();");
    }
    for k in 0..p.sections {
        let _ = writeln!(s, "    q{k} = READ_ONCE(*p{k});");
    }
    s.push_str("}\n");
    let mut bad: Vec<String> = Vec::new();
    for k in 0..p.sections {
        bad.push(format!("1:q{k}=0"));
    }
    let _ = write!(s, "exists (1:u=1 /\\ 1:d=1 /\\ ({}))", bad.join(" \\/ "));
    s
}

fn machine(p: &FamilyParams, premature: bool) -> Machine {
    // mem: [count, payload]; user regs [d], middle [a, d1, d2],
    // reaper [d, q].
    let n = p.threads as i64;
    let user = if premature {
        vec![Op::FetchAdd { loc: 0, reg: 0, add: -1 }, Op::Write { loc: 1, val: 1 }]
    } else {
        vec![Op::Write { loc: 1, val: 1 }, Op::FetchAdd { loc: 0, reg: 0, add: -1 }]
    };
    let mut threads = vec![user];
    for _ in 1..p.threads.saturating_sub(1) {
        threads.push(vec![
            Op::FetchAdd { loc: 0, reg: 0, add: 1 },
            Op::FetchAdd { loc: 0, reg: 1, add: -1 },
            Op::FetchAdd { loc: 0, reg: 2, add: -1 },
        ]);
    }
    let mut bad = Vec::new();
    if p.threads > 1 {
        threads.push(vec![
            Op::FetchAdd { loc: 0, reg: 0, add: -1 },
            Op::Read { loc: 1, reg: 1 },
        ]);
        // The reaper freed (saw the count at 1) yet missed the
        // payload write.
        bad.push(vec![(p.threads - 1, 0, 1), (p.threads - 1, 1, 0)]);
    }
    Machine { init: vec![n, 0], threads, bad }
}

pub(crate) fn programs(p: &FamilyParams) -> Vec<AlgoProgram> {
    let t = p.threads;
    let s = p.sections;
    vec![
        AlgoProgram::new(
            FamilyId::Refcount,
            crate::must_parse(&source(&format!("refcount-t{t}-s{s}"), p, &SAFE, false)),
            Verdict::Forbidden,
        )
        .with_machine(machine(p, false)),
        AlgoProgram::new(
            FamilyId::Refcount,
            crate::must_parse(&source(&format!("refcount-relaxed-t{t}-s{s}"), p, &RELAXED, false)),
            if t > 1 { Verdict::Allowed } else { Verdict::Forbidden },
        )
        .with_machine(machine(p, false)),
        AlgoProgram::new(
            FamilyId::Refcount,
            crate::must_parse(&source(&format!("refcount-premature-t{t}-s{s}"), p, &SAFE, true)),
            if t > 1 { Verdict::Allowed } else { Verdict::Forbidden },
        )
        .with_machine(machine(p, true)),
        AlgoProgram::new(
            FamilyId::Refcount,
            crate::must_parse(&upgrade_source(
                &format!("refcount-upgrade-s{s}"),
                p,
                &SAFE,
                "cmpxchg",
            )),
            Verdict::Forbidden,
        ),
        AlgoProgram::new(
            FamilyId::Refcount,
            crate::must_parse(&upgrade_source(
                &format!("refcount-upgrade-relaxed-s{s}"),
                p,
                &RELAXED,
                "cmpxchg_relaxed",
            )),
            Verdict::Allowed,
        ),
    ]
}
