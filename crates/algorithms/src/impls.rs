//! Real threaded reference implementations of the interleaved
//! algorithms, in the `rcu::urcu` mould: plain `std` atomics, no
//! dependencies, each carrying the exact orderings its litmus family's
//! safe variant models. The stress tests in this module run them on
//! real hardware threads; the klitmus host runner exercises the litmus
//! twins; `interleave::explore` covers every schedule of the abstract
//! step machine. Three operational layers, one algorithm.

use std::sync::atomic::{fence, AtomicI64, AtomicUsize, Ordering};

/// Ticket spinlock: `fetch_add` draw (relaxed — the draw itself needs
/// no ordering), acquire spin on now-serving, release publish of the
/// successor ticket.
#[derive(Debug, Default)]
pub struct TicketLock {
    next: AtomicUsize,
    serving: AtomicUsize,
}

impl TicketLock {
    pub fn new() -> TicketLock {
        TicketLock::default()
    }

    /// Acquire; returns the ticket to pass to [`TicketLock::unlock`].
    pub fn lock(&self) -> usize {
        let ticket = self.next.fetch_add(1, Ordering::Relaxed);
        while self.serving.load(Ordering::Acquire) != ticket {
            std::hint::spin_loop();
        }
        ticket
    }

    pub fn unlock(&self, ticket: usize) {
        self.serving.store(ticket + 1, Ordering::Release);
    }
}

/// Seqlock over a small payload array: odd/even counter, release
/// publication, acquire snapshots with retry.
#[derive(Debug)]
pub struct SeqLock<const N: usize> {
    seq: AtomicUsize,
    data: [AtomicI64; N],
}

impl<const N: usize> Default for SeqLock<N> {
    fn default() -> Self {
        SeqLock { seq: AtomicUsize::new(0), data: [(); N].map(|_| AtomicI64::new(0)) }
    }
}

impl<const N: usize> SeqLock<N> {
    pub fn new() -> Self {
        Self::default()
    }

    /// Single-writer update: bump odd, write every word, bump even.
    pub fn write(&self, value: i64) {
        let s = self.seq.load(Ordering::Relaxed);
        self.seq.store(s + 1, Ordering::Relaxed);
        fence(Ordering::Release);
        for w in &self.data {
            w.store(value, Ordering::Relaxed);
        }
        self.seq.store(s + 2, Ordering::Release);
    }

    /// One snapshot attempt: `Some(words)` when accepted (counter even
    /// and unchanged across the reads), `None` when the reader must
    /// retry.
    pub fn try_read(&self) -> Option<[i64; N]> {
        let s1 = self.seq.load(Ordering::Acquire);
        if s1 & 1 == 1 {
            return None;
        }
        let mut out = [0i64; N];
        for (o, w) in out.iter_mut().zip(&self.data) {
            *o = w.load(Ordering::Relaxed);
        }
        fence(Ordering::Acquire);
        let s2 = self.seq.load(Ordering::Relaxed);
        (s1 == s2).then_some(out)
    }

    /// Retry until a snapshot is accepted.
    pub fn read(&self) -> [i64; N] {
        loop {
            if let Some(v) = self.try_read() {
                return v;
            }
            std::hint::spin_loop();
        }
    }
}

/// Sentinel the refcount stress test "frees" the payload with; a reader
/// observing it after a successful clone/upgrade has hit use-after-free.
pub const POISON: i64 = -0xdead;

/// `Arc`-style strong count with a payload word standing in for the
/// managed allocation: relaxed clone, release drop, acquire fence on
/// the final drop before the free (Rust `Arc`'s exact protocol), and a
/// `Weak::upgrade`-style conditional increment.
#[derive(Debug)]
pub struct ArcCount {
    count: AtomicUsize,
    payload: AtomicI64,
}

impl ArcCount {
    /// One owner, payload initialised live.
    pub fn new(owners: usize, payload: i64) -> ArcCount {
        ArcCount { count: AtomicUsize::new(owners), payload: AtomicI64::new(payload) }
    }

    pub fn clone_ref(&self) {
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// `Weak::upgrade`: CAS-increment unless the count already hit 0.
    pub fn upgrade(&self) -> bool {
        let mut cur = self.count.load(Ordering::Relaxed);
        loop {
            if cur == 0 {
                return false;
            }
            match self.count.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::Acquire,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Read the payload through a held reference.
    pub fn load_payload(&self) -> i64 {
        self.payload.load(Ordering::Relaxed)
    }

    /// Drop one reference; the final dropper (and only it) observes the
    /// whole object and "frees" it by poisoning the payload. Returns
    /// the payload seen at free time, `None` for non-final drops.
    pub fn drop_ref(&self) -> Option<i64> {
        if self.count.fetch_sub(1, Ordering::Release) != 1 {
            return None;
        }
        fence(Ordering::Acquire);
        let seen = self.payload.load(Ordering::Relaxed);
        self.payload.store(POISON, Ordering::Relaxed);
        Some(seen)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;
    use std::thread;

    const ITERS: usize = if cfg!(miri) { 50 } else { 4_000 };

    #[test]
    fn ticket_lock_is_mutually_exclusive_and_fifo() {
        let lock = Arc::new(TicketLock::new());
        let in_cs = Arc::new(AtomicUsize::new(0));
        let total = Arc::new(AtomicUsize::new(0));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let (lock, in_cs, total) = (lock.clone(), in_cs.clone(), total.clone());
                thread::spawn(move || {
                    for _ in 0..ITERS / 4 {
                        let t = lock.lock();
                        assert_eq!(in_cs.fetch_add(1, Ordering::Relaxed), 0, "two in CS");
                        total.fetch_add(1, Ordering::Relaxed);
                        in_cs.fetch_sub(1, Ordering::Relaxed);
                        lock.unlock(t);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(total.load(Ordering::Relaxed), (ITERS / 4) * 4);
    }

    #[test]
    fn seqlock_readers_never_see_torn_payload() {
        let lock = Arc::new(SeqLock::<3>::new());
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let (lock, stop) = (lock.clone(), stop.clone());
                thread::spawn(move || {
                    let mut seen = 0usize;
                    // At least one read even if the writer already
                    // finished; then poll until told to stop.
                    loop {
                        let snap = lock.read();
                        assert!(
                            snap.iter().all(|&w| w == snap[0]),
                            "torn accepted read: {snap:?}"
                        );
                        seen += 1;
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                    }
                    seen
                })
            })
            .collect();
        for v in 1..=ITERS as i64 {
            lock.write(v);
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            assert!(r.join().unwrap() > 0);
        }
        assert_eq!(lock.read(), [ITERS as i64; 3]);
    }

    #[test]
    fn final_drop_sees_every_use_and_upgrades_never_resurrect() {
        for _ in 0..if cfg!(miri) { 5 } else { 500 } {
            // One strong owner (the user); the second thread holds only
            // a weak reference and must upgrade to touch the payload.
            let rc = Arc::new(ArcCount::new(1, 0));
            let user = {
                let rc = rc.clone();
                thread::spawn(move || {
                    rc.payload.store(42, Ordering::Relaxed);
                    rc.drop_ref()
                })
            };
            let upgrader = {
                let rc = rc.clone();
                thread::spawn(move || {
                    if !rc.upgrade() {
                        return None;
                    }
                    let seen = rc.load_payload();
                    assert_ne!(seen, POISON, "upgrade handed out a freed object");
                    rc.drop_ref().map(|p| (seen, p))
                })
            };
            let a = user.join().unwrap();
            let b = upgrader.join().unwrap();
            // Exactly one dropper frees.
            assert_eq!(a.is_some() as usize + b.is_some() as usize, 1);
            if let Some(p) = a {
                assert_eq!(p, 42, "user freed without seeing its own write");
            }
            if let Some((_, p)) = b {
                assert_eq!(p, 42, "final drop missed the user's payload write");
            }
        }
    }
}
