//! Hierarchical (Tree-RCU-style) grace-period family.
//!
//! `retries` is the *level* count: a chain of updaters, each running
//! its own grace period, propagates a write up the hierarchy — updater
//! 0 retires `x0` and publishes `x1` after a full `synchronize_rcu`;
//! updater `m` observes `xm`, waits out another grace period, and
//! publishes `x(m+1)`, exactly the leaf-to-root funnel Tree-RCU
//! performs (Liang et al. verify this propagation structure). Readers
//! hold one read-side critical section and read the root and the leaf:
//! seeing the root published while missing the leaf write means some
//! reader critical section spanned a whole grace-period chain —
//! Forbidden by the RCU guarantee, at every level count.
//!
//! The weakened twin (`rcu-tree-mb`) demotes the first
//! `synchronize_rcu` to `smp_mb()`: a full fence orders the updater's
//! writes but no longer excludes a concurrent read-side critical
//! section, and the outcome is Allowed — the grace period itself is
//! load-bearing, not its barrier strength.
//!
//! The `impl` twin pushes the safe program through
//! [`lkmm_rcu::impl_verify::expand_rcu`] (the paper's Figure 15
//! userspace implementation, wait loops as final `__assume` iterations)
//! and must keep the same verdict — the Theorem 2 conformance check,
//! here as a standing family member.

use crate::{AlgoProgram, FamilyId, FamilyParams};
use lkmm_exec::Verdict;
use lkmm_rcu::impl_verify::{expand_rcu, ExpandOptions};
use std::fmt::Write;

/// `demote_gps`: replace every updater's `synchronize_rcu` with
/// `smp_mb()` (the weakened twin). A full fence keeps the updater-side
/// writes ordered — and cumulativity even carries them down the chain —
/// but the reads inside a critical section are unordered among
/// themselves, so only the CS-vs-GP exclusion forbids the outcome;
/// demoting any single grace period at level ≥ 2 would still be saved
/// by the next level's strong fence.
fn source(name: &str, p: &FamilyParams, demote_gps: bool) -> String {
    let levels = p.retries;
    let mut locs = Vec::new();
    let mut args = Vec::new();
    for l in 0..=levels {
        locs.push(format!("x{l}=0"));
        args.push(format!("int *x{l}"));
    }
    let mut s = format!("C {name}\n{{ {}; }}\n", locs.join("; "));
    // Updater chain: thread m publishes level m+1.
    for m in 0..levels {
        let _ = writeln!(s, "P{m}({})\n{{", args.join(", "));
        if m == 0 {
            let _ = writeln!(s, "    WRITE_ONCE(*x0, 1);");
        } else {
            let _ = writeln!(s, "    int v;");
            let _ = writeln!(s, "    v = READ_ONCE(*x{m});");
        }
        if demote_gps {
            let _ = writeln!(s, "    smp_mb();");
        } else {
            let _ = writeln!(s, "    synchronize_rcu();");
        }
        let _ = writeln!(s, "    WRITE_ONCE(*x{}, 1);", m + 1);
        s.push_str("}\n");
    }
    // Readers.
    for j in 0..p.threads {
        let _ = writeln!(s, "P{}({})\n{{", levels + j, args.join(", "));
        let _ = writeln!(s, "    int a;");
        let _ = writeln!(s, "    int b;");
        let _ = writeln!(s, "    rcu_read_lock();");
        let _ = writeln!(s, "    a = READ_ONCE(*x{levels});");
        let _ = writeln!(s, "    b = READ_ONCE(*x0);");
        let _ = writeln!(s, "    rcu_read_unlock();");
        s.push_str("}\n");
    }
    // The chain actually propagated (each middle updater saw its
    // level), and some reader saw the root but not the leaf.
    let mut pins = Vec::new();
    for m in 1..levels {
        pins.push(format!("{m}:v=1"));
    }
    let mut bad = Vec::new();
    for j in 0..p.threads {
        let r = levels + j;
        bad.push(format!("({r}:a=1 /\\ {r}:b=0)"));
    }
    let bad = bad.join(" \\/ ");
    if pins.is_empty() {
        let _ = write!(s, "exists ({bad})");
    } else {
        let _ = write!(s, "exists ({} /\\ ({bad}))", pins.join(" /\\ "));
    }
    s
}

pub(crate) fn programs(p: &FamilyParams) -> Vec<AlgoProgram> {
    let t = p.threads;
    let l = p.retries;
    let safe = crate::must_parse(&source(&format!("rcu-tree-t{t}-l{l}"), p, false));
    let mut out = vec![
        AlgoProgram::new(FamilyId::RcuTree, safe.clone(), Verdict::Forbidden),
        AlgoProgram::new(
            FamilyId::RcuTree,
            crate::must_parse(&source(&format!("rcu-tree-mb-t{t}-l{l}"), p, true)),
            Verdict::Allowed,
        ),
    ];
    // Figure-15 implementation twin: same verdict as the abstract test
    // (Theorem 2). Only at one grace-period level — each expanded GP
    // adds a two-phase wait loop per reader, and two levels already
    // push the candidate space past the enumerator's branch bound; the
    // hierarchical-depth story belongs to the abstract chain above.
    if l == 1 {
        if let Ok(mut expanded) = expand_rcu(&safe, &ExpandOptions::default()) {
            expanded.name = format!("rcu-tree-impl-t{t}-l{l}");
            out.push(AlgoProgram::new(FamilyId::RcuTree, expanded, Verdict::Forbidden));
        }
    }
    out
}
