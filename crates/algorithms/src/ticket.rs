//! Ticket spinlock family.
//!
//! Each contender draws a ticket with `atomic_fetch_add`, spins until
//! `now_serving` equals its ticket, runs the critical section, and
//! unlocks by publishing `ticket + 1` with `smp_store_release`. The
//! spin is modelled by its *final* iteration: the successful gate read
//! plus an `__assume` pinning the observed value (the `expand_rcu`
//! technique), or — in the runnable twins — the same read with the
//! acceptance folded into the `exists` condition so the operational
//! layers can execute the straight-line program.
//!
//! The safety invariant is mutual exclusion: with the acquisition order
//! pinned (thread 0 first), thread 0 writes its marker into every
//! critical-section word and reads it back; observing any other
//! thread's marker means that thread's critical section intruded.
//! The safe variant must be Forbidden; stripping the acquire gate and
//! the release unlock (`ticket-relaxed`) leaves a load-buffering shape
//! the LKMM allows; dropping the wait entirely (`ticket-nowait`) is
//! broken even under SC, which the interleaving machine confirms.

use crate::interleave::{Machine, Op};
use crate::{AlgoProgram, FamilyId, FamilyParams};
use lkmm_exec::Verdict;
use std::fmt::Write;

/// Orderings of one variant's lock operations.
struct Flavor {
    fetch_add: &'static str,
    /// Gate read: acquire or plain.
    acquire_gate: bool,
    /// Unlock: release store or plain write.
    release_unlock: bool,
}

const SAFE: Flavor = Flavor { fetch_add: "atomic_fetch_add", acquire_gate: true, release_unlock: true };
const RELAXED: Flavor =
    Flavor { fetch_add: "atomic_fetch_add_relaxed", acquire_gate: false, release_unlock: false };

/// Body of contender `i`. `gate` controls whether the spin read is
/// emitted at all; `assume` chooses `__assume` (axiomatic form) over
/// condition-filtering (runnable form).
fn body(i: usize, p: &FamilyParams, f: &Flavor, gate: bool, assume: bool) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "    int t;");
    if gate {
        let _ = writeln!(s, "    int s;");
    }
    for k in 0..p.sections {
        let _ = writeln!(s, "    int r{k};");
    }
    let _ = writeln!(s, "    t = {}(1, nt);", f.fetch_add);
    if gate {
        let gate_read =
            if f.acquire_gate { "smp_load_acquire(*ns)" } else { "READ_ONCE(*ns)" };
        let _ = writeln!(s, "    s = {gate_read};");
    }
    if assume {
        let _ = writeln!(s, "    __assume(t == {i});");
        if gate {
            let _ = writeln!(s, "    __assume(s == {i});");
        }
    }
    for k in 0..p.sections {
        let _ = writeln!(s, "    WRITE_ONCE(*x{k}, {});", i + 1);
        let _ = writeln!(s, "    r{k} = READ_ONCE(*x{k});");
    }
    if f.release_unlock {
        let _ = writeln!(s, "    smp_store_release(ns, {});", i + 1);
    } else {
        let _ = writeln!(s, "    WRITE_ONCE(*ns, {});", i + 1);
    }
    s
}

/// The mutual-exclusion violation: thread 0 (pinned first holder) read
/// some other contender's marker. In the runnable forms the pinning
/// conjuncts (`t`/`s` observations of every thread) join the condition.
fn condition(p: &FamilyParams, gate: bool, assume: bool) -> String {
    let mut pins = Vec::new();
    if !assume {
        for i in 0..p.threads {
            pins.push(format!("{i}:t={i}"));
            if gate {
                pins.push(format!("{i}:s={i}"));
            }
        }
    }
    let mut bad = Vec::new();
    for j in 1..p.threads {
        for k in 0..p.sections {
            bad.push(format!("0:r{k}={}", j + 1));
        }
    }
    if bad.is_empty() {
        // Single-thread degenerate-but-valid size: ask for a marker no
        // thread ever writes; trivially (and correctly) forbidden.
        bad.push("0:r0=2".to_string());
    }
    let bad = bad.join(" \\/ ");
    if pins.is_empty() {
        format!("exists ({bad})")
    } else {
        format!("exists ({} /\\ ({bad}))", pins.join(" /\\ "))
    }
}

fn source(name: &str, p: &FamilyParams, f: &Flavor, gate: bool, assume: bool) -> String {
    let mut locs = vec!["nt=0".to_string(), "ns=0".to_string()];
    let mut args = vec!["int *nt".to_string(), "int *ns".to_string()];
    for k in 0..p.sections {
        locs.push(format!("x{k}=0"));
        args.push(format!("int *x{k}"));
    }
    let mut s = format!("C {name}\n{{ {}; }}\n", locs.join("; "));
    for i in 0..p.threads {
        let _ = writeln!(s, "P{i}({})\n{{", args.join(", "));
        s.push_str(&body(i, p, f, gate, assume));
        s.push_str("}\n");
    }
    s.push_str(&condition(p, gate, assume));
    s
}

/// The SC step machine: tickets via fetch-add, guarded wait on serving,
/// a critical-section occupancy counter observed at entry.
fn machine(p: &FamilyParams, wait: bool) -> Machine {
    // mem: [next, serving, cs]; regs: [ticket, entry, scratch]
    let mut thread = vec![Op::FetchAdd { loc: 0, reg: 0, add: 1 }];
    if wait {
        thread.push(Op::WaitEqReg { loc: 1, reg: 0 });
    }
    thread.push(Op::FetchAdd { loc: 2, reg: 1, add: 1 });
    thread.push(Op::FetchAdd { loc: 2, reg: 2, add: -1 });
    thread.push(Op::WriteReg { loc: 1, reg: 0, add: 1 });
    let mut bad = Vec::new();
    for t in 0..p.threads {
        for v in 1..p.threads as i64 {
            bad.push(vec![(t, 1, v)]);
        }
    }
    Machine { init: vec![0, 0, 0], threads: vec![thread; p.threads], bad }
}

pub(crate) fn programs(p: &FamilyParams) -> Vec<AlgoProgram> {
    let t = p.threads;
    let s = p.sections;
    // Fault site: a "broken fence" mutant — when armed, the safe
    // variant is silently generated with the relaxed orderings while
    // still claiming Forbidden, so the family-safety oracle must catch
    // and shrink it.
    let safe_flavor =
        if lkmm_core::faultpoint::should_fail("algo.weaken") { &RELAXED } else { &SAFE };
    vec![
        AlgoProgram::new(
            FamilyId::Ticket,
            crate::must_parse(&source(
                &format!("ticket-t{t}-s{s}"),
                p,
                safe_flavor,
                true,
                true,
            )),
            Verdict::Forbidden,
        )
        .with_machine(machine(p, true)),
        AlgoProgram::new(
            FamilyId::Ticket,
            crate::must_parse(&source(&format!("ticket-run-t{t}-s{s}"), p, safe_flavor, true, false)),
            Verdict::Forbidden,
        )
        .with_machine(machine(p, true)),
        AlgoProgram::new(
            FamilyId::Ticket,
            crate::must_parse(&source(&format!("ticket-relaxed-t{t}-s{s}"), p, &RELAXED, true, true)),
            Verdict::Allowed,
        )
        .with_machine(machine(p, true)),
        AlgoProgram::new(
            FamilyId::Ticket,
            crate::must_parse(&source(
                &format!("ticket-relaxed-run-t{t}-s{s}"),
                p,
                &RELAXED,
                true,
                false,
            )),
            Verdict::Allowed,
        )
        .with_machine(machine(p, true)),
        AlgoProgram::new(
            FamilyId::Ticket,
            crate::must_parse(&source(&format!("ticket-nowait-t{t}-s{s}"), p, &SAFE, false, true)),
            Verdict::Allowed,
        )
        .with_machine(machine(p, false)),
    ]
}
