//! Seqlock family.
//!
//! The writer runs `retries` update rounds: bump the sequence counter
//! to odd, `smp_wmb`, write every payload word, `smp_wmb`, bump back to
//! even. Readers snapshot the counter, read the payload, re-read the
//! counter, and *accept* only if both snapshots are equal and even.
//!
//! The retry loop is modelled two ways. The `__assume` form
//! (`seqlock-retry-*`) carries `retries - 1` discarded snapshot
//! attempts followed by the final accepted one, whose acceptance test
//! (`s1 == s2 ∧ s1 even`) is an `__assume` — the `expand_rcu`
//! technique. The straight-line form folds acceptance into the
//! `exists` condition (the reader accepted at sequence 0), so the
//! simulators and the klitmus host runner can execute it.
//!
//! Safety is no-torn-reads: an accepting reader must never observe
//! mid-round payload (`r0 = 1` while accepted at 0, plus a stale last
//! word when there are ≥ 2 payload words). Forbidden with the
//! `smp_wmb`/`smp_rmb` pairs; Allowed with them stripped
//! (`seqlock-relaxed`). The `nocheck` twin drops the acceptance test
//! altogether — torn even under SC, which the interleaving machine
//! confirms.

use crate::interleave::{Machine, Op};
use crate::{AlgoProgram, FamilyId, FamilyParams};
use lkmm_exec::Verdict;
use std::fmt::Write;

struct Flavor {
    wmb: bool,
    rmb: bool,
}

const SAFE: Flavor = Flavor { wmb: true, rmb: true };
const RELAXED: Flavor = Flavor { wmb: false, rmb: false };

/// Writer body: `rounds` odd/even rounds over `words` payload words.
fn writer(rounds: usize, words: usize, f: &Flavor) -> String {
    let mut s = String::new();
    for m in 0..rounds {
        let _ = writeln!(s, "    WRITE_ONCE(*seq, {});", 2 * m + 1);
        if f.wmb {
            let _ = writeln!(s, "    smp_wmb();");
        }
        for k in 0..words {
            let _ = writeln!(s, "    WRITE_ONCE(*d{k}, {});", m + 1);
        }
        if f.wmb {
            let _ = writeln!(s, "    smp_wmb();");
        }
        let _ = writeln!(s, "    WRITE_ONCE(*seq, {});", 2 * m + 2);
    }
    s
}

/// One reader snapshot attempt with register suffix `sfx`.
fn attempt(words: usize, f: &Flavor, sfx: &str) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "    s1{sfx} = READ_ONCE(*seq);");
    if f.rmb {
        let _ = writeln!(s, "    smp_rmb();");
    }
    for k in 0..words {
        let _ = writeln!(s, "    r{k}{sfx} = READ_ONCE(*d{k});");
    }
    if f.rmb {
        let _ = writeln!(s, "    smp_rmb();");
    }
    let _ = writeln!(s, "    s2{sfx} = READ_ONCE(*seq);");
    s
}

fn attempt_decls(words: usize, sfx: &str) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "    int s1{sfx};");
    let _ = writeln!(s, "    int s2{sfx};");
    for k in 0..words {
        let _ = writeln!(s, "    int r{k}{sfx};");
    }
    s
}

/// `assume`: model the retry loop (discarded attempts + assumed-accepted
/// final attempt); otherwise emit a single attempt whose acceptance the
/// condition pins at sequence 0.
fn source(name: &str, p: &FamilyParams, words: usize, f: &Flavor, assume: bool, check: bool) -> String {
    let mut locs = vec!["seq=0".to_string()];
    let mut args = vec!["int *seq".to_string()];
    for k in 0..words {
        locs.push(format!("d{k}=0"));
        args.push(format!("int *d{k}"));
    }
    let mut s = format!("C {name}\n{{ {}; }}\n", locs.join("; "));
    let _ = writeln!(s, "P0({})\n{{", args.join(", "));
    s.push_str(&writer(p.retries, words, f));
    s.push_str("}\n");
    for j in 1..p.threads {
        let _ = writeln!(s, "P{j}({})\n{{", args.join(", "));
        if assume {
            for a in 0..p.retries.saturating_sub(1) {
                s.push_str(&attempt_decls(words, &format!("a{a}")));
            }
        }
        s.push_str(&attempt_decls(words, ""));
        if assume {
            for a in 0..p.retries.saturating_sub(1) {
                s.push_str(&attempt(words, f, &format!("a{a}")));
            }
        }
        s.push_str(&attempt(words, f, ""));
        if assume {
            let _ = writeln!(s, "    __assume(s1 == s2);");
            let _ = writeln!(s, "    __assume((s1 & 1) == 0);");
        }
        s.push_str("}\n");
    }
    let mut bad = Vec::new();
    for j in 1..p.threads {
        let mut conj = Vec::new();
        if check {
            conj.push(format!("{j}:s1=0"));
            if !assume {
                conj.push(format!("{j}:s2=0"));
            }
        }
        conj.push(format!("{j}:r0=1"));
        if words >= 2 {
            conj.push(format!("{j}:r{}=0", words - 1));
        }
        bad.push(format!("({})", conj.join(" /\\ ")));
    }
    if bad.is_empty() {
        // Writer-only size (threads = 1): a final odd counter would
        // mean a round never closed; correctly Forbidden.
        let _ = write!(s, "exists (seq=1)");
        return s;
    }
    let _ = write!(s, "exists ({})", bad.join(" \\/ "));
    s
}

fn machine(p: &FamilyParams, words: usize, check: bool) -> Machine {
    // mem: [seq, d0..]; reader regs: [s1, r0.., s2]
    let mut writer = Vec::new();
    for m in 0..p.retries {
        writer.push(Op::Write { loc: 0, val: 2 * m as i64 + 1 });
        for k in 0..words {
            writer.push(Op::Write { loc: k + 1, val: m as i64 + 1 });
        }
        writer.push(Op::Write { loc: 0, val: 2 * m as i64 + 2 });
    }
    let mut reader = vec![Op::Read { loc: 0, reg: 0 }];
    for k in 0..words {
        reader.push(Op::Read { loc: k + 1, reg: k + 1 });
    }
    reader.push(Op::Read { loc: 0, reg: words + 1 });
    let mut threads = vec![writer];
    let mut bad = Vec::new();
    for j in 1..p.threads {
        threads.push(reader.clone());
        let mut conj = Vec::new();
        if check {
            conj.push((j, 0, 0));
            conj.push((j, words + 1, 0));
        }
        conj.push((j, 1, 1));
        if words >= 2 {
            conj.push((j, words, 0));
        }
        bad.push(conj);
    }
    Machine { init: vec![0; words + 1], threads, bad }
}

pub(crate) fn programs(p: &FamilyParams) -> Vec<AlgoProgram> {
    let t = p.threads;
    let s = p.sections;
    let r = p.retries;
    // The nocheck twin needs ≥ 2 payload words for an SC-visible torn
    // read (with one word there is nothing to tear between).
    let nocheck_words = s.max(2);
    vec![
        AlgoProgram::new(
            FamilyId::Seqlock,
            crate::must_parse(&source(&format!("seqlock-t{t}-s{s}-r{r}"), p, s, &SAFE, false, true)),
            Verdict::Forbidden,
        )
        .with_machine(machine(p, s, true)),
        AlgoProgram::new(
            FamilyId::Seqlock,
            crate::must_parse(&source(
                &format!("seqlock-retry-t{t}-s{s}-r{r}"),
                p,
                s,
                &SAFE,
                true,
                true,
            )),
            Verdict::Forbidden,
        ),
        AlgoProgram::new(
            FamilyId::Seqlock,
            crate::must_parse(&source(
                &format!("seqlock-relaxed-t{t}-s{s}-r{r}"),
                p,
                s,
                &RELAXED,
                false,
                true,
            )),
            if t > 1 { Verdict::Allowed } else { Verdict::Forbidden },
        )
        .with_machine(machine(p, s, true)),
        AlgoProgram::new(
            FamilyId::Seqlock,
            crate::must_parse(&source(
                &format!("seqlock-nocheck-t{t}-s{s}-r{r}"),
                p,
                nocheck_words,
                &SAFE,
                false,
                false,
            )),
            if t > 1 { Verdict::Allowed } else { Verdict::Forbidden },
        )
        .with_machine(machine(p, nocheck_words, false)),
    ]
}
