//! Real-algorithm verification tier: parameterised litmus-program
//! families for the concurrency algorithms the paper's neighbours
//! verify — hierarchical RCU grace periods (Tree-RCU, Liang et al.),
//! an `Arc`-style refcount (Jacobs & Fasse), ticket and CLH spinlocks,
//! a seqlock, and the Chase-Lev deque steal/take race.
//!
//! Each [`FamilyId`] expands, at a configurable size
//! ([`FamilyParams`]: threads, critical sections, retry depth), into a
//! small set of [`AlgoProgram`]s:
//!
//! * a **safe** variant carrying the orderings the real algorithm
//!   relies on, whose safety-violation condition the LKMM must judge
//!   [`Verdict::Forbidden`];
//! * a **weakened twin** with a fence or acquire/release annotation
//!   stripped, whose identical condition becomes
//!   [`Verdict::Allowed`] — the regression the tier exists to catch;
//! * where a loop must be modelled, an `__assume`-based form (the
//!   final spin/retry iteration, exactly the
//!   [`lkmm_rcu::impl_verify::expand_rcu`] technique) plus a
//!   straight-line *runnable* form whose acceptance test lives in the
//!   `exists` condition instead, so the operational layers (`sim`,
//!   `klitmus`) can execute it.
//!
//! Programs whose algorithm also has a natural sequentially-consistent
//! step-machine model carry an [`interleave::Machine`]: a loom-style
//! exhaustive interleaving explorer ([`interleave::explore`]) decides
//! whether the bad state is reachable under SC, which the conformance
//! layer cross-checks against the axiomatic SC verdict. Real threaded
//! reference implementations (extending the `rcu::urcu` pattern) live
//! in [`impls`].

pub mod impls;
pub mod interleave;

mod clh;
mod deque;
mod refcount;
mod rcu_tree;
mod seqlock;
mod ticket;

use lkmm_exec::{ConsistencyModel, ExecFacts, Execution, Verdict};
use lkmm_generator::GenError;
use lkmm_litmus::ast::{Stmt, Test};

/// Lamport sequential consistency *with atomic RMWs*: `acyclic(po ∪
/// com)` plus the LKMM's `empty(rmw ∩ (fre ; coe))` atomicity axiom.
///
/// This is exactly the semantics the [`interleave`] step machines
/// implement: a machine `Cas` step reads and writes in one indivisible
/// step, so two CASes can never both claim the same old value. The
/// interleave⇔axiomatic cross-check compares [`interleave::explore`]'s
/// `bad_reachable` against this model's verdict. It coincides with
/// `lkmm_models::Sc` but lives here so the algorithms crate (and the
/// cross-check contract) stays self-contained.
#[derive(Clone, Copy, Debug, Default)]
pub struct ScAtomic;

impl ConsistencyModel for ScAtomic {
    fn name(&self) -> &str {
        "SC+atomic"
    }

    fn allows(&self, x: &Execution) -> bool {
        self.allows_with(x, &ExecFacts::new(x))
    }

    fn allows_with(&self, x: &Execution, facts: &ExecFacts<'_>) -> bool {
        facts.atomicity_ok() && x.po.union(facts.com()).is_acyclic()
    }
}

/// One algorithm family.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FamilyId {
    /// Hierarchical (Tree-RCU-style) grace-period propagation, plus the
    /// Figure-15 implementation expansion via `expand_rcu`.
    RcuTree,
    /// `Arc`-style refcount: clone/drop/upgrade with the final-drop
    /// acquire ordering.
    Refcount,
    /// Ticket spinlock: `fetch_add` ticket draw, acquire spin on
    /// now-serving, release unlock.
    Ticket,
    /// CLH queue lock: `xchg` on the tail pointer, spin on the
    /// predecessor's node.
    Clh,
    /// Seqlock: odd/even sequence counter, reader retry modelled by its
    /// final iteration via `__assume`.
    Seqlock,
    /// Chase-Lev work-stealing deque: item publication and the
    /// steal/take `cmpxchg` arbitration on `top`.
    Deque,
}

impl FamilyId {
    /// Every family, in the deterministic report/CLI order.
    pub const ALL: [FamilyId; 6] = [
        FamilyId::RcuTree,
        FamilyId::Refcount,
        FamilyId::Ticket,
        FamilyId::Clh,
        FamilyId::Seqlock,
        FamilyId::Deque,
    ];

    /// Stable CLI/report name.
    pub fn name(self) -> &'static str {
        match self {
            FamilyId::RcuTree => "rcu-tree",
            FamilyId::Refcount => "refcount",
            FamilyId::Ticket => "ticket",
            FamilyId::Clh => "clh",
            FamilyId::Seqlock => "seqlock",
            FamilyId::Deque => "deque",
        }
    }

    /// Parse a CLI family name; `None` for unknown names (callers turn
    /// this into a usage error).
    pub fn parse_name(s: &str) -> Option<FamilyId> {
        FamilyId::ALL.iter().copied().find(|f| f.name() == s)
    }

    /// The per-family safety invariant the conformance oracle enforces.
    pub fn invariant(self) -> &'static str {
        match self {
            FamilyId::RcuTree => "grace-period ordering",
            FamilyId::Refcount => "no use-after-free",
            FamilyId::Ticket => "mutual exclusion",
            FamilyId::Clh => "mutual exclusion",
            FamilyId::Seqlock => "no torn reads",
            FamilyId::Deque => "no lost or duplicated items",
        }
    }

    /// One-line description for `--list-algorithms`.
    pub fn description(self) -> &'static str {
        match self {
            FamilyId::RcuTree => {
                "hierarchical grace-period chains (Tree-RCU) + expand_rcu implementation twin"
            }
            FamilyId::Refcount => "Arc-style refcount: clone/drop/upgrade, final-drop acquire",
            FamilyId::Ticket => "ticket spinlock: fetch_add draw, acquire spin, release unlock",
            FamilyId::Clh => "CLH queue lock: xchg tail, spin on predecessor node",
            FamilyId::Seqlock => "seqlock: odd/even counter, retry loop as final __assume iteration",
            FamilyId::Deque => "Chase-Lev deque: publication and steal/take CAS arbitration",
        }
    }
}

/// Size knobs of a family expansion. All three must be at least 1;
/// [`FamilyParams::validate`] rejects degenerate sizes with a typed
/// [`GenError::Degenerate`] instead of generating empty programs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct FamilyParams {
    /// Total thread count (contenders, readers + writer, droppers…).
    pub threads: usize,
    /// Critical-section / payload words per thread.
    pub sections: usize,
    /// Retry depth: seqlock reader attempts, RCU grace-period levels.
    pub retries: usize,
}

impl Default for FamilyParams {
    fn default() -> Self {
        FamilyParams { threads: 2, sections: 1, retries: 1 }
    }
}

impl FamilyParams {
    /// Reject degenerate sizes.
    pub fn validate(&self) -> Result<(), GenError> {
        if self.threads == 0 {
            return Err(GenError::Degenerate("threads must be at least 1"));
        }
        if self.sections == 0 {
            return Err(GenError::Degenerate("sections must be at least 1"));
        }
        if self.retries == 0 {
            return Err(GenError::Degenerate("retry depth must be at least 1"));
        }
        Ok(())
    }
}

/// One generated program of a family: a litmus test plus the metadata
/// the conformance oracles need.
#[derive(Clone, Debug)]
pub struct AlgoProgram {
    pub family: FamilyId,
    pub test: Test,
    /// The LKMM verdict the family-safety oracle expects for
    /// `test.condition` (the safety-violation state): `Forbidden` for
    /// the correctly-ordered variant, `Allowed` for weakened twins.
    pub expect: Verdict,
    /// `true` when the program is straight-line (no `__assume`), so the
    /// operational layers (`sim` machines, the `klitmus` host runner)
    /// can execute it.
    pub runnable: bool,
    /// Sequentially-consistent step-machine model for loom-style
    /// exhaustive interleaving, where the algorithm has one.
    pub machine: Option<interleave::Machine>,
}

impl AlgoProgram {
    pub(crate) fn new(family: FamilyId, test: Test, expect: Verdict) -> AlgoProgram {
        let runnable = !uses_assume(&test);
        AlgoProgram { family, test, expect, runnable, machine: None }
    }

    pub(crate) fn with_machine(mut self, machine: interleave::Machine) -> AlgoProgram {
        self.machine = Some(machine);
        self
    }
}

/// Does any statement (including nested `if` arms) use `__assume`?
pub fn uses_assume(test: &Test) -> bool {
    fn stmt_uses(stmt: &Stmt) -> bool {
        match stmt {
            Stmt::Assume(_) => true,
            Stmt::If { then_, else_, .. } => {
                then_.iter().any(stmt_uses) || else_.iter().any(stmt_uses)
            }
            _ => false,
        }
    }
    test.threads.iter().any(|t| t.body.iter().any(stmt_uses))
}

/// Expand one family at the given size.
///
/// # Errors
///
/// [`GenError::Degenerate`] when a size knob is zero.
pub fn programs(family: FamilyId, params: &FamilyParams) -> Result<Vec<AlgoProgram>, GenError> {
    params.validate()?;
    Ok(match family {
        FamilyId::RcuTree => rcu_tree::programs(params),
        FamilyId::Refcount => refcount::programs(params),
        FamilyId::Ticket => ticket::programs(params),
        FamilyId::Clh => clh::programs(params),
        FamilyId::Seqlock => seqlock::programs(params),
        FamilyId::Deque => deque::programs(params),
    })
}

/// Expand every family at the given size, in [`FamilyId::ALL`] order.
pub fn all_programs(params: &FamilyParams) -> Result<Vec<AlgoProgram>, GenError> {
    let mut out = Vec::new();
    for f in FamilyId::ALL {
        out.extend(programs(f, params)?);
    }
    Ok(out)
}

/// Parse a generated source string; family sources are produced by this
/// crate, so a parse failure is a bug in the family generator.
pub(crate) fn must_parse(src: &str) -> Test {
    match lkmm_litmus::parse(src) {
        Ok(t) => t,
        Err(e) => panic!("family generator produced unparseable litmus source: {e}\n{src}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn degenerate_parameters_are_rejected_with_typed_errors() {
        let zero_threads = FamilyParams { threads: 0, ..FamilyParams::default() };
        let zero_sections = FamilyParams { sections: 0, ..FamilyParams::default() };
        let zero_retries = FamilyParams { retries: 0, ..FamilyParams::default() };
        for family in FamilyId::ALL {
            let err = programs(family, &zero_threads).unwrap_err();
            assert_eq!(err, GenError::Degenerate("threads must be at least 1"));
            assert_eq!(
                err.to_string(),
                "degenerate family parameters: threads must be at least 1"
            );
            let err = programs(family, &zero_sections).unwrap_err();
            assert!(err.to_string().contains("sections"), "{err}");
            let err = programs(family, &zero_retries).unwrap_err();
            assert_eq!(err, GenError::Degenerate("retry depth must be at least 1"));
            assert!(err.to_string().contains("retry depth"), "{err}");
        }
    }

    #[test]
    fn every_family_expands_and_validates_at_default_size() {
        let params = FamilyParams::default();
        let mut names = BTreeSet::new();
        for family in FamilyId::ALL {
            let progs = programs(family, &params).unwrap();
            assert!(progs.len() >= 2, "{}: needs a safe variant and a twin", family.name());
            assert!(
                progs.iter().any(|p| p.expect == Verdict::Forbidden),
                "{}: no safe variant",
                family.name()
            );
            assert!(
                progs.iter().any(|p| p.expect == Verdict::Allowed),
                "{}: no weakened twin",
                family.name()
            );
            for p in progs {
                assert_eq!(p.family, family);
                assert!(
                    lkmm_litmus::validate(&p.test).is_empty(),
                    "{}: validation errors {:?}",
                    p.test.name,
                    lkmm_litmus::validate(&p.test)
                );
                assert!(names.insert(p.test.name.clone()), "duplicate name {}", p.test.name);
                assert_eq!(p.runnable, !uses_assume(&p.test), "{}", p.test.name);
                // Rendered text re-parses to an identical program: the
                // store keys and the conformance shrinker depend on it.
                let round = lkmm_litmus::parse(&p.test.to_litmus_string()).unwrap();
                assert_eq!(
                    round.to_litmus_string(),
                    p.test.to_litmus_string(),
                    "{}",
                    p.test.name
                );
            }
        }
        assert!(names.len() >= 15, "default expansion has {} programs", names.len());
    }

    #[test]
    fn runnable_programs_exist_for_every_family_but_rcu() {
        // RCU's operational story goes through klitmus' real Urcu
        // mapping of the *abstract* primitives; everything else must
        // provide at least one straight-line program for sim + klitmus.
        let params = FamilyParams::default();
        for family in FamilyId::ALL {
            let progs = programs(family, &params).unwrap();
            let runnable = progs.iter().filter(|p| p.runnable).count();
            assert!(runnable >= 1, "{}: no runnable program", family.name());
        }
    }

    #[test]
    fn expansion_is_deterministic() {
        let params = FamilyParams { threads: 3, sections: 2, retries: 2 };
        let a: Vec<String> = all_programs(&params)
            .unwrap()
            .iter()
            .map(|p| p.test.to_litmus_string())
            .collect();
        let b: Vec<String> = all_programs(&params)
            .unwrap()
            .iter()
            .map(|p| p.test.to_litmus_string())
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn family_names_roundtrip_and_unknowns_are_rejected() {
        for f in FamilyId::ALL {
            assert_eq!(FamilyId::parse_name(f.name()), Some(f));
        }
        for bad in ["Ticket", "spinlock", "rcu_tree", "", "deque "] {
            assert_eq!(FamilyId::parse_name(bad), None, "{bad:?}");
        }
    }
}
