//! CLH queue-lock family.
//!
//! Each contender marks its own node busy, swaps itself into the tail
//! with `xchg` (learning its predecessor), spins until the predecessor's
//! node reads clear, and unlocks by clearing its own node with
//! `smp_store_release`. Node identity is encoded in integers: 0 is the
//! initial dummy node (born clear), node `i + 1` belongs to thread `i`.
//! The acquisition order is pinned (thread `i` swaps out predecessor
//! `i`), by `__assume` in the axiomatic form or by condition conjuncts
//! in the runnable form.
//!
//! Safety is mutual exclusion, witnessed exactly as in the ticket
//! family: thread 0 (first holder) must never read a later contender's
//! critical-section marker. The fully-ordered `xchg` publishes the
//! node-busy write before the thread is visible in the queue, and the
//! acquire gate + release unlock order the critical sections; the
//! relaxed twin (`xchg_relaxed`, plain gate, plain unlock) lets the
//! successor read the predecessor's node *initial* clear value — the
//! classic stale-unlock bug — and is Allowed.

use crate::{AlgoProgram, FamilyId, FamilyParams};
use lkmm_exec::Verdict;
use std::fmt::Write;

struct Flavor {
    xchg: &'static str,
    acquire_gate: bool,
    release_unlock: bool,
}

const SAFE: Flavor = Flavor { xchg: "xchg", acquire_gate: true, release_unlock: true };
const RELAXED: Flavor =
    Flavor { xchg: "xchg_relaxed", acquire_gate: false, release_unlock: false };

fn body(i: usize, p: &FamilyParams, f: &Flavor, assume: bool) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "    int q;");
    let _ = writeln!(s, "    int g;");
    for k in 0..p.sections {
        let _ = writeln!(s, "    int r{k};");
    }
    let _ = writeln!(s, "    WRITE_ONCE(*n{i}, 1);");
    let _ = writeln!(s, "    q = {}(tail, {});", f.xchg, i + 1);
    let pred = if i == 0 { "nd".to_string() } else { format!("n{}", i - 1) };
    let gate =
        if f.acquire_gate { format!("smp_load_acquire(*{pred})") } else { format!("READ_ONCE(*{pred})") };
    let _ = writeln!(s, "    g = {gate};");
    if assume {
        let _ = writeln!(s, "    __assume(q == {i});");
        let _ = writeln!(s, "    __assume(g == 0);");
    }
    for k in 0..p.sections {
        let _ = writeln!(s, "    WRITE_ONCE(*x{k}, {});", i + 1);
        let _ = writeln!(s, "    r{k} = READ_ONCE(*x{k});");
    }
    if f.release_unlock {
        let _ = writeln!(s, "    smp_store_release(n{i}, 0);");
    } else {
        let _ = writeln!(s, "    WRITE_ONCE(*n{i}, 0);");
    }
    s
}

fn condition(p: &FamilyParams, assume: bool) -> String {
    let mut pins = Vec::new();
    if !assume {
        for i in 0..p.threads {
            pins.push(format!("{i}:q={i}"));
            pins.push(format!("{i}:g=0"));
        }
    }
    let mut bad = Vec::new();
    for j in 1..p.threads {
        for k in 0..p.sections {
            bad.push(format!("0:r{k}={}", j + 1));
        }
    }
    if bad.is_empty() {
        bad.push("0:r0=2".to_string());
    }
    let bad = bad.join(" \\/ ");
    if pins.is_empty() {
        format!("exists ({bad})")
    } else {
        format!("exists ({} /\\ ({bad}))", pins.join(" /\\ "))
    }
}

fn source(name: &str, p: &FamilyParams, f: &Flavor, assume: bool) -> String {
    let mut locs = vec!["tail=0".to_string(), "nd=0".to_string()];
    let mut args = vec!["int *tail".to_string(), "int *nd".to_string()];
    for i in 0..p.threads {
        locs.push(format!("n{i}=0"));
        args.push(format!("int *n{i}"));
    }
    for k in 0..p.sections {
        locs.push(format!("x{k}=0"));
        args.push(format!("int *x{k}"));
    }
    let mut s = format!("C {name}\n{{ {}; }}\n", locs.join("; "));
    for i in 0..p.threads {
        let _ = writeln!(s, "P{i}({})\n{{", args.join(", "));
        s.push_str(&body(i, p, f, assume));
        s.push_str("}\n");
    }
    s.push_str(&condition(p, assume));
    s
}

pub(crate) fn programs(p: &FamilyParams) -> Vec<AlgoProgram> {
    let t = p.threads;
    let s = p.sections;
    vec![
        AlgoProgram::new(
            FamilyId::Clh,
            crate::must_parse(&source(&format!("clh-t{t}-s{s}"), p, &SAFE, true)),
            Verdict::Forbidden,
        ),
        AlgoProgram::new(
            FamilyId::Clh,
            crate::must_parse(&source(&format!("clh-run-t{t}-s{s}"), p, &SAFE, false)),
            Verdict::Forbidden,
        ),
        AlgoProgram::new(
            FamilyId::Clh,
            crate::must_parse(&source(&format!("clh-relaxed-t{t}-s{s}"), p, &RELAXED, true)),
            Verdict::Allowed,
        ),
    ]
}
