//! Loom-style exhaustive interleaving of algorithm step machines.
//!
//! The axiomatic side of the tier asks "which outcomes does the memory
//! model license?"; this module asks the complementary operational
//! question under the strongest model: "is the bad state *reachable*
//! by any sequentially-consistent interleaving?" — by exhaustively
//! exploring every schedule of a small step machine, exactly what loom
//! does for real Rust code. The conformance layer cross-checks the
//! answer against the axiomatic SC verdict of the same program: for a
//! program with a machine model, `bad_reachable ⇔ SC says Allowed`.
//!
//! Machines are deliberately tiny: straight-line per-thread op lists
//! over a shared integer memory, with spin waits expressed as *guarded*
//! ops (a thread whose guard fails is simply not runnable — the
//! schedule-fair way to model a spin loop without unrolling it).
//! Exploration is a DFS over runnable-thread choices with visited-state
//! memoisation, so it terminates on cyclic state graphs and visits each
//! (memory, pc, regs) state once.

use std::collections::HashSet;

/// One atomic step of a thread. Every op executes atomically with full
/// visibility — the machine is sequentially consistent by construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// `regs[reg] = mem[loc]`.
    Read { loc: usize, reg: usize },
    /// `mem[loc] = val`.
    Write { loc: usize, val: i64 },
    /// `mem[loc] = regs[reg] + add` (e.g. ticket unlock: serving = my + 1).
    WriteReg { loc: usize, reg: usize, add: i64 },
    /// `regs[reg] = mem[loc]; mem[loc] += add` (atomic fetch-add).
    FetchAdd { loc: usize, reg: usize, add: i64 },
    /// `regs[reg] = mem[loc]; if old == expect { mem[loc] = new }`.
    Cas { loc: usize, reg: usize, expect: i64, new: i64 },
    /// Runnable only while `mem[loc] == regs[reg]` (spin on a register
    /// value, e.g. a ticket).
    WaitEqReg { loc: usize, reg: usize },
    /// Runnable only while `mem[loc] == val`.
    WaitEq { loc: usize, val: i64 },
}

/// A step machine: shared memory initial image, per-thread op lists,
/// and the bad-state predicate in disjunctive normal form over final
/// register values (`(thread, reg) == val` conjuncts).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Machine {
    pub init: Vec<i64>,
    pub threads: Vec<Vec<Op>>,
    pub bad: Vec<Vec<(usize, usize, i64)>>,
}

/// Exhaustive-exploration result.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Explored {
    /// Distinct states visited.
    pub states: usize,
    /// Completed interleavings (every thread ran to its end).
    pub terminals: usize,
    /// Some terminal state satisfied the bad predicate.
    pub bad_reachable: bool,
    /// The state cap was hit; `bad_reachable` is then a lower bound.
    pub truncated: bool,
}

#[derive(Clone, PartialEq, Eq, Hash)]
struct State {
    mem: Vec<i64>,
    pc: Vec<usize>,
    regs: Vec<Vec<i64>>,
}

impl State {
    fn regs_for(machine: &Machine) -> Vec<Vec<i64>> {
        machine
            .threads
            .iter()
            .map(|ops| {
                let max = ops
                    .iter()
                    .map(|op| match op {
                        Op::Read { reg, .. }
                        | Op::WriteReg { reg, .. }
                        | Op::FetchAdd { reg, .. }
                        | Op::Cas { reg, .. }
                        | Op::WaitEqReg { reg, .. } => *reg + 1,
                        Op::Write { .. } | Op::WaitEq { .. } => 0,
                    })
                    .max()
                    .unwrap_or(0);
                vec![0; max]
            })
            .collect()
    }
}

/// Can thread `t` take a step in `s`, and what does it become?
fn step(machine: &Machine, s: &State, t: usize) -> Option<State> {
    let pc = s.pc[t];
    let op = *machine.threads[t].get(pc)?;
    match op {
        Op::WaitEqReg { loc, reg } if s.mem[loc] != s.regs[t][reg] => return None,
        Op::WaitEq { loc, val } if s.mem[loc] != val => return None,
        _ => {}
    }
    let mut next = s.clone();
    next.pc[t] += 1;
    match op {
        Op::Read { loc, reg } => next.regs[t][reg] = next.mem[loc],
        Op::Write { loc, val } => next.mem[loc] = val,
        Op::WriteReg { loc, reg, add } => next.mem[loc] = next.regs[t][reg] + add,
        Op::FetchAdd { loc, reg, add } => {
            next.regs[t][reg] = next.mem[loc];
            next.mem[loc] += add;
        }
        Op::Cas { loc, reg, expect, new } => {
            next.regs[t][reg] = next.mem[loc];
            if next.mem[loc] == expect {
                next.mem[loc] = new;
            }
        }
        Op::WaitEqReg { .. } | Op::WaitEq { .. } => {}
    }
    Some(next)
}

fn is_bad(machine: &Machine, s: &State) -> bool {
    machine
        .bad
        .iter()
        .any(|conj| conj.iter().all(|&(t, r, v)| s.regs[t].get(r).copied() == Some(v)))
}

/// Explore every interleaving of `machine`, visiting at most
/// `max_states` distinct states (0 means unbounded).
pub fn explore(machine: &Machine, max_states: usize) -> Explored {
    let start = State {
        mem: machine.init.clone(),
        pc: vec![0; machine.threads.len()],
        regs: State::regs_for(machine),
    };
    let mut seen: HashSet<State> = HashSet::new();
    let mut stack = vec![start.clone()];
    seen.insert(start);
    let mut out =
        Explored { states: 0, terminals: 0, bad_reachable: false, truncated: false };
    while let Some(s) = stack.pop() {
        out.states += 1;
        if max_states != 0 && out.states > max_states {
            out.truncated = true;
            break;
        }
        let done = (0..machine.threads.len()).all(|t| s.pc[t] == machine.threads[t].len());
        if done {
            out.terminals += 1;
            if is_bad(machine, &s) {
                out.bad_reachable = true;
            }
            continue;
        }
        for t in 0..machine.threads.len() {
            if let Some(next) = step(machine, &s, t) {
                if seen.insert(next.clone()) {
                    stack.push(next);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two threads racing an unguarded counter increment via separate
    /// read/write steps lose updates; with FetchAdd they never do.
    #[test]
    fn lost_update_is_reachable_without_atomicity() {
        let racy = Machine {
            init: vec![0],
            threads: vec![
                vec![Op::Read { loc: 0, reg: 0 }, Op::WriteReg { loc: 0, reg: 0, add: 1 }],
                vec![Op::Read { loc: 0, reg: 0 }, Op::WriteReg { loc: 0, reg: 0, add: 1 }],
            ],
            // Both threads read 0: the increments collide.
            bad: vec![vec![(0, 0, 0), (1, 0, 0)]],
        };
        assert!(explore(&racy, 0).bad_reachable);

        let atomic = Machine {
            init: vec![0],
            threads: vec![
                vec![Op::FetchAdd { loc: 0, reg: 0, add: 1 }],
                vec![Op::FetchAdd { loc: 0, reg: 0, add: 1 }],
            ],
            bad: vec![vec![(0, 0, 0), (1, 0, 0)]],
        };
        assert!(!explore(&atomic, 0).bad_reachable);
    }

    /// A guarded wait models a spin loop without unrolling: the waiter
    /// only runs once the flag is set, and exploration terminates.
    #[test]
    fn guarded_waits_terminate_and_order() {
        let m = Machine {
            init: vec![0, 0],
            threads: vec![
                vec![Op::Write { loc: 1, val: 7 }, Op::Write { loc: 0, val: 1 }],
                vec![Op::WaitEq { loc: 0, val: 1 }, Op::Read { loc: 1, reg: 0 }],
            ],
            // Waiter saw the flag but missed the data: impossible under SC.
            bad: vec![vec![(1, 0, 0)]],
        };
        let r = explore(&m, 0);
        assert!(!r.bad_reachable);
        assert!(r.terminals >= 1);
        assert!(!r.truncated);
    }

    #[test]
    fn state_cap_reports_truncation() {
        let m = Machine {
            init: vec![0],
            threads: vec![vec![Op::FetchAdd { loc: 0, reg: 0, add: 1 }; 6]; 3],
            bad: vec![],
        };
        let r = explore(&m, 5);
        assert!(r.truncated);
        let full = explore(&m, 0);
        assert!(!full.truncated);
        assert!(full.states > 5);
    }
}
