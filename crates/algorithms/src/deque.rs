//! Chase-Lev work-stealing deque family: the two load-bearing halves
//! of the steal/take race, at litmus scale.
//!
//! **Publication** (`deque-pub`): the owner writes the buffer words and
//! publishes them by raising `bot` with `smp_store_release`; a thief
//! that observed `bot = 1` with `smp_load_acquire` and won the `top`
//! `cmpxchg` owns the item, so reading a stale buffer word (`r0 = 0`)
//! is a *lost item* — Forbidden. Strip the release/acquire pair and
//! the thief can steal an item whose payload never arrived — Allowed.
//!
//! **Arbitration** (`deque-arb`): the owner's take of the last item
//! (decrement `bot`, full fence, re-read `top`, then `cmpxchg`) races
//! the thieves' steal `cmpxchg`. Two successful `cmpxchg`es from the
//! same `top` value would be a *duplicated item*; RMW atomicity forbids
//! it in every model, which makes this program a cross-layer probe of
//! the RMW machinery itself. The broken twin replaces the thief's
//! `cmpxchg` with a plain read + write — the same claim protocol minus
//! atomicity — and duplication becomes reachable even under SC, which
//! the interleaving machine confirms.

use crate::interleave::{Machine, Op};
use crate::{AlgoProgram, FamilyId, FamilyParams};
use lkmm_exec::Verdict;
use std::fmt::Write;

/// Publication probe: owner pushes, thieves steal.
fn pub_source(name: &str, p: &FamilyParams, ordered: bool) -> String {
    let thieves = p.threads.saturating_sub(1);
    let mut locs = vec!["bot=0".to_string(), "top=0".to_string()];
    let mut args = vec!["int *bot".to_string(), "int *top".to_string()];
    for k in 0..p.sections {
        locs.push(format!("b{k}=0"));
        args.push(format!("int *b{k}"));
    }
    let mut s = format!("C {name}\n{{ {}; }}\n", locs.join("; "));
    let _ = writeln!(s, "P0({})\n{{", args.join(", "));
    for k in 0..p.sections {
        let _ = writeln!(s, "    WRITE_ONCE(*b{k}, 1);");
    }
    if ordered {
        let _ = writeln!(s, "    smp_store_release(bot, 1);");
    } else {
        let _ = writeln!(s, "    WRITE_ONCE(*bot, 1);");
    }
    s.push_str("}\n");
    for j in 1..=thieves {
        let _ = writeln!(s, "P{j}({})\n{{", args.join(", "));
        let _ = writeln!(s, "    int t;");
        let _ = writeln!(s, "    int h;");
        for k in 0..p.sections {
            let _ = writeln!(s, "    int r{k};");
        }
        let _ = writeln!(s, "    int w;");
        let _ = writeln!(s, "    t = READ_ONCE(*top);");
        if ordered {
            let _ = writeln!(s, "    h = smp_load_acquire(*bot);");
        } else {
            let _ = writeln!(s, "    h = READ_ONCE(*bot);");
        }
        for k in 0..p.sections {
            let _ = writeln!(s, "    r{k} = READ_ONCE(*b{k});");
        }
        let _ = writeln!(s, "    w = cmpxchg(top, 0, 1);");
        s.push_str("}\n");
    }
    let mut bad = Vec::new();
    for j in 1..=thieves {
        bad.push(format!("({j}:h=1 /\\ {j}:w=0 /\\ {j}:r0=0)"));
    }
    if bad.is_empty() {
        // Owner-only size: a steal that never happened cannot lose items.
        bad.push("(top=1)".to_string());
    }
    let _ = write!(s, "exists ({})", bad.join(" \\/ "));
    s
}

/// Arbitration probe: one item, owner take vs thief steals on `top`.
fn arb_source(name: &str, p: &FamilyParams, atomic_steal: bool) -> String {
    let thieves = p.threads.saturating_sub(1);
    let mut s = format!(
        "C {name}\n{{ bot=1; top=0; }}\n\
         P0(int *bot, int *top)\n{{\n\
         \x20   int t2;\n\
         \x20   int c;\n\
         \x20   WRITE_ONCE(*bot, 0);\n\
         \x20   smp_mb();\n\
         \x20   t2 = READ_ONCE(*top);\n\
         \x20   c = cmpxchg(top, 0, 1);\n\
         }}\n"
    );
    for j in 1..=thieves {
        let _ = writeln!(s, "P{j}(int *bot, int *top)\n{{");
        let _ = writeln!(s, "    int t;");
        let _ = writeln!(s, "    int h;");
        let _ = writeln!(s, "    int w;");
        let _ = writeln!(s, "    t = READ_ONCE(*top);");
        let _ = writeln!(s, "    h = READ_ONCE(*bot);");
        if atomic_steal {
            let _ = writeln!(s, "    w = cmpxchg(top, 0, 1);");
        } else {
            let _ = writeln!(s, "    w = READ_ONCE(*top);");
            let _ = writeln!(s, "    WRITE_ONCE(*top, 1);");
        }
        s.push_str("}\n");
    }
    // Duplication: the owner and a thief both claimed `top = 0`, or two
    // thieves did.
    let mut bad = Vec::new();
    for j in 1..=thieves {
        bad.push(format!("(0:c=0 /\\ {j}:w=0)"));
    }
    for j in 1..=thieves {
        for j2 in j + 1..=thieves {
            bad.push(format!("({j}:w=0 /\\ {j2}:w=0)"));
        }
    }
    if bad.is_empty() {
        bad.push("(0:c=1)".to_string());
    }
    let _ = write!(s, "exists ({})", bad.join(" \\/ "));
    s
}

fn arb_machine(p: &FamilyParams, atomic_steal: bool) -> Machine {
    let thieves = p.threads.saturating_sub(1);
    // mem: [bot, top]; owner regs [t2, c]; thief regs [t, h, w]
    let owner = vec![
        Op::Write { loc: 0, val: 0 },
        Op::Read { loc: 1, reg: 0 },
        Op::Cas { loc: 1, reg: 1, expect: 0, new: 1 },
    ];
    let mut threads = vec![owner];
    for _ in 0..thieves {
        let mut thief = vec![Op::Read { loc: 1, reg: 0 }, Op::Read { loc: 0, reg: 1 }];
        if atomic_steal {
            thief.push(Op::Cas { loc: 1, reg: 2, expect: 0, new: 1 });
        } else {
            thief.push(Op::Read { loc: 1, reg: 2 });
            thief.push(Op::Write { loc: 1, val: 1 });
        }
        threads.push(thief);
    }
    let mut bad = Vec::new();
    for j in 1..=thieves {
        bad.push(vec![(0, 1, 0), (j, 2, 0)]);
    }
    for j in 1..=thieves {
        for j2 in j + 1..=thieves {
            bad.push(vec![(j, 2, 0), (j2, 2, 0)]);
        }
    }
    Machine { init: vec![1, 0], threads, bad }
}

pub(crate) fn programs(p: &FamilyParams) -> Vec<AlgoProgram> {
    let t = p.threads;
    let s = p.sections;
    vec![
        AlgoProgram::new(
            FamilyId::Deque,
            crate::must_parse(&pub_source(&format!("deque-pub-t{t}-s{s}"), p, true)),
            Verdict::Forbidden,
        ),
        AlgoProgram::new(
            FamilyId::Deque,
            crate::must_parse(&pub_source(&format!("deque-pub-relaxed-t{t}-s{s}"), p, false)),
            if t > 1 { Verdict::Allowed } else { Verdict::Forbidden },
        ),
        AlgoProgram::new(
            FamilyId::Deque,
            crate::must_parse(&arb_source(&format!("deque-arb-t{t}"), p, true)),
            Verdict::Forbidden,
        )
        .with_machine(arb_machine(p, true)),
        AlgoProgram::new(
            FamilyId::Deque,
            crate::must_parse(&arb_source(&format!("deque-arb-broken-t{t}"), p, false)),
            if t > 1 { Verdict::Allowed } else { Verdict::Forbidden },
        )
        .with_machine(arb_machine(p, false)),
    ]
}
