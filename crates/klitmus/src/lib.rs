//! klitmus-style host runner: execute litmus tests on *this* machine's
//! real hardware with real threads (§5: "running litmus tests as kernel
//! modules was done using our new klitmus tool").
//!
//! Where the paper's klitmus runs tests inside the kernel with kthreads,
//! this runner uses std threads and Rust atomics with the natural mapping
//! of LK primitives:
//!
//! | LK primitive           | host implementation                   |
//! |------------------------|---------------------------------------|
//! | `READ_ONCE`/`WRITE_ONCE` | relaxed atomic load/store           |
//! | acquire / release      | `Ordering::Acquire` / `Release`       |
//! | `smp_rmb` / `smp_wmb`  | `fence(Acquire)` / `fence(Release)`   |
//! | `smp_mb`               | `fence(SeqCst)`                       |
//! | `smp_read_barrier_depends` | no-op (the host is not an Alpha)  |
//! | `xchg*` / `cmpxchg*`   | `swap` / `compare_exchange`           |
//! | RCU primitives         | the real [`lkmm_rcu::Urcu`] runtime   |
//! | `spin_lock`/`spin_unlock` | CAS-acquire loop / store-release   |
//!
//! Every iteration lines the threads up on a barrier, runs the bodies
//! concurrently, and records the final state. The key soundness check —
//! mirrored from Table 5 — is that no LKMM-forbidden outcome is ever
//! observed on real silicon.
//!
//! # Examples
//!
//! ```
//! use lkmm_klitmus::{run_on_host, HostConfig};
//!
//! let sb = lkmm_litmus::library::by_name("SB+mbs").unwrap().test();
//! let stats = run_on_host(&sb, &HostConfig { iterations: 1_000 }).unwrap();
//! assert_eq!(stats.observed, 0); // fenced store buffering never shows
//! ```

use lkmm_litmus::ast::{AddrExpr, BinOp, Expr, FenceKind, InitVal, RmwOrder, Stmt, Test};
use lkmm_litmus::cond::{CondVal, StateTerm};
use lkmm_rcu::Urcu;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::atomic::{fence, AtomicI64, Ordering};
use std::sync::Barrier;

/// Host-run configuration.
#[derive(Clone, Copy, Debug)]
pub struct HostConfig {
    /// Number of iterations.
    pub iterations: u64,
}

impl Default for HostConfig {
    fn default() -> Self {
        HostConfig { iterations: 100_000 }
    }
}

/// Aggregated host-run results.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HostStats {
    /// Iterations whose final state satisfied the condition proposition.
    pub observed: u64,
    /// Total iterations.
    pub total: u64,
    /// Histogram over final states of the condition's terms.
    pub histogram: BTreeMap<String, u64>,
}

/// Host-run failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HostError {
    /// `__assume` has no operational meaning.
    Unsupported(&'static str),
    /// A register was read before being written (program bug).
    UninitialisedRegister(String),
    /// An integer was dereferenced (program bug).
    BadPointer,
}

impl fmt::Display for HostError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HostError::Unsupported(w) => write!(f, "unsupported on host: {w}"),
            HostError::UninitialisedRegister(r) => write!(f, "uninitialised register {r}"),
            HostError::BadPointer => write!(f, "dereferenced a non-pointer value"),
        }
    }
}

impl std::error::Error for HostError {}

/// Pointers are encoded as negative integers so that plain `AtomicI64`
/// cells can hold both (litmus tests only use small non-negative data
/// values).
fn encode_loc(i: usize) -> i64 {
    -(i as i64) - 1
}

fn decode_loc(v: i64) -> Option<usize> {
    (v < 0).then(|| (-v - 1) as usize)
}

/// Run `test` on the host.
///
/// # Errors
///
/// See [`HostError`].
pub fn run_on_host(test: &Test, config: &HostConfig) -> Result<HostStats, HostError> {
    let locs = test.shared_locations();
    let init: Vec<i64> = locs
        .iter()
        .map(|name| match test.init.get(name) {
            Some(InitVal::Int(i)) => *i,
            Some(InitVal::Ptr(t)) => {
                encode_loc(locs.iter().position(|l| l == t).expect("ptr target"))
            }
            None => 0,
        })
        .collect();
    let mem: Vec<AtomicI64> = init.iter().map(|&v| AtomicI64::new(v)).collect();
    let n_threads = test.threads.len();
    let rcu = Urcu::new(n_threads);
    // One independent RCU domain per location doubles as the SRCU
    // implementation (srcu ≙ per-domain userspace RCU).
    let srcu: Vec<Urcu> = (0..locs.len()).map(|_| Urcu::new(n_threads)).collect();
    let start = Barrier::new(n_threads);
    let finish = Barrier::new(n_threads);

    let mut stats =
        HostStats { observed: 0, total: config.iterations, histogram: BTreeMap::new() };
    let terms: Vec<&StateTerm> = test.condition.prop.terms();

    // Reject unsupported constructs up front.
    fn check(stmts: &[Stmt]) -> Result<(), HostError> {
        for s in stmts {
            match s {
                Stmt::Assume(_) => return Err(HostError::Unsupported("__assume")),
                Stmt::If { then_, else_, .. } => {
                    check(then_)?;
                    check(else_)?;
                }
                _ => {}
            }
        }
        Ok(())
    }
    for t in &test.threads {
        check(&t.body)?;
    }

    /// Per-worker result: final registers per iteration, plus (thread 0
    /// only) the memory snapshot per iteration.
    type WorkerOut = (Vec<BTreeMap<String, i64>>, Vec<Vec<i64>>);

    std::thread::scope(|scope| -> Result<(), HostError> {
        let mut handles = Vec::new();
        for (tid, thread) in test.threads.iter().enumerate() {
            let mem = &mem;
            let locs = &locs;
            let rcu = &rcu;
            let srcu = &srcu;
            let start = &start;
            let finish = &finish;
            let init = &init;
            handles.push(scope.spawn(move || -> Result<WorkerOut, HostError> {
                let mut finals = Vec::with_capacity(config.iterations as usize);
                let mut snapshots = Vec::new();
                for _ in 0..config.iterations {
                    // Thread 0 resets memory before releasing the pack;
                    // everyone else is parked on the start barrier.
                    if tid == 0 {
                        for (cell, &v) in mem.iter().zip(init) {
                            cell.store(v, Ordering::Relaxed);
                        }
                    }
                    start.wait();
                    let mut interp = Interp {
                        tid,
                        mem,
                        locs,
                        rcu,
                        srcu,
                        regs: HashMap::new(),
                    };
                    interp.run(&thread.body)?;
                    finals.push(interp.regs.into_iter().collect());
                    finish.wait();
                    // All bodies are done; snapshot the final memory
                    // before the next iteration's reset.
                    if tid == 0 {
                        snapshots
                            .push(mem.iter().map(|c| c.load(Ordering::Relaxed)).collect());
                    }
                }
                Ok((finals, snapshots))
            }));
        }
        let joined: Vec<WorkerOut> = handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect::<Result<_, _>>()?;
        let snapshots = joined[0].1.clone();
        let per_thread: Vec<Vec<BTreeMap<String, i64>>> =
            joined.into_iter().map(|(f, _)| f).collect();

        for (i, snapshot) in snapshots.iter().enumerate() {
            let lookup = |term: &StateTerm| -> Option<CondVal> {
                let v = match term {
                    StateTerm::Reg { thread, reg } => {
                        *per_thread.get(*thread)?.get(i)?.get(reg)?
                    }
                    StateTerm::Loc(name) => {
                        let idx = locs.iter().position(|l| l == name)?;
                        snapshot[idx]
                    }
                };
                Some(match decode_loc(v) {
                    Some(l) => CondVal::LocRef(locs[l].clone()),
                    None => CondVal::Int(v),
                })
            };
            if test.condition.prop.eval(&lookup) {
                stats.observed += 1;
            }
            let key = terms
                .iter()
                .map(|t| {
                    let v = lookup(t)
                        .map(|v| v.to_string())
                        .unwrap_or_else(|| "?".to_string());
                    format!("{t}={v}")
                })
                .collect::<Vec<_>>()
                .join(" ");
            *stats.histogram.entry(key).or_insert(0) += 1;
        }
        Ok(())
    })?;
    Ok(stats)
}

/// Run a batch of tests on the host, `jobs` tests at a time (`0` = one
/// per available hardware thread).
///
/// Results come back in input order regardless of which worker ran which
/// test. Each test still spawns its own litmus threads, so the effective
/// thread count is `jobs × threads-per-test`; callers batching large
/// libraries may want `jobs` below the hardware thread count.
///
/// # Examples
///
/// ```
/// use lkmm_klitmus::{run_many_on_host, HostConfig};
///
/// let tests: Vec<_> = ["SB+mbs", "MP+wmb+rmb"]
///     .iter()
///     .map(|n| lkmm_litmus::library::by_name(n).unwrap().test())
///     .collect();
/// let stats = run_many_on_host(&tests, &HostConfig { iterations: 500 }, 2);
/// assert!(stats.iter().all(|s| s.as_ref().unwrap().observed == 0));
/// ```
pub fn run_many_on_host(
    tests: &[Test],
    config: &HostConfig,
    jobs: usize,
) -> Vec<Result<HostStats, HostError>> {
    let jobs = if jobs == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        jobs
    };
    let jobs = jobs.min(tests.len().max(1));
    if jobs <= 1 {
        return tests.iter().map(|t| run_on_host(t, config)).collect();
    }
    let mut out: Vec<Option<Result<HostStats, HostError>>> = Vec::new();
    out.resize_with(tests.len(), || None);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(jobs);
        for w in 0..jobs {
            handles.push(scope.spawn(move || {
                // Strided assignment: worker w runs tests w, w+jobs, …
                tests
                    .iter()
                    .enumerate()
                    .skip(w)
                    .step_by(jobs)
                    .map(|(i, t)| (i, run_on_host(t, config)))
                    .collect::<Vec<_>>()
            }));
        }
        for h in handles {
            for (i, r) in h.join().expect("klitmus worker panicked") {
                out[i] = Some(r);
            }
        }
    });
    out.into_iter().map(|r| r.expect("every test assigned to a worker")).collect()
}

struct Interp<'a> {
    tid: usize,
    mem: &'a [AtomicI64],
    locs: &'a [String],
    rcu: &'a Urcu,
    srcu: &'a [Urcu],
    regs: HashMap<String, i64>,
}

impl Interp<'_> {
    fn run(&mut self, body: &[Stmt]) -> Result<(), HostError> {
        for stmt in body {
            self.step(stmt)?;
        }
        Ok(())
    }

    fn addr(&self, a: &AddrExpr) -> Result<usize, HostError> {
        match a {
            AddrExpr::Var(name) => self
                .locs
                .iter()
                .position(|l| l == name)
                .ok_or(HostError::BadPointer),
            AddrExpr::Reg(r) => {
                let v = *self
                    .regs
                    .get(r)
                    .ok_or_else(|| HostError::UninitialisedRegister(r.clone()))?;
                decode_loc(v).ok_or(HostError::BadPointer)
            }
        }
    }

    fn eval(&self, e: &Expr) -> Result<i64, HostError> {
        Ok(match e {
            Expr::Const(c) => *c,
            Expr::Reg(r) => *self
                .regs
                .get(r)
                .ok_or_else(|| HostError::UninitialisedRegister(r.clone()))?,
            Expr::LocRef(name) => encode_loc(
                self.locs.iter().position(|l| l == name).ok_or(HostError::BadPointer)?,
            ),
            Expr::Not(inner) => i64::from(self.eval(inner)? == 0),
            Expr::Bin(op, a, b) => {
                let (x, y) = (self.eval(a)?, self.eval(b)?);
                match op {
                    BinOp::Add => x.wrapping_add(y),
                    BinOp::Sub => x.wrapping_sub(y),
                    BinOp::Mul => x.wrapping_mul(y),
                    BinOp::Xor => x ^ y,
                    BinOp::And => x & y,
                    BinOp::Or => x | y,
                    BinOp::Eq => i64::from(x == y),
                    BinOp::Ne => i64::from(x != y),
                    BinOp::Lt => i64::from(x < y),
                    BinOp::Le => i64::from(x <= y),
                    BinOp::Gt => i64::from(x > y),
                    BinOp::Ge => i64::from(x >= y),
                }
            }
        })
    }

    fn step(&mut self, stmt: &Stmt) -> Result<(), HostError> {
        match stmt {
            Stmt::ReadOnce { dst, addr } | Stmt::RcuDereference { dst, addr } => {
                let l = self.addr(addr)?;
                let v = self.mem[l].load(Ordering::Relaxed);
                self.regs.insert(dst.clone(), v);
            }
            Stmt::LoadAcquire { dst, addr } => {
                let l = self.addr(addr)?;
                let v = self.mem[l].load(Ordering::Acquire);
                self.regs.insert(dst.clone(), v);
            }
            Stmt::WriteOnce { addr, value } => {
                let l = self.addr(addr)?;
                let v = self.eval(value)?;
                self.mem[l].store(v, Ordering::Relaxed);
            }
            Stmt::StoreRelease { addr, value } | Stmt::RcuAssignPointer { addr, value } => {
                let l = self.addr(addr)?;
                let v = self.eval(value)?;
                self.mem[l].store(v, Ordering::Release);
            }
            Stmt::Fence(kind) => match kind {
                FenceKind::Rmb => fence(Ordering::Acquire),
                FenceKind::Wmb => fence(Ordering::Release),
                FenceKind::Mb => fence(Ordering::SeqCst),
                FenceKind::RbDep => {} // not an Alpha
                FenceKind::RcuLock => self.rcu.read_lock(self.tid),
                FenceKind::RcuUnlock => self.rcu.read_unlock(self.tid),
                FenceKind::SyncRcu => self.rcu.synchronize_rcu(),
            },
            Stmt::Xchg { order, dst, addr, value } => {
                let l = self.addr(addr)?;
                let v = self.eval(value)?;
                let old = match order {
                    RmwOrder::Relaxed => self.mem[l].swap(v, Ordering::Relaxed),
                    RmwOrder::Acquire => self.mem[l].swap(v, Ordering::Acquire),
                    RmwOrder::Release => self.mem[l].swap(v, Ordering::Release),
                    RmwOrder::Full => self.mem[l].swap(v, Ordering::SeqCst),
                };
                self.regs.insert(dst.clone(), old);
            }
            Stmt::CmpXchg { order, dst, addr, expected, new } => {
                let l = self.addr(addr)?;
                let exp = self.eval(expected)?;
                let newv = self.eval(new)?;
                let (success, failure) = match order {
                    RmwOrder::Relaxed => (Ordering::Relaxed, Ordering::Relaxed),
                    RmwOrder::Acquire => (Ordering::Acquire, Ordering::Acquire),
                    RmwOrder::Release => (Ordering::Release, Ordering::Relaxed),
                    RmwOrder::Full => (Ordering::SeqCst, Ordering::SeqCst),
                };
                let old = match self.mem[l].compare_exchange(exp, newv, success, failure) {
                    Ok(o) | Err(o) => o,
                };
                self.regs.insert(dst.clone(), old);
            }
            Stmt::Assign { dst, value } => {
                let v = self.eval(value)?;
                self.regs.insert(dst.clone(), v);
            }
            Stmt::AtomicOp { order, dst, addr, op, operand } => {
                use lkmm_litmus::ast::AtomicDst;
                let l = self.addr(addr)?;
                let operand = self.eval(operand)?;
                let ordering = match order {
                    RmwOrder::Relaxed => Ordering::Relaxed,
                    RmwOrder::Acquire => Ordering::Acquire,
                    RmwOrder::Release => Ordering::Release,
                    RmwOrder::Full => Ordering::SeqCst,
                };
                let old = match op {
                    BinOp::Add => self.mem[l].fetch_add(operand, ordering),
                    BinOp::Sub => self.mem[l].fetch_sub(operand, ordering),
                    BinOp::And => self.mem[l].fetch_and(operand, ordering),
                    BinOp::Or => self.mem[l].fetch_or(operand, ordering),
                    BinOp::Xor => self.mem[l].fetch_xor(operand, ordering),
                    _ => self.mem[l].fetch_add(operand, ordering),
                };
                if let Some((d, kind)) = dst {
                    let v = match (kind, op) {
                        (AtomicDst::Old, _) => old,
                        (AtomicDst::New, BinOp::Add) => old.wrapping_add(operand),
                        (AtomicDst::New, BinOp::Sub) => old.wrapping_sub(operand),
                        (AtomicDst::New, BinOp::And) => old & operand,
                        (AtomicDst::New, BinOp::Or) => old | operand,
                        (AtomicDst::New, BinOp::Xor) => old ^ operand,
                        (AtomicDst::New, _) => old,
                    };
                    self.regs.insert(d.clone(), v);
                }
            }
            Stmt::If { cond, then_, else_ } => {
                if self.eval(cond)? != 0 {
                    self.run(then_)?;
                } else {
                    self.run(else_)?;
                }
            }
            Stmt::SrcuReadLock { domain } => {
                let d = self.addr(domain)?;
                self.srcu[d].read_lock(self.tid);
            }
            Stmt::SrcuReadUnlock { domain } => {
                let d = self.addr(domain)?;
                self.srcu[d].read_unlock(self.tid);
            }
            Stmt::SynchronizeSrcu { domain } => {
                let d = self.addr(domain)?;
                self.srcu[d].synchronize_rcu();
            }
            Stmt::SpinLock { addr } => {
                let l = self.addr(addr)?;
                while self.mem[l]
                    .compare_exchange(0, 1, Ordering::Acquire, Ordering::Relaxed)
                    .is_err()
                {
                    std::hint::spin_loop();
                }
            }
            Stmt::SpinUnlock { addr } => {
                let l = self.addr(addr)?;
                self.mem[l].store(0, Ordering::Release);
            }
            Stmt::Assume(_) => return Err(HostError::Unsupported("__assume")),
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lkmm_litmus::library;

    fn run(name: &str, iters: u64) -> HostStats {
        let t = library::by_name(name).unwrap().test();
        run_on_host(&t, &HostConfig { iterations: iters }).unwrap()
    }

    #[test]
    fn fenced_idioms_never_observed_on_host() {
        // Table 5 soundness on real silicon: LKMM-forbidden outcomes must
        // not appear, whatever the host architecture.
        for name in ["SB+mbs", "MP+wmb+rmb", "WRC+po-rel+rmb", "LB+ctrl+mb", "RWC+mbs"] {
            let stats = run(name, 20_000);
            assert_eq!(stats.observed, 0, "{name} observed on the host!");
        }
    }

    #[test]
    fn rcu_guarantee_holds_on_host() {
        // Runs the real Urcu runtime under the litmus harness.
        for name in ["RCU-MP", "RCU-deferred-free"] {
            let stats = run(name, 3_000);
            assert_eq!(stats.observed, 0, "{name} observed on the host!");
        }
    }

    #[test]
    fn histogram_accounts_for_all_iterations() {
        let stats = run("MP", 5_000);
        assert_eq!(stats.histogram.values().sum::<u64>(), 5_000);
        assert_eq!(stats.total, 5_000);
    }

    #[test]
    fn strong_outcomes_appear() {
        // The non-weak outcomes of MP (e.g. r0=1, r1=1 or r0=0) dominate.
        let stats = run("MP", 5_000);
        assert!(stats.histogram.len() >= 2, "{:?}", stats.histogram);
    }

    #[test]
    fn pointer_tests_run() {
        let stats = run("MP+wmb+addr-acq", 5_000);
        assert_eq!(stats.observed, 0, "acquire-protected pointer chase broke");
    }

    #[test]
    fn run_many_matches_run_one_for_forbidden_tests() {
        let tests: Vec<_> = ["SB+mbs", "MP+wmb+rmb", "LB+ctrl+mb"]
            .iter()
            .map(|n| library::by_name(n).unwrap().test())
            .collect();
        let config = HostConfig { iterations: 2_000 };
        for jobs in [1, 2, 0] {
            let many = run_many_on_host(&tests, &config, jobs);
            assert_eq!(many.len(), tests.len());
            for (t, r) in tests.iter().zip(&many) {
                let r = r.as_ref().unwrap();
                assert_eq!(r.observed, 0, "{} (jobs={jobs})", t.name);
                assert_eq!(r.total, config.iterations);
            }
        }
    }

    #[test]
    fn rejects_assume() {
        let t = lkmm_litmus::parse(
            "C a\n{ x=0; }\nP0(int *x) { int r; r = READ_ONCE(*x); __assume(r == 0); }\n\
             exists (x=0)",
        )
        .unwrap();
        assert!(matches!(
            run_on_host(&t, &HostConfig { iterations: 1 }),
            Err(HostError::Unsupported(_))
        ));
    }
}
