//! The model tower: verdicts of every implemented consistency model on
//! every library test — SC at the top, the hardware models in the middle
//! (pairwise incomparable), the LKMM as their envelope, and original C11
//! off to the side.
//!
//! ```sh
//! cargo run --release --example model_tower
//! ```

use lkmm_exec::enumerate::EnumOptions;
use lkmm_exec::{check_test, ConsistencyModel, Verdict};
use lkmm_litmus::library;
use lkmm_models::{Armv8, OriginalC11, Power, Sc, X86Tso};

fn main() {
    let lkmm = lkmm::Lkmm::new();
    let models: Vec<(&str, &dyn ConsistencyModel)> = vec![
        ("SC", &Sc),
        ("x86-TSO", &X86Tso),
        ("ARMv8", &Armv8),
        ("Power", &Power),
        ("LKMM", &lkmm),
        ("C11", &OriginalC11),
    ];
    let opts = EnumOptions::default();

    print!("{:<26}", "Test");
    for (name, _) in &models {
        print!(" {name:>8}");
    }
    println!();
    println!("{}", "-".repeat(26 + 9 * models.len()));

    let mut envelope_violations = 0;
    for pt in library::all() {
        let test = pt.test();
        print!("{:<26}", pt.name);
        let mut verdicts = Vec::new();
        for (name, model) in &models {
            // C11 and the hardware models do not understand RCU grace
            // periods; print "-" as the paper does.
            let rcu_test = pt.name.starts_with("RCU");
            if rcu_test && *name != "LKMM" && *name != "SC" {
                print!(" {:>8}", "-");
                verdicts.push(None);
                continue;
            }
            let v = check_test(*model, &test, &opts).unwrap().verdict;
            print!(" {:>8}", v.to_string());
            verdicts.push(Some((*name, v)));
        }
        println!();
        // Envelope check: if any hardware model allows, the LKMM allows.
        let lkmm_v = verdicts[4].map(|(_, v)| v);
        for hw in [1usize, 2, 3] {
            if let (Some((_, Verdict::Allowed)), Some(Verdict::Forbidden)) =
                (verdicts[hw], lkmm_v)
            {
                envelope_violations += 1;
            }
        }
    }
    println!("\nenvelope violations (hardware allows, LKMM forbids): {envelope_violations}");
    assert_eq!(envelope_violations, 0);
}
