//! The §5 experiment loop in miniature: systematically generate litmus
//! tests from critical cycles (diy-style), check each against the LKMM,
//! and validate the model against the hardware simulators.
//!
//! ```sh
//! cargo run --release --example generate_and_check [max_cycle_len]
//! ```

use lkmm::Lkmm;
use lkmm_exec::enumerate::EnumOptions;
use lkmm_exec::{check_test, Verdict};
use lkmm_generator::{cycles_up_to, default_alphabet, generate};
use lkmm_sim::{run_test, Arch, RunConfig};

fn main() {
    let max_len: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(4);
    let cycles = cycles_up_to(max_len, &default_alphabet());
    println!("generated {} critical cycles up to length {max_len}", cycles.len());

    let opts = EnumOptions::default();
    let model = Lkmm::new();
    let mut allowed = 0usize;
    let mut forbidden = 0usize;
    let mut sim_checked = 0usize;

    for (i, cycle) in cycles.iter().enumerate() {
        let test = generate(cycle).expect("valid cycle");
        let verdict = check_test(&model, &test, &opts)
            .unwrap_or_else(|e| panic!("{}: {e}", test.name))
            .verdict;
        match verdict {
            Verdict::Allowed => allowed += 1,
            Verdict::Forbidden => forbidden += 1,
        }
        // Spot-check simulator soundness on every 10th forbidden test.
        if verdict == Verdict::Forbidden && i % 10 == 0 {
            for arch in Arch::ALL {
                let stats =
                    run_test(&test, arch, &RunConfig { iterations: 500, seed: 7 }).unwrap();
                assert_eq!(
                    stats.observed, 0,
                    "{}: LKMM forbids but {} observed it",
                    test.name,
                    arch.name()
                );
                sim_checked += 1;
            }
        }
    }
    println!("LKMM verdicts: {allowed} allowed, {forbidden} forbidden");
    println!("simulator soundness spot-checks: {sim_checked} (arch, test) pairs, all clean");

    // Show a few interesting generated tests.
    println!("\nSample generated test:");
    let sample = cycles
        .iter()
        .map(|c| generate(c).unwrap())
        .find(|t| {
            check_test(&model, t, &opts).unwrap().verdict == Verdict::Forbidden
                && t.threads.len() == 3
        })
        .expect("some 3-thread forbidden test");
    println!("{}", sample.to_litmus_string());
}
