//! Quickstart: parse a litmus test, check it against the LKMM, and
//! explain the verdict.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use linux_kernel_memory_model::{Herd, ModelChoice};
use lkmm::{explain_violation, Lkmm, LkmmRelations};
use lkmm_exec::enumerate::{enumerate, EnumOptions};

const MESSAGE_PASSING: &str = r#"
C MP+wmb+rmb

// Figure 1 of the paper: message passing with write/read barriers.
{ x=0; y=0; }

P0(int *x, int *y)
{
    WRITE_ONCE(*x, 1);
    smp_wmb();
    WRITE_ONCE(*y, 1);
}

P1(int *x, int *y)
{
    int r1;
    int r2;
    r1 = READ_ONCE(*y);
    smp_rmb();
    r2 = READ_ONCE(*x);
}

exists (1:r1=1 /\ 1:r2=0)
"#;

fn main() {
    // 1. The one-call API.
    let herd = Herd::new(ModelChoice::Lkmm);
    let report = herd.check_source(MESSAGE_PASSING).expect("valid litmus");
    println!("{report}\n");

    // 2. Dig into *why*: find the weak-outcome candidate and show which
    //    axiom rejects it, paper-style.
    let test = lkmm_litmus::parse(MESSAGE_PASSING).unwrap();
    let execs = enumerate(&test, &EnumOptions::default()).unwrap();
    let weak = execs
        .iter()
        .find(|x| x.satisfies_prop(&test.condition.prop))
        .expect("the weak outcome is a candidate");

    let model = Lkmm::new();
    let axiom = model.violated_axiom(weak).expect("forbidden");
    println!("The weak outcome candidate violates: {axiom}");
    println!("{}", explain_violation(weak).expect("forbidden"));

    // 3. The intermediate relations of Figure 8 are all inspectable.
    let rels = LkmmRelations::compute(weak);
    println!("  wmb edges:  {:?}", rels.wmb);
    println!("  prop edges: {:?}", rels.prop);
    println!("  hb cycle:   {:?}", rels.hb.find_cycle());

    // 4. Events render as in the paper's execution diagrams.
    println!("\nWeak-outcome candidate execution:");
    for e in weak.events.iter() {
        println!("  {e}");
    }

    // 5. Compare models in one line each.
    for choice in [ModelChoice::Sc, ModelChoice::Tso, ModelChoice::C11, ModelChoice::LkmmCat] {
        let r = Herd::new(choice).check_source(MESSAGE_PASSING).unwrap();
        println!("{:10} says: {}", r.model_name, r.result.verdict);
    }
}
