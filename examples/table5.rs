//! Regenerate Table 5 of the paper: for each litmus test, the LKMM
//! verdict, observed/total counts on the four simulated architectures,
//! and the C11 verdict.
//!
//! ```sh
//! cargo run --release --example table5 [iterations]
//! ```
//!
//! Absolute counts differ from the paper (their testbeds ran for days on
//! real silicon; these are seeded simulators), but the *shape* matches:
//! forbidden rows show 0 everywhere, allowed rows are observed exactly on
//! the architectures weak enough to produce them.

use lkmm::Lkmm;
use lkmm_exec::enumerate::EnumOptions;
use lkmm_exec::{check_test, Verdict};
use lkmm_litmus::library;
use lkmm_models::OriginalC11;
use lkmm_sim::{run_test, Arch, RunConfig};

fn main() {
    let iterations: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000);
    let opts = EnumOptions::default();
    let lkmm = Lkmm::new();

    println!(
        "{:<26} {:>7} {:>12} {:>12} {:>12} {:>12} {:>7}",
        "Test", "Model", "Power8", "ARMv8", "ARMv7", "X86", "C11"
    );
    println!("{}", "-".repeat(95));
    for pt in library::table5() {
        let test = pt.test();
        let verdict = check_test(&lkmm, &test, &opts).unwrap().verdict;
        let mut cells = Vec::new();
        for arch in Arch::ALL {
            let stats = run_test(&test, arch, &RunConfig { iterations, seed: 0xA5F0 })
                .expect("simulation");
            cells.push(stats.table_cell());
        }
        let c11 = match pt.c11 {
            None => "-".to_string(),
            Some(_) => check_test(&OriginalC11, &test, &opts).unwrap().verdict.to_string(),
        };
        println!(
            "{:<26} {:>7} {:>12} {:>12} {:>12} {:>12} {:>7}",
            pt.name,
            verdict.to_string(),
            cells[0],
            cells[1],
            cells[2],
            cells[3],
            c11
        );
        // Sanity: forbidden ⇒ never observed (the paper's soundness).
        if verdict == Verdict::Forbidden {
            assert!(
                cells.iter().all(|c| c.starts_with("0/")),
                "{}: forbidden but observed!",
                pt.name
            );
        }
    }
    println!("\n({iterations} simulated runs per test per architecture; k=10^3, M=10^6, G=10^9)");
}
