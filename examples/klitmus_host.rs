//! Run the paper's litmus tests on *this machine* with real threads —
//! the klitmus experiment, minus the kernel module.
//!
//! ```sh
//! cargo run --release --example klitmus_host [iterations]
//! ```
//!
//! On an x86 host expect `SB`, `RWC` and `PeterZ-No-Synchro` to show
//! their weak outcomes (store buffering) and everything else to read 0;
//! on an ARM host, `MP`, `WRC` and friends can light up too. Forbidden
//! rows must stay at 0 — that is the Table 5 soundness claim.

use lkmm::Lkmm;
use lkmm_exec::enumerate::EnumOptions;
use lkmm_exec::{check_test, Verdict};
use lkmm_klitmus::{run_on_host, HostConfig};
use lkmm_litmus::library;

fn main() {
    let iterations: u64 =
        std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(200_000);
    let model = Lkmm::new();
    let opts = EnumOptions::default();

    println!("{:<26} {:>8} {:>16}   histogram", "Test", "Model", "host observed");
    println!("{}", "-".repeat(100));
    for pt in library::table5() {
        let test = pt.test();
        let verdict = check_test(&model, &test, &opts).unwrap().verdict;
        let stats = run_on_host(&test, &HostConfig { iterations }).expect("host run");
        let top: Vec<String> = stats
            .histogram
            .iter()
            .map(|(k, v)| format!("{k}: {v}"))
            .take(3)
            .collect();
        println!(
            "{:<26} {:>8} {:>10}/{:<6} {}",
            pt.name,
            verdict.to_string(),
            stats.observed,
            stats.total,
            top.join("; ")
        );
        if verdict == Verdict::Forbidden {
            assert_eq!(stats.observed, 0, "{}: forbidden outcome on real hardware!", pt.name);
        }
    }
    println!("\nAll LKMM-forbidden outcomes: 0 observations on this host.");
}
