//! The RCU story end to end (paper §4 and §6):
//!
//! 1. the RCU axiom forbids Figures 10 and 11;
//! 2. the fundamental law agrees — and Theorem 1's equivalence is checked
//!    on every candidate execution;
//! 3. the Figure 15 implementation, substituted for the RCU primitives
//!    (Theorem 2), still forbids them;
//! 4. the same algorithm runs as a real threaded runtime and upholds the
//!    grace-period guarantee under stress.
//!
//! ```sh
//! cargo run --release --example rcu_verification
//! ```

use lkmm::Lkmm;
use lkmm_exec::enumerate::{enumerate, for_each_execution, EnumOptions};
use lkmm_exec::check_test;
use lkmm_litmus::library;
use lkmm_rcu::{check_equivalence, expand_rcu, satisfies_fundamental_law, Urcu};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn main() {
    let opts = EnumOptions::default();
    let model = Lkmm::new();

    for name in ["RCU-MP", "RCU-deferred-free"] {
        let test = library::by_name(name).unwrap().test();
        println!("== {name} ==");

        // (1) The RCU axiom.
        let r = check_test(&model, &test, &opts).unwrap();
        println!("  RCU axiom verdict: {}", r.verdict);

        // (2) The fundamental law on the weak-outcome candidate.
        let execs = enumerate(&test, &opts).unwrap();
        let weak = execs.iter().find(|x| x.satisfies_prop(&test.condition.prop)).unwrap();
        let law = satisfies_fundamental_law(weak);
        println!(
            "  fundamental law on the weak outcome: {} ({} (RSCS,GP) pair(s), no precedes \
             function works)",
            if law.holds() { "holds" } else { "violated" },
            law.pairs
        );

        // Theorem 1 across all candidates.
        let mut agree = 0usize;
        for_each_execution(&test, &opts, &mut |x| {
            assert!(check_equivalence(x).agree());
            agree += 1;
        })
        .unwrap();
        println!("  Theorem 1 equivalence verified on {agree} candidate executions");

        // (3) Theorem 2: substitute Figure 15.
        let expanded = expand_rcu(&test, &Default::default()).unwrap();
        let r2 = check_test(&model, &expanded, &opts).unwrap();
        println!(
            "  Figure 15 expansion ({} candidates): {}",
            r2.candidates, r2.verdict
        );
        assert_eq!(r.verdict, r2.verdict, "Theorem 2 violated!");
        println!();
    }

    // (4) The runtime: readers must never observe a retired object.
    println!("== runtime urcu stress (grace-period guarantee) ==");
    const READERS: usize = 4;
    const POISON: usize = usize::MAX;
    let rcu = Arc::new(Urcu::new(READERS));
    let slots: Arc<[AtomicUsize; 2]> = Arc::new([AtomicUsize::new(1), AtomicUsize::new(POISON)]);
    let current = Arc::new(AtomicUsize::new(0));
    let stop = Arc::new(AtomicUsize::new(0));

    let mut handles = Vec::new();
    for tid in 0..READERS {
        let (rcu, slots, current, stop) =
            (rcu.clone(), slots.clone(), current.clone(), stop.clone());
        handles.push(std::thread::spawn(move || {
            let mut reads = 0u64;
            while stop.load(Ordering::Acquire) == 0 {
                let _g = rcu.read_guard(tid);
                let idx = current.load(Ordering::Relaxed);
                let v = slots[idx].load(Ordering::Relaxed);
                assert_ne!(v, POISON, "reader observed freed memory!");
                reads += 1;
            }
            reads
        }));
    }
    for gen in 2..3_000usize {
        let old = current.load(Ordering::Relaxed);
        slots[1 - old].store(gen, Ordering::Relaxed);
        current.store(1 - old, Ordering::Relaxed);
        rcu.synchronize_rcu();
        slots[old].store(POISON, Ordering::Relaxed); // "free" after the GP
    }
    stop.store(1, Ordering::Release);
    let reads: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    println!("  {reads} reads across {READERS} readers, 2998 grace periods, zero violations");
}
