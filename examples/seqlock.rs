//! Verifying a kernel idiom end to end: a **seqlock**.
//!
//! Linux's seqlock lets a writer publish a multi-word datum while readers
//! retry instead of blocking: the writer bumps a sequence counter to odd,
//! writes the data, bumps it back to even; a reader snapshots the counter,
//! reads the data, re-reads the counter, and *accepts* only if both
//! snapshots are equal and even.
//!
//! The litmus question: can an accepting reader ever observe a torn datum
//! (`d1 = 1 ∧ d2 = 0`)? With the kernel's barriers (the counter accesses
//! ordered by `smp_wmb`/`smp_rmb` around the data) the LKMM forbids it;
//! strip the barriers and the torn read is allowed — exactly the kind of
//! bug the paper's model exists to catch.
//!
//! ```sh
//! cargo run --release --example seqlock
//! ```

use linux_kernel_memory_model::{Herd, ModelChoice};
use lkmm_exec::states::collect_states;
use lkmm_exec::enumerate::EnumOptions;

/// The reader accepts when it saw the counter even and unchanged; the
/// condition asks for an accepted-yet-torn read.
fn seqlock_source(wmb: &str, rmb: &str) -> String {
    format!(
        "C seqlock{suffix}\n\
         {{ seq=0; d1=0; d2=0; }}\n\
         P0(int *seq, int *d1, int *d2)\n\
         {{\n\
             WRITE_ONCE(*seq, 1);\n\
             {wmb}\n\
             WRITE_ONCE(*d1, 1);\n\
             WRITE_ONCE(*d2, 1);\n\
             {wmb}\n\
             WRITE_ONCE(*seq, 2);\n\
         }}\n\
         P1(int *seq, int *d1, int *d2)\n\
         {{\n\
             int s1;\n\
             int r1;\n\
             int r2;\n\
             int s2;\n\
             s1 = READ_ONCE(*seq);\n\
             {rmb}\n\
             r1 = READ_ONCE(*d1);\n\
             r2 = READ_ONCE(*d2);\n\
             {rmb}\n\
             s2 = READ_ONCE(*seq);\n\
         }}\n\
         exists (1:s1=0 /\\ 1:s2=0 /\\ 1:r1=1 /\\ 1:r2=0)",
        suffix = if wmb.is_empty() { "-broken" } else { "" },
    )
}

fn main() {
    let herd = Herd::new(ModelChoice::Lkmm);

    // With the kernel's barriers: an accepted read is never torn.
    let good = seqlock_source("smp_wmb();", "smp_rmb();");
    let report = herd.check_source(&good).unwrap();
    println!("{report}\n");
    assert!(!report.allowed(), "barriered seqlock must not tear");

    // Without the barriers the torn read is a real execution.
    let broken = seqlock_source("", "");
    let report = herd.check_source(&broken).unwrap();
    println!("{report}\n");
    assert!(report.allowed(), "barrier-free seqlock tears");

    // herd-style state histogram of the broken version: the torn state
    // appears among the allowed ones.
    let test = lkmm_litmus::parse(&broken).unwrap();
    let summary = collect_states(
        ModelChoice::Lkmm.model().as_ref(),
        &test,
        &EnumOptions::default(),
    )
    .unwrap();
    println!("{summary}");

    // And on the simulated hardware: the barriered version is never torn
    // on any architecture; the broken one tears on the weak machines.
    use lkmm_sim::{run_test, Arch, RunConfig};
    let good_test = lkmm_litmus::parse(&good).unwrap();
    let broken_test = lkmm_litmus::parse(&broken).unwrap();
    println!("\n{:<12} {:>14} {:>14}", "arch", "barriered", "barrier-free");
    for arch in Arch::ALL {
        let cfg = RunConfig { iterations: 20_000, seed: 0x5EC1 };
        let g = run_test(&good_test, arch, &cfg).unwrap();
        let b = run_test(&broken_test, arch, &cfg).unwrap();
        println!("{:<12} {:>14} {:>14}", arch.name(), g.table_cell(), b.table_cell());
        assert_eq!(g.observed, 0, "{}: torn read through barriers!", arch.name());
    }
}
