//! End-to-end cache correctness for the verdict store, driven through
//! the facade exactly as `herd-rs --store` drives it: a cold pass over
//! the library computes and persists, a warm pass over a reopened store
//! answers everything from disk with zero candidate enumerations and
//! result-identical outcomes, and a store with a torn or corrupted tail
//! recovers its valid prefix and recomputes only what was lost.

use linux_kernel_memory_model::service::{BatchChecker, Provenance, VerdictStore};
use linux_kernel_memory_model::ModelChoice;
use std::fs::OpenOptions;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;

/// A unique temp path per test (concurrent test binaries must not collide).
fn temp_store(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("lkmm-service-cache-{}-{tag}.bin", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

#[test]
fn warm_library_pass_is_pure_replay_with_identical_results() {
    let path = temp_store("warm");
    let model = ModelChoice::Lkmm.model();

    let cold = {
        let store = VerdictStore::open(&path).unwrap();
        assert_eq!(store.len(), 0);
        let mut checker = BatchChecker::new(model.as_ref(), store, "it");
        checker.check_library().unwrap()
    };
    assert_eq!(cold.hits, 0);
    assert!(cold.computed > 0);
    assert!(cold.candidates_enumerated > 0);

    // Reopen from disk: everything must replay, nothing may enumerate.
    let store = VerdictStore::open(&path).unwrap();
    assert_eq!(store.recovery().truncated_bytes(), 0);
    assert_eq!(store.len(), cold.computed);
    let mut checker = BatchChecker::new(model.as_ref(), store, "it");
    let warm = checker.check_library().unwrap();
    assert_eq!(warm.computed, 0);
    assert_eq!(warm.candidates_enumerated, 0);
    assert_eq!(warm.hits, cold.computed + cold.hits);
    assert_eq!(warm.deduped, cold.deduped);
    assert_eq!(cold.outcomes.len(), warm.outcomes.len());
    for (c, w) in cold.outcomes.iter().zip(&warm.outcomes) {
        assert_eq!(c.name, w.name);
        assert_eq!(c.key, w.key);
        assert_eq!(c.result(), w.result(), "{}: warm result differs from cold", c.name);
        assert_ne!(w.provenance, Provenance::Computed, "{}: warm pass recomputed", w.name);
    }

    std::fs::remove_file(&path).unwrap();
}

#[test]
fn torn_tail_is_truncated_and_recomputed() {
    let path = temp_store("torn");
    let model = ModelChoice::Lkmm.model();

    let cold = {
        let store = VerdictStore::open(&path).unwrap();
        let mut checker = BatchChecker::new(model.as_ref(), store, "it");
        checker.check_library().unwrap()
    };

    // Tear the last record: chop a few bytes off, as a crash mid-append
    // would.
    let file = OpenOptions::new().write(true).open(&path).unwrap();
    let len = file.metadata().unwrap().len();
    file.set_len(len - 5).unwrap();
    drop(file);

    let store = VerdictStore::open(&path).unwrap();
    assert!(store.recovery().truncated_bytes() > 0, "torn tail went unnoticed");
    assert_eq!(store.recovery().records, cold.computed - 1, "more than the tail was lost");
    let mut checker = BatchChecker::new(model.as_ref(), store, "it");
    let warm = checker.check_library().unwrap();
    assert_eq!(warm.computed, 1, "exactly the torn record should recompute");
    for (c, w) in cold.outcomes.iter().zip(&warm.outcomes) {
        assert_eq!(c.result(), w.result(), "{}: result changed across recovery", c.name);
    }

    // The recomputed record was appended: a third pass is pure replay.
    // (The previous checker must drop first — it holds the store lock.)
    drop(checker);
    let store = VerdictStore::open(&path).unwrap();
    assert_eq!(store.recovery().truncated_bytes(), 0);
    let mut checker = BatchChecker::new(model.as_ref(), store, "it");
    let third = checker.check_library().unwrap();
    assert_eq!(third.computed, 0);

    std::fs::remove_file(&path).unwrap();
}

#[test]
fn corrupt_mid_record_keeps_the_valid_prefix() {
    let path = temp_store("corrupt");
    let model = ModelChoice::Lkmm.model();

    let cold = {
        let store = VerdictStore::open(&path).unwrap();
        let mut checker = BatchChecker::new(model.as_ref(), store, "it");
        checker.check_library().unwrap()
    };

    // Flip one byte halfway into the log: the checksum of the record it
    // lands in must fail, and everything from that record on is dropped.
    let mut file = OpenOptions::new().read(true).write(true).open(&path).unwrap();
    let len = file.metadata().unwrap().len();
    let target = len / 2;
    let mut byte = [0u8; 1];
    file.seek(SeekFrom::Start(target)).unwrap();
    file.read_exact(&mut byte).unwrap();
    byte[0] ^= 0xff;
    file.seek(SeekFrom::Start(target)).unwrap();
    file.write_all(&byte).unwrap();
    drop(file);

    let store = VerdictStore::open(&path).unwrap();
    let recovered = store.recovery().records;
    assert!(recovered > 0, "prefix before the corruption was lost");
    assert!(recovered < cold.computed, "corruption went unnoticed");
    assert!(store.recovery().truncated_bytes() > 0);

    let mut checker = BatchChecker::new(model.as_ref(), store, "it");
    let warm = checker.check_library().unwrap();
    assert_eq!(warm.computed, cold.computed - recovered);
    assert_eq!(warm.hits + warm.deduped + warm.computed, cold.outcomes.len());
    for (c, w) in cold.outcomes.iter().zip(&warm.outcomes) {
        assert_eq!(c.result(), w.result(), "{}: result changed across recovery", c.name);
    }

    std::fs::remove_file(&path).unwrap();
}
