//! The conformance engine end to end (ISSUE satellite: oracle invariant
//! coverage on the full named library).
//!
//! The contract under test: a campaign over the paper's whole library
//! holds every oracle — native ≡ cat everywhere, the SC ⊆ TSO ⊆ LKMM
//! envelope on non-RCU tests, seeded simulator soundness, and the §5.2
//! C11 divergence whitelist — while an artificially broken checker is
//! caught, and its discrepancy shrinks to a minimal litmus test that
//! still discriminates the two disagreeing checkers.

use linux_kernel_memory_model::conformance::{
    human_table, json_report, recheck_violated, run_campaign, run_campaign_with, test_size,
    CampaignConfig, ModelId, ModelSet, OracleKind, Recheck, SimConfig,
};
use linux_kernel_memory_model::exec::{
    ConsistencyModel, EnumOptions, Execution, PipelineOptions,
};
use linux_kernel_memory_model::litmus::library;
use linux_kernel_memory_model::service::json::Json;

/// Library-only campaign with a small seeded simulator pass and the
/// shrinker armed — cheap enough for CI, exercises every layer.
fn library_campaign() -> CampaignConfig {
    CampaignConfig {
        max_cycle_len: 0,
        sim: SimConfig { iterations: 50, seed: 7, stride: 1 },
        ..CampaignConfig::default()
    }
}

#[test]
fn full_library_holds_every_oracle() {
    let report = run_campaign(&library_campaign()).unwrap();
    assert_eq!(report.corpus_library, library::all().len());
    assert!(
        report.clean(),
        "reference models disagree: {:#?}",
        report.discrepancies.iter().map(|d| &d.detail).collect::<Vec<_>>()
    );
    // Native ≡ cat was checked on every row, violated nowhere.
    let agreement = &report.oracles[0];
    assert_eq!(agreement.kind, OracleKind::NativeCatAgreement);
    assert_eq!(agreement.summary.checked, library::all().len());
    assert_eq!(agreement.summary.violations, 0);
    // The soundness pass actually ran: every LKMM-forbidden non-SRCU
    // test × four architectures.
    let sim = &report.oracles[2];
    assert_eq!(sim.kind, OracleKind::SimSoundness);
    assert!(sim.summary.checked > 0, "no simulator runs happened");
    assert_eq!(sim.summary.violations, 0);
    // The C11 column: checked on every C11-supported row, no
    // expectation misses, no unlicensed divergences.
    let c11 = &report.oracles[3];
    assert_eq!(c11.kind, OracleKind::C11Divergence);
    assert_eq!(c11.summary.violations, 0);
    assert!(c11.summary.checked > 0);
}

/// A checker that forbids everything: maximally wrong in the direction
/// the agreement oracle (and only the witnesses count of the native
/// model) can see.
struct ForbidAll;

impl ConsistencyModel for ForbidAll {
    fn name(&self) -> &str {
        "forbid-all"
    }

    fn allows(&self, _x: &Execution) -> bool {
        false
    }
}

#[test]
fn broken_cat_column_is_caught_and_shrunk() {
    let mut set = ModelSet::standard();
    set.replace(ModelId::LkmmCat, Box::new(ForbidAll));
    let cfg = CampaignConfig {
        sim: SimConfig { iterations: 0, ..SimConfig::default() },
        ..library_campaign()
    };
    let report = run_campaign_with(&cfg, &set).unwrap();
    assert!(!report.clean(), "a forbid-everything cat column must disagree somewhere");

    let d = report
        .discrepancies
        .iter()
        .find(|d| d.oracle == OracleKind::NativeCatAgreement)
        .expect("agreement oracle fires");
    assert!(matches!(
        d.check,
        Recheck::ResultAgreement { left: ModelId::LkmmNative, right: ModelId::LkmmCat }
    ));

    // The shrunk witness: no larger than the original, still a valid
    // litmus test, and still discriminating the two checkers.
    let shrunk = d.shrunk.as_ref().expect("campaign shrinks by default");
    assert!(shrunk.size <= test_size(&d.test), "shrinking grew the test");
    let witness = linux_kernel_memory_model::litmus::parse(&shrunk.litmus)
        .expect("shrunk witness re-parses");
    assert_eq!(test_size(&witness), shrunk.size);
    assert!(
        recheck_violated(
            &d.check,
            &witness,
            &set,
            &EnumOptions::default(),
            &PipelineOptions::default(),
        ),
        "minimal witness no longer discriminates native from the mutant cat"
    );
    // And against the *healthy* set the same witness is clean — the
    // discrepancy really is the mutant's fault.
    assert!(!recheck_violated(
        &d.check,
        &witness,
        &ModelSet::standard(),
        &EnumOptions::default(),
        &PipelineOptions::default(),
    ));
}

#[test]
fn envelope_oracle_sees_through_a_weakened_hardware_model() {
    // An allow-everything TSO violates SC ⊆ TSO nowhere (supersets are
    // fine) but breaks TSO ⊆ LKMM wherever the LKMM forbids: the
    // envelope oracle must attribute it to the (tso, lkmm) pair.
    struct AllowAll;
    impl ConsistencyModel for AllowAll {
        fn name(&self) -> &str {
            "allow-all"
        }
        fn allows(&self, _x: &Execution) -> bool {
            true
        }
    }
    let mut set = ModelSet::standard();
    set.replace(ModelId::Tso, Box::new(AllowAll));
    let cfg = CampaignConfig {
        sim: SimConfig { iterations: 0, ..SimConfig::default() },
        shrink: false,
        ..library_campaign()
    };
    let report = run_campaign_with(&cfg, &set).unwrap();
    let envelope: Vec<_> = report
        .discrepancies
        .iter()
        .filter(|d| d.oracle == OracleKind::EnvelopeOrdering)
        .collect();
    assert!(!envelope.is_empty());
    assert!(envelope.iter().all(|d| matches!(
        d.check,
        Recheck::Envelope { sub: ModelId::Tso, envelope: ModelId::LkmmNative }
    )));
    // SB+mbs is the classic case: TSO genuinely forbids it, so the
    // mutant's Allowed verdict violates the envelope there.
    assert!(envelope.iter().any(|d| d.test_name == "SB+mbs"));
}

#[test]
fn reports_render_and_stay_deterministic_across_runs() {
    let cfg = library_campaign();
    let a = run_campaign(&cfg).unwrap();
    let b = run_campaign(&cfg).unwrap();
    let ja = json_report(&a, &cfg).to_string();
    let jb = json_report(&b, &cfg).to_string();
    assert_eq!(ja, jb, "same config must render byte-identical JSON");
    let v = Json::parse(&ja).unwrap();
    assert_eq!(v.get("clean").and_then(Json::as_bool), Some(true));
    assert_eq!(
        v.get("corpus").and_then(|c| c.get("library")).and_then(Json::as_u64),
        Some(library::all().len() as u64)
    );
    assert!(human_table(&a).contains("no discrepancies"));
}
