//! Cross-check: the parallel pipeline is observably identical to the
//! sequential checker on the full built-in library, for every model that
//! exercises a distinct session path (native LKMM with its statics cache,
//! the interpreted cat LKMM with its environment cache, and a stateless
//! comparison model).

use linux_kernel_memory_model::{Herd, ModelChoice};
use lkmm_exec::enumerate::EnumOptions;
use lkmm_exec::{check_test, check_test_pipelined, PipelineOptions};
use lkmm_litmus::library;

fn pipeline_matches_sequential(choice: ModelChoice) {
    let model = choice.model();
    let opts = EnumOptions::default();
    for pt in library::all() {
        let t = pt.test();
        let seq = check_test(model.as_ref(), &t, &opts).unwrap();
        for jobs in [1, 2, 8] {
            let par = check_test_pipelined(
                model.as_ref(),
                &t,
                &opts,
                &PipelineOptions { jobs, ..Default::default() },
            )
            .unwrap();
            assert_eq!(
                par, seq,
                "{} diverged from sequential under {:?} with jobs={jobs}",
                pt.name, choice
            );
        }
    }
}

#[test]
fn lkmm_pipeline_matches_sequential_on_library() {
    pipeline_matches_sequential(ModelChoice::Lkmm);
}

#[test]
fn cat_pipeline_matches_sequential_on_library() {
    pipeline_matches_sequential(ModelChoice::LkmmCat);
}

#[test]
fn stateless_model_pipeline_matches_sequential_on_library() {
    // SC has no session, so this covers the stateless fallback path.
    pipeline_matches_sequential(ModelChoice::Sc);
}

#[test]
fn early_exit_agrees_on_verdict_and_condition() {
    let model = ModelChoice::Lkmm.model();
    let opts = EnumOptions::default();
    for pt in library::all() {
        let t = pt.test();
        let full = check_test(model.as_ref(), &t, &opts).unwrap();
        for jobs in [1, 4] {
            let fast = check_test_pipelined(
                model.as_ref(),
                &t,
                &opts,
                &PipelineOptions { jobs, early_exit: true, ..Default::default() },
            )
            .unwrap();
            assert_eq!(fast.verdict, full.verdict, "{} jobs={jobs}", pt.name);
            assert_eq!(
                fast.condition_holds, full.condition_holds,
                "{} jobs={jobs}",
                pt.name
            );
            // Early exit can only do less work, and its counts are
            // consistent lower bounds.
            assert!(fast.candidates <= full.candidates, "{}", pt.name);
            assert!(fast.witnesses <= full.witnesses, "{}", pt.name);
            assert!(fast.allowed <= full.allowed, "{}", pt.name);
        }
    }
}

#[test]
fn herd_reports_are_job_count_invariant() {
    // What `herd-rs --library` prints is a pure function of the Report
    // fields, so equal reports mean byte-identical CLI output.
    let base = Herd::new(ModelChoice::Lkmm).with_jobs(1);
    for jobs in [0, 2, 8] {
        let herd = Herd::new(ModelChoice::Lkmm).with_jobs(jobs);
        for pt in library::all() {
            let t = pt.test();
            let a = base.check(&t).unwrap();
            let b = herd.check(&t).unwrap();
            assert_eq!(a.result, b.result, "{} jobs={jobs}", pt.name);
            assert_eq!(a.to_string(), b.to_string(), "{} jobs={jobs}", pt.name);
        }
    }
}
