//! Cross-check: the parallel pipeline is observably identical to the
//! sequential checker on the full built-in library, for every model that
//! exercises a distinct session path (native LKMM with its statics cache,
//! the interpreted cat LKMM with its environment cache, and a stateless
//! comparison model) — and, over a jobs × batch-size grid, on the
//! corpora whose candidate streams stress the batched data plane from
//! different directions: the contended-twin corpus (coherence-dominated
//! streams full of doomed candidates) and an algorithms family
//! (generated programs far bigger than any library litmus test).

use linux_kernel_memory_model::{Herd, ModelChoice};
use lkmm_exec::enumerate::EnumOptions;
use lkmm_exec::{
    check_test, check_test_governed, check_test_pipelined, Budget, BudgetKind, CheckOutcome,
    InconclusiveReason, PipelineOptions,
};
use lkmm_litmus::ast::Test;
use lkmm_litmus::library;

fn pipeline_matches_sequential(choice: ModelChoice) {
    let model = choice.model();
    let opts = EnumOptions::default();
    for pt in library::all() {
        let t = pt.test();
        let seq = check_test(model.as_ref(), &t, &opts).unwrap();
        for jobs in [1, 2, 8] {
            let par = check_test_pipelined(
                model.as_ref(),
                &t,
                &opts,
                &PipelineOptions { jobs, ..Default::default() },
            )
            .unwrap();
            assert_eq!(
                par, seq,
                "{} diverged from sequential under {:?} with jobs={jobs}",
                pt.name, choice
            );
        }
    }
}

#[test]
fn lkmm_pipeline_matches_sequential_on_library() {
    pipeline_matches_sequential(ModelChoice::Lkmm);
}

#[test]
fn cat_pipeline_matches_sequential_on_library() {
    pipeline_matches_sequential(ModelChoice::LkmmCat);
}

#[test]
fn stateless_model_pipeline_matches_sequential_on_library() {
    // SC has no session, so this covers the stateless fallback path.
    pipeline_matches_sequential(ModelChoice::Sc);
}

/// Bit-identity of every [`lkmm_exec::TestResult`] field over the full
/// jobs × batch-size grid: explicit batch sizes straddling the
/// automatic one (1 = maximal queue traffic, 4 = mid-size batches, 0 =
/// cost-derived) must not shift a single count at any worker count.
fn grid_matches_sequential(model: &dyn lkmm_exec::ConsistencyModel, tests: &[Test]) {
    let opts = EnumOptions::default();
    for t in tests {
        let seq = check_test(model, t, &opts).unwrap();
        for jobs in [1, 2, 8] {
            for batch_size in [1, 4, 0] {
                let par = check_test_pipelined(
                    model,
                    t,
                    &opts,
                    &PipelineOptions { jobs, batch_size, ..Default::default() },
                )
                .unwrap();
                assert_eq!(
                    par, seq,
                    "{} diverged at jobs={jobs} batch={batch_size}",
                    t.name
                );
            }
        }
    }
}

#[test]
fn jobs_batch_grid_matches_sequential_on_library() {
    let tests: Vec<Test> = library::all().iter().map(|pt| pt.test()).collect();
    grid_matches_sequential(ModelChoice::Lkmm.model().as_ref(), &tests);
}

/// The contended-twin corpus: every event of a cycle's test collapsed
/// onto one location, so coherence prunes most of the candidate space
/// and the stream is dominated by doomed candidates — the shape where
/// batches fill unevenly across pre-executions.
fn contended_twins() -> Vec<Test> {
    use lkmm_generator::{generate_contended, Edge, Extremity::*, InternalKind::*};
    let cycles: [&[Edge]; 3] = [
        // MP: W->W po, rfe, R->R po, fre
        &[Edge::internal(Po, W, W), Edge::Rfe, Edge::internal(Po, R, R), Edge::Fre],
        // SB: W->R po, fre, W->R po, fre
        &[Edge::internal(Po, W, R), Edge::Fre, Edge::internal(Po, W, R), Edge::Fre],
        // 2+2W-style: W->W po, coe, W->W po, coe
        &[Edge::internal(Po, W, W), Edge::Coe, Edge::internal(Po, W, W), Edge::Coe],
    ];
    let twins: Vec<Test> =
        cycles.iter().filter_map(|c| generate_contended(c).ok()).collect();
    assert!(twins.len() >= 2, "contended corpus generates");
    twins
}

#[test]
fn jobs_batch_grid_matches_sequential_on_contended_twins() {
    grid_matches_sequential(ModelChoice::Lkmm.model().as_ref(), &contended_twins());
}

#[test]
fn jobs_batch_grid_matches_sequential_on_algorithms_family() {
    // Ticket-lock programs are straight-line (no `__assume`) and much
    // larger than library litmus tests, so the auto batch size lands
    // low and budget/queue interplay differs from the litmus corpora.
    let params = lkmm_algorithms::FamilyParams::default();
    let tests: Vec<Test> = lkmm_algorithms::programs(lkmm_algorithms::FamilyId::Ticket, &params)
        .unwrap()
        .into_iter()
        .map(|p| p.test)
        .collect();
    assert!(!tests.is_empty(), "ticket family generates");
    grid_matches_sequential(ModelChoice::Lkmm.model().as_ref(), &tests);
}

#[test]
fn budget_trip_mid_batch_is_deterministic_across_jobs_and_batches() {
    // A candidate budget that trips mid-batch: the partial tally must
    // be exactly the budget at every job count and batch size, because
    // candidate fuel is spent only by the single-threaded enumerator
    // and flushed partial batches are still evaluated.
    let model = ModelChoice::Lkmm.model();
    let t = library::by_name("RWC").expect("RWC is in the library").test();
    let opts = EnumOptions {
        budget: Budget::default().with_max_candidates(7),
        ..EnumOptions::default()
    };
    for jobs in [1, 2, 8] {
        for batch_size in [1, 4, 0] {
            let outcome = check_test_governed(
                model.as_ref(),
                &t,
                &opts,
                &PipelineOptions { jobs, batch_size, ..Default::default() },
            );
            match outcome {
                CheckOutcome::Inconclusive { reason, partial } => {
                    assert_eq!(
                        reason,
                        InconclusiveReason::BudgetExceeded(BudgetKind::Candidates),
                        "jobs={jobs} batch={batch_size}"
                    );
                    assert_eq!(partial.candidates, 7, "jobs={jobs} batch={batch_size}");
                }
                CheckOutcome::Complete(_) => {
                    panic!("RWC has more than 7 candidates (jobs={jobs} batch={batch_size})")
                }
            }
        }
    }
}

#[test]
fn early_exit_agrees_on_verdict_and_condition() {
    let model = ModelChoice::Lkmm.model();
    let opts = EnumOptions::default();
    for pt in library::all() {
        let t = pt.test();
        let full = check_test(model.as_ref(), &t, &opts).unwrap();
        for jobs in [1, 4] {
            let fast = check_test_pipelined(
                model.as_ref(),
                &t,
                &opts,
                &PipelineOptions { jobs, early_exit: true, ..Default::default() },
            )
            .unwrap();
            assert_eq!(fast.verdict, full.verdict, "{} jobs={jobs}", pt.name);
            assert_eq!(
                fast.condition_holds, full.condition_holds,
                "{} jobs={jobs}",
                pt.name
            );
            // Early exit can only do less work, and its counts are
            // consistent lower bounds.
            assert!(fast.candidates <= full.candidates, "{}", pt.name);
            assert!(fast.witnesses <= full.witnesses, "{}", pt.name);
            assert!(fast.allowed <= full.allowed, "{}", pt.name);
        }
    }
}

#[test]
fn herd_reports_are_job_count_invariant() {
    // What `herd-rs --library` prints is a pure function of the Report
    // fields, so equal reports mean byte-identical CLI output.
    let base = Herd::new(ModelChoice::Lkmm).with_jobs(1);
    for jobs in [0, 2, 8] {
        let herd = Herd::new(ModelChoice::Lkmm).with_jobs(jobs);
        for pt in library::all() {
            let t = pt.test();
            let a = base.check(&t).unwrap();
            let b = herd.check(&t).unwrap();
            assert_eq!(a.result, b.result, "{} jobs={jobs}", pt.name);
            assert_eq!(a.to_string(), b.to_string(), "{} jobs={jobs}", pt.name);
        }
    }
}
