//! Locking semantics (paper §7 and Table 2): spinlocks emulated as
//! acquire-RMW / store-release, reproducing the LKML findings the model
//! helped settle — in particular that an UNLOCK+LOCK pair is *not* a full
//! barrier (the srcu ordering fix \[64\] and the ARM64 `spin_unlock_wait`
//! discussions \[26, 83\]).

use linux_kernel_memory_model::{Herd, ModelChoice};
use lkmm_exec::Verdict;

fn lkmm(source: &str) -> Verdict {
    Herd::new(ModelChoice::Lkmm).check_source(source).unwrap().result.verdict
}

/// \[64\]: code incorrectly relied on fully ordered lock-unlock pairs.
/// An UNLOCK followed by a LOCK on the *same* CPU does not order a write
/// before a later read (no strong fence): SB through unlock+lock remains
/// observable.
#[test]
fn unlock_lock_is_not_a_full_barrier() {
    let v = lkmm(
        "C SB+unlock-lock+unlock-lock\n{ s=0; t=0; x=0; y=0; }\n\
         P0(spinlock_t *s, int *x, int *y) { int r0; spin_lock(&s); \
         WRITE_ONCE(*x, 1); spin_unlock(&s); spin_lock(&s); \
         r0 = READ_ONCE(*y); spin_unlock(&s); }\n\
         P1(spinlock_t *t, int *x, int *y) { int r0; spin_lock(&t); \
         WRITE_ONCE(*y, 1); spin_unlock(&t); spin_lock(&t); \
         r0 = READ_ONCE(*x); spin_unlock(&t); }\n\
         exists (0:r0=0 /\\ 1:r0=0)",
    );
    assert_eq!(v, Verdict::Allowed, "unlock+lock must not restore SC");
}

/// The fix for \[64\]: an explicit smp_mb (the kernel grew
/// `smp_mb__after_unlock_lock` for this) does forbid it.
#[test]
fn unlock_lock_plus_mb_is_a_full_barrier() {
    let v = lkmm(
        "C SB+unlock-lock-mb+unlock-lock-mb\n{ s=0; t=0; x=0; y=0; }\n\
         P0(spinlock_t *s, int *x, int *y) { int r0; spin_lock(&s); \
         WRITE_ONCE(*x, 1); spin_unlock(&s); spin_lock(&s); smp_mb(); \
         r0 = READ_ONCE(*y); spin_unlock(&s); }\n\
         P1(spinlock_t *t, int *x, int *y) { int r0; spin_lock(&t); \
         WRITE_ONCE(*y, 1); spin_unlock(&t); spin_lock(&t); smp_mb(); \
         r0 = READ_ONCE(*x); spin_unlock(&t); }\n\
         exists (0:r0=0 /\\ 1:r0=0)",
    );
    assert_eq!(v, Verdict::Forbidden);
}

/// Critical sections on the *same* lock are ordered: message passing
/// through a lock works (the roach-motel property of acquire/release).
#[test]
fn same_lock_critical_sections_give_message_passing() {
    let v = lkmm(
        "C MP+locks\n{ s=0; x=0; y=0; }\n\
         P0(spinlock_t *s, int *x, int *y) { WRITE_ONCE(*x, 1); spin_lock(&s); \
         WRITE_ONCE(*y, 1); spin_unlock(&s); }\n\
         P1(spinlock_t *s, int *x, int *y) { int r0; int r1; spin_lock(&s); \
         r0 = READ_ONCE(*y); spin_unlock(&s); r1 = READ_ONCE(*x); }\n\
         exists (1:r0=1 /\\ 1:r1=0)",
    );
    assert_eq!(v, Verdict::Forbidden, "lock hand-off must publish prior writes");
}

/// Accesses are free to *enter* a critical section (roach motel): a write
/// before a lock may be delayed into it, so it is not ordered against a
/// later read inside the section.
#[test]
fn roach_motel_allows_sb_into_critical_sections() {
    let v = lkmm(
        "C SB+into-cs\n{ s=0; t=0; x=0; y=0; }\n\
         P0(spinlock_t *s, int *x, int *y) { int r0; WRITE_ONCE(*x, 1); \
         spin_lock(&s); r0 = READ_ONCE(*y); spin_unlock(&s); }\n\
         P1(spinlock_t *t, int *x, int *y) { int r0; WRITE_ONCE(*y, 1); \
         spin_lock(&t); r0 = READ_ONCE(*x); spin_unlock(&t); }\n\
         exists (0:r0=0 /\\ 1:r0=0)",
    );
    assert_eq!(v, Verdict::Allowed);
}

/// Lock acquisitions on one lock form a total order: two critical
/// sections cannot both observe the other's write as missing.
#[test]
fn lock_acquisitions_totally_ordered() {
    let v = lkmm(
        "C SB+in-same-lock\n{ s=0; x=0; y=0; }\n\
         P0(spinlock_t *s, int *x, int *y) { int r0; spin_lock(&s); \
         WRITE_ONCE(*x, 1); r0 = READ_ONCE(*y); spin_unlock(&s); }\n\
         P1(spinlock_t *s, int *x, int *y) { int r0; spin_lock(&s); \
         WRITE_ONCE(*y, 1); r0 = READ_ONCE(*x); spin_unlock(&s); }\n\
         exists (0:r0=0 /\\ 1:r0=0)",
    );
    assert_eq!(v, Verdict::Forbidden, "mutual exclusion forbids both-miss");
}

/// Host validation: the same-lock properties hold with real CAS loops on
/// real threads.
#[test]
fn locking_properties_hold_on_host() {
    use lkmm_klitmus::{run_on_host, HostConfig};
    let forbidden = [
        "C MP+locks\n{ s=0; x=0; y=0; }\n\
         P0(spinlock_t *s, int *x, int *y) { WRITE_ONCE(*x, 1); spin_lock(&s); \
         WRITE_ONCE(*y, 1); spin_unlock(&s); }\n\
         P1(spinlock_t *s, int *x, int *y) { int r0; int r1; spin_lock(&s); \
         r0 = READ_ONCE(*y); spin_unlock(&s); r1 = READ_ONCE(*x); }\n\
         exists (1:r0=1 /\\ 1:r1=0)",
    ];
    for src in forbidden {
        let test = lkmm_litmus::parse(src).unwrap();
        let stats = run_on_host(&test, &HostConfig { iterations: 10_000 }).unwrap();
        assert_eq!(stats.observed, 0, "{}", test.name);
    }
}
