//! Cross-checks for single-enumeration multi-model checking: a model
//! set decided from one pass per test must be *bit-identical* to N
//! sequential single-model runs — same verdicts, same counts, same
//! cache keys — at every job count, on cold and warm stores, and a
//! budget trip must stop every model together with job-count-
//! deterministic partial tallies (PR-3 semantics).

use linux_kernel_memory_model::litmus::{self, ast::Test};
use linux_kernel_memory_model::service::{
    BatchChecker, MultiBatchChecker, MultiColumn, VerdictStore,
};
use linux_kernel_memory_model::{Budget, Herd, ModelChoice, MultiCheckOutcome};
use std::path::PathBuf;

/// Every checker, in conformance-matrix column order.
const ALL: [ModelChoice; 7] = [
    ModelChoice::Lkmm,
    ModelChoice::LkmmCat,
    ModelChoice::Sc,
    ModelChoice::Tso,
    ModelChoice::Armv8,
    ModelChoice::Power,
    ModelChoice::C11,
];

fn library() -> Vec<Test> {
    litmus::library::all().iter().map(|pt| pt.test()).collect()
}

/// A unique temp path per test (concurrent test binaries must not collide).
fn temp_store(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("lkmm-multimodel-{}-{tag}.bin", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

#[test]
fn library_model_set_matches_sequential_single_model_runs() {
    let tests = library();
    // Sequential baselines: one dedicated single-model Herd per checker.
    let baselines: Vec<Vec<_>> = ALL
        .iter()
        .map(|&choice| {
            let herd = Herd::new(choice);
            tests.iter().map(|t| herd.check(t).unwrap().result).collect()
        })
        .collect();

    for jobs in [1usize, 2, 8] {
        let herd = Herd::new_multi(&ALL).with_jobs(jobs);
        for (ti, t) in tests.iter().enumerate() {
            let reports = herd.check_multi(t).unwrap();
            assert_eq!(reports.len(), ALL.len());
            for (mi, report) in reports.iter().enumerate() {
                assert_eq!(
                    report.result, baselines[mi][ti],
                    "{} under {} diverges from its sequential run at jobs={jobs}",
                    t.name, report.model_name
                );
            }
        }
    }
}

#[test]
fn store_backed_model_set_is_bit_identical_cold_and_warm() {
    let tests = library();
    let path = temp_store("store");
    let models: Vec<_> = ALL.iter().map(|c| c.model()).collect();
    let salts: Vec<String> =
        models.iter().map(|m| format!("mm|col:{}", m.name())).collect();
    let columns = || -> Vec<MultiColumn<'_>> {
        models
            .iter()
            .zip(&salts)
            .map(|(m, salt)| MultiColumn { model: m.as_ref(), salt: salt.clone() })
            .collect()
    };
    let mask = vec![vec![true; tests.len()]; models.len()];

    let cold = {
        let store = VerdictStore::open(&path).unwrap();
        let mut multi = MultiBatchChecker::new(columns(), store).with_jobs(2);
        multi.check_corpus(&tests, &mask).unwrap()
    };
    assert_eq!(cold.enumeration_passes + cold.columns[0].deduped, tests.len());
    assert!(cold.candidates_actual > 0);

    // Each column, bit for bit, against a dedicated single-model
    // BatchChecker built with the same salt on its own cold store.
    for (c, (model, salt)) in models.iter().zip(&salts).enumerate() {
        let mut single = BatchChecker::new(model.as_ref(), VerdictStore::in_memory(), salt);
        let seq = single.check_corpus(&tests).unwrap();
        assert_eq!(cold.columns[c].hits, seq.hits);
        assert_eq!(cold.columns[c].computed, seq.computed);
        assert_eq!(cold.columns[c].deduped, seq.deduped);
        assert_eq!(cold.columns[c].candidates_enumerated, seq.candidates_enumerated);
        for (m, s) in cold.columns[c].outcomes.iter().zip(&seq.outcomes) {
            let m = m.as_ref().unwrap();
            assert_eq!(m.key, s.key, "{}: cache key diverged", s.name);
            assert_eq!(m.outcome.result(), s.outcome.result(), "{}: verdict diverged", s.name);
            assert_eq!(m.provenance, s.provenance, "{}: provenance diverged", s.name);
        }
    }

    // Warm replay from the reopened on-disk store: zero enumeration,
    // every slot answered, results identical to the cold pass.
    let store = VerdictStore::open(&path).unwrap();
    assert_eq!(store.recovery().truncated_bytes(), 0);
    let mut multi = MultiBatchChecker::new(columns(), store).with_jobs(8);
    let warm = multi.check_corpus(&tests, &mask).unwrap();
    assert_eq!(warm.enumeration_passes, 0);
    assert_eq!(warm.candidates_actual, 0);
    for (c, w) in cold.columns.iter().zip(&warm.columns) {
        assert_eq!(w.computed, 0);
        assert_eq!(w.hits + w.deduped, tests.len());
        for (co, wo) in c.outcomes.iter().zip(&w.outcomes) {
            assert_eq!(
                co.as_ref().unwrap().outcome.result(),
                wo.as_ref().unwrap().outcome.result()
            );
        }
    }

    std::fs::remove_file(&path).unwrap();
}

#[test]
fn budget_trip_stops_every_model_with_job_count_deterministic_partials() {
    // SB+mbs enumerates well over two candidates under every model, so a
    // two-candidate fuel allowance must trip mid-enumeration.
    let t = litmus::library::by_name("SB+mbs").unwrap().test();
    let set = [ModelChoice::Lkmm, ModelChoice::Sc, ModelChoice::C11];

    let mut seen = Vec::new();
    for jobs in [1usize, 2, 8] {
        let herd = Herd::new_multi(&set)
            .with_jobs(jobs)
            .with_budget(Budget::default().with_max_candidates(2));
        let governed = herd.check_multi_governed(&t);
        assert!(governed.reports().is_none());
        let MultiCheckOutcome::Inconclusive { reason, partials } = governed.outcome else {
            panic!("a two-candidate budget must be inconclusive on SB+mbs");
        };
        assert_eq!(partials.len(), set.len(), "one partial tally per model");
        // One shared pass: every model saw exactly the same candidates.
        for p in &partials {
            assert_eq!(p.candidates, partials[0].candidates);
            assert!(p.candidates <= 2, "fuel overrun: {}", p.candidates);
        }
        seen.push((format!("{reason}"), partials));
    }
    // PR-3 semantics carry over: the stop reason and the exact partial
    // tallies are identical no matter how many workers ran the check.
    for (reason, partials) in &seen[1..] {
        assert_eq!(reason, &seen[0].0);
        assert_eq!(partials, &seen[0].1);
    }
}
