//! End-to-end integration: every result the paper reports, checked
//! through the public facade API.

use linux_kernel_memory_model::{Herd, ModelChoice};
use lkmm_exec::Verdict;
use lkmm_litmus::library::{self, Expect};

fn expect_to_verdict(e: Expect) -> Verdict {
    match e {
        Expect::Allowed => Verdict::Allowed,
        Expect::Forbidden => Verdict::Forbidden,
    }
}

#[test]
fn table5_model_column_via_facade() {
    let herd = Herd::new(ModelChoice::Lkmm);
    for pt in library::table5() {
        let report = herd.check(&pt.test()).unwrap();
        assert_eq!(report.result.verdict, expect_to_verdict(pt.lkmm), "{}", pt.name);
    }
}

#[test]
fn table5_c11_column_via_facade() {
    let herd = Herd::new(ModelChoice::C11);
    for pt in library::table5() {
        let Some(c11) = pt.c11 else { continue };
        let report = herd.check(&pt.test()).unwrap();
        assert_eq!(report.result.verdict, expect_to_verdict(c11), "{}", pt.name);
    }
}

#[test]
fn interpreted_cat_model_matches_native_on_all_figures() {
    let native = Herd::new(ModelChoice::Lkmm);
    let cat = Herd::new(ModelChoice::LkmmCat);
    for pt in library::all() {
        let t = pt.test();
        let a = native.check(&t).unwrap().result;
        let b = cat.check(&t).unwrap().result;
        assert_eq!(a.verdict, b.verdict, "{}", pt.name);
        assert_eq!(a.allowed, b.allowed, "{}", pt.name);
    }
}

#[test]
fn sc_forbids_everything_lkmm_forbids() {
    let sc = Herd::new(ModelChoice::Sc);
    for pt in library::all() {
        if pt.lkmm == Expect::Forbidden {
            let report = sc.check(&pt.test()).unwrap();
            assert_eq!(report.result.verdict, Verdict::Forbidden, "{}", pt.name);
        }
    }
}

#[test]
fn round_trip_print_parse_check() {
    // Print every library test, re-parse it, and verify the verdict is
    // unchanged — the full front-end loop.
    let herd = Herd::new(ModelChoice::Lkmm);
    for pt in library::all() {
        let t = pt.test();
        let reparsed = lkmm_litmus::parse(&t.to_litmus_string()).unwrap();
        let a = herd.check(&t).unwrap().result.verdict;
        let b = herd.check(&reparsed).unwrap().result.verdict;
        assert_eq!(a, b, "{}", pt.name);
    }
}

#[test]
fn section7_locking_emulation() {
    // §7: "we model a spinlock as a shared location; spin_lock behaves
    // like xchg_acquire, spin_unlock like smp_store_release".
    let herd = Herd::new(ModelChoice::Lkmm);
    let report = herd
        .check_source(
            "C lock-hand-off\n{ s=0; x=0; }\n\
             P0(spinlock_t *s, int *x) { spin_lock(&s); WRITE_ONCE(*x, 1); \
             spin_unlock(&s); }\n\
             P1(spinlock_t *s, int *x) { int r0; int r1; spin_lock(&s); \
             r0 = READ_ONCE(*x); spin_unlock(&s); r1 = READ_ONCE(*x); }\n\
             exists (1:r0=1 /\\ 1:r1=0)",
        )
        .unwrap();
    // Once the lock has passed P0's critical section to P1, x stays 1.
    assert!(!report.allowed());
}

#[test]
fn synchronize_rcu_replaces_smp_mb() {
    // §4.2: gp joins strong-fence. SB with one synchronize_rcu and one
    // smp_mb is forbidden, like SB+mbs.
    let herd = Herd::new(ModelChoice::Lkmm);
    let report = herd
        .check_source(
            "C SB+sync+mb\n{ x=0; y=0; }\n\
             P0(int *x, int *y) { int r0; WRITE_ONCE(*x, 1); synchronize_rcu(); \
             r0 = READ_ONCE(*y); }\n\
             P1(int *x, int *y) { int r0; WRITE_ONCE(*y, 1); smp_mb(); \
             r0 = READ_ONCE(*x); }\n\
             exists (0:r0=0 /\\ 1:r0=0)",
        )
        .unwrap();
    assert!(!report.allowed());
}
