//! Integration tests for the real-algorithm verification tier
//! (ISSUE 7): every family's programs must get the verdict the family
//! declares under the native LKMM, the exhaustive interleaving of each
//! step machine must agree with the axiomatic SC+atomicity verdict,
//! and a faultpoint-weakened family must be caught — and shrunk to a
//! minimal witness — by the family-safety oracle.

use linux_kernel_memory_model::algorithms::{
    all_programs, interleave, FamilyParams, ScAtomic,
};
use linux_kernel_memory_model::exec::enumerate::EnumOptions;
use linux_kernel_memory_model::exec::{check_test, Verdict};
use linux_kernel_memory_model::model::Lkmm;

#[test]
fn every_program_meets_its_family_expectation_under_lkmm() {
    let lkmm = Lkmm::new();
    let programs = all_programs(&FamilyParams::default()).unwrap();
    assert!(programs.len() >= 20, "six families expand to a real corpus");
    for p in &programs {
        let r = check_test(&lkmm, &p.test, &EnumOptions::default()).unwrap();
        assert_eq!(
            r.verdict,
            p.expect,
            "{} ({}: {})",
            p.test.name,
            p.family.name(),
            p.family.invariant()
        );
    }
}

#[test]
fn interleaving_agrees_with_sc_atomic_on_every_machine_program() {
    // The loom-style cross-check: a family's step machine reaches its
    // bad state iff the axiomatic SC+atomicity model allows the litmus
    // program's bad outcome. Both sides model the same interleaving
    // semantics by independent constructions, so divergence in either
    // direction is a bug.
    let programs = all_programs(&FamilyParams::default()).unwrap();
    let machines: Vec<_> = programs.iter().filter(|p| p.machine.is_some()).collect();
    assert!(machines.len() >= 10, "most families carry step machines");
    for p in machines {
        let machine = p.machine.as_ref().unwrap();
        let explored = interleave::explore(machine, 0);
        assert!(!explored.truncated);
        let r = check_test(&ScAtomic, &p.test, &EnumOptions::default()).unwrap();
        assert_eq!(
            explored.bad_reachable,
            r.verdict == Verdict::Allowed,
            "{}: machine explored {} states and says bad is {}, SC+atomic says {}",
            p.test.name,
            explored.states,
            if explored.bad_reachable { "reachable" } else { "unreachable" },
            r.verdict
        );
    }
}

/// The mutant-catching path end to end: arming `algo.weaken` makes the
/// ticket family silently generate its relaxed orderings while still
/// claiming Forbidden, and the family-safety oracle must catch every
/// misjudged program and shrink it to a minimal wrong-verdict witness.
/// Runs storeless, as every fault-injection campaign must — a poisoned
/// verdict must never be persisted.
#[cfg(feature = "fault-injection")]
#[test]
fn weakened_ticket_family_is_caught_and_shrunk() {
    use linux_kernel_memory_model::algorithms::FamilyId;
    use linux_kernel_memory_model::conformance::{
        recheck_violated, run_algo_campaign, AlgoConfig, ModelSet, OracleKind, SimConfig,
    };
    use linux_kernel_memory_model::exec::PipelineOptions;
    use lkmm_core::faultpoint;

    let cfg = AlgoConfig {
        families: vec![FamilyId::Ticket],
        sim: SimConfig { iterations: 0, ..SimConfig::default() },
        host_iterations: 0,
        ..AlgoConfig::default()
    };

    let guard = faultpoint::arm("algo.weaken");
    let report = run_algo_campaign(&cfg).unwrap();
    drop(guard);

    assert!(!report.clean(), "the weakened family must not pass");
    let safety: Vec<_> = report
        .discrepancies
        .iter()
        .filter(|d| d.oracle == OracleKind::FamilySafety)
        .collect();
    assert!(!safety.is_empty(), "family safety catches the weakened lock");
    for d in safety {
        let shrunk = d.shrunk.as_ref().expect("family-safety discrepancies shrink");
        let witness = linux_kernel_memory_model::litmus::parse(&shrunk.litmus).unwrap();
        // The minimal witness still discriminates: the real LKMM says
        // Allowed where the weakened family claimed Forbidden.
        assert!(recheck_violated(
            &d.check,
            &witness,
            &ModelSet::standard(),
            &EnumOptions::default(),
            &PipelineOptions::default(),
        ));
        // ... and it is a genuine weak-memory witness, not the
        // trivially-allowed empty program: the SC+atomicity reference
        // forbids the very outcome the LKMM admits.
        let lkmm = check_test(&Lkmm::new(), &witness, &EnumOptions::default()).unwrap();
        let sc = check_test(&ScAtomic, &witness, &EnumOptions::default()).unwrap();
        assert_eq!(lkmm.verdict, Verdict::Allowed, "{}", witness.name);
        assert_eq!(sc.verdict, Verdict::Forbidden, "{}", witness.name);
    }

    // Disarmed, the same campaign is clean again.
    let healed = run_algo_campaign(&cfg).unwrap();
    assert!(healed.clean(), "{:?}", healed.discrepancies.first().map(|d| &d.detail));
}
