//! Fault-injection integration tests (run via
//! `cargo test --features fault-injection --test fault_injection`).
//!
//! Each test arms a `lkmm_core::faultpoint` site, drives the real stack
//! through it, and checks two things: the fault surfaces as a structured
//! outcome (never an abort), and the system recovers once the site is
//! disarmed. `faultpoint::arm` holds a global test lock, so these tests
//! serialise against each other instead of seeing each other's faults.

#![cfg(feature = "fault-injection")]

use linux_kernel_memory_model::litmus::library;
use linux_kernel_memory_model::service::{BatchChecker, Provenance, VerdictStore};
use linux_kernel_memory_model::{CheckOutcome, Herd, InconclusiveReason, ModelChoice};
use lkmm_core::faultpoint;

#[test]
fn injected_worker_panic_is_contained_and_recovers() {
    let herd = Herd::new(ModelChoice::Lkmm).with_jobs(4);
    let test = library::by_name("SB").unwrap().test();

    let guard = faultpoint::arm("worker.panic");
    match herd.check_governed(&test).outcome {
        CheckOutcome::Inconclusive { reason: InconclusiveReason::WorkerPanicked, .. } => {}
        other => panic!("expected WorkerPanicked, got {other:?}"),
    }
    drop(guard);

    // Disarmed: the same checker object completes normally.
    let report = herd.check_governed(&test).report().expect("disarmed check completes");
    assert!(report.allowed(), "SB is Allowed under LKMM");
}

#[test]
fn injected_enumerator_budget_trip_is_inconclusive() {
    let herd = Herd::new(ModelChoice::Lkmm);
    let test = library::by_name("MP").unwrap().test();

    let guard = faultpoint::arm("enum.budget");
    match herd.check_governed(&test).outcome {
        CheckOutcome::Inconclusive {
            reason:
                InconclusiveReason::BudgetExceeded(linux_kernel_memory_model::BudgetKind::Candidates),
            ..
        } => {}
        other => panic!("expected injected candidate-budget trip, got {other:?}"),
    }
    drop(guard);
    assert!(herd.check_governed(&test).report().is_some());
}

#[test]
fn torn_store_append_is_an_error_and_reopen_recovers_the_valid_prefix() {
    let dir = std::env::temp_dir().join(format!("lkmm-fault-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("torn.vstore");
    let _ = std::fs::remove_file(&path);

    let model = linux_kernel_memory_model::model::Lkmm::new();
    let sb = library::by_name("SB").unwrap().test();
    let mp = library::by_name("MP").unwrap().test();

    // One good record, then a torn append under the armed fault.
    {
        let store = VerdictStore::open(&path).unwrap();
        let mut checker = BatchChecker::new(&model, store, "fault");
        checker.check_one(&sb).unwrap();
        assert_eq!(checker.store().len(), 1);

        let guard = faultpoint::arm("store.append.torn");
        let err = checker.check_one(&mp).unwrap_err();
        assert!(err.to_string().contains("store.append.torn"), "got {err}");
        drop(guard);
    }

    // Reopen: recovery truncates the half-written record, keeps the good
    // one, and the store accepts appends again.
    {
        let store = VerdictStore::open(&path).unwrap();
        let recovery = store.recovery();
        assert_eq!(recovery.records, 1, "the good record survives");
        assert!(recovery.truncated_bytes() > 0, "the torn tail is truncated");
        assert!(!recovery.quarantined);

        let mut checker = BatchChecker::new(&model, store, "fault");
        let hit = checker.check_one(&sb).unwrap();
        assert_eq!(hit.provenance, Provenance::Hit);
        let computed = checker.check_one(&mp).unwrap();
        assert_eq!(computed.provenance, Provenance::Computed);
        assert_eq!(checker.store().len(), 2);
    }

    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_dir(&dir);
}

#[test]
fn injected_flush_failure_is_an_error_then_clears() {
    let dir = std::env::temp_dir().join(format!("lkmm-fault-flush-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("flush.vstore");
    let _ = std::fs::remove_file(&path);

    let mut store = VerdictStore::open(&path).unwrap();

    let guard = faultpoint::arm("store.flush");
    let err = store.flush().unwrap_err();
    assert!(err.to_string().contains("store.flush"), "got {err}");
    drop(guard);

    store.flush().expect("disarmed flush succeeds");

    drop(store);
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_dir(&dir);
}

#[test]
fn injected_dir_sync_failure_fails_first_flush_then_clears() {
    // The first flush of a store's lifetime also fsyncs the parent
    // directory (so a crash can't lose the just-created file entry);
    // `store.append.sync` sits on exactly that path.
    let dir = std::env::temp_dir().join(format!("lkmm-fault-dirsync-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("dirsync.vstore");
    let _ = std::fs::remove_file(&path);

    let mut store = VerdictStore::open(&path).unwrap();

    let guard = faultpoint::arm("store.append.sync");
    let err = store.flush().unwrap_err();
    assert!(err.to_string().contains("store.append.sync"), "got {err}");
    drop(guard);

    // The directory sync is retried on the next flush, not lost.
    store.flush().expect("disarmed flush performs the deferred dir sync");
    let guard = faultpoint::arm("store.append.sync");
    store.flush().expect("dir already synced: the site is no longer on the path");
    drop(guard);

    drop(store);
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_dir(&dir);
}

#[test]
fn crashed_compaction_leaves_the_original_log_intact() {
    let dir = std::env::temp_dir().join(format!("lkmm-fault-compact-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("compact.vstore");
    let _ = std::fs::remove_file(&path);

    let model = linux_kernel_memory_model::model::Lkmm::new();
    let sb = library::by_name("SB").unwrap().test();
    let mp = library::by_name("MP").unwrap().test();
    {
        let store = VerdictStore::open(&path).unwrap();
        let mut checker = BatchChecker::new(&model, store, "fault");
        checker.check_one(&sb).unwrap();
        checker.check_one(&mp).unwrap();
        checker.flush().unwrap();
    }
    let before = std::fs::read(&path).unwrap();

    // Crash mid-rewrite: the temp file is torn, the rename never runs.
    let guard = faultpoint::arm("store.compact.crash");
    let err = VerdictStore::compact(&path).unwrap_err();
    assert!(err.to_string().contains("store.compact.crash"), "got {err}");
    drop(guard);
    assert_eq!(std::fs::read(&path).unwrap(), before, "original log untouched");

    // Retried compaction truncates the stray temp file and succeeds.
    let report = VerdictStore::compact(&path).unwrap();
    assert_eq!(report.records_out, 2);
    let store = VerdictStore::open(&path).unwrap();
    assert!(store.recovery().is_clean());
    assert_eq!(store.len(), 2);

    drop(store);
    for f in std::fs::read_dir(&dir).unwrap() {
        let _ = std::fs::remove_file(f.unwrap().path());
    }
    let _ = std::fs::remove_dir(&dir);
}

#[test]
fn nth_hit_trigger_fires_on_exactly_that_hit() {
    // `worker.panic=2`: the first evaluated candidate passes, the second
    // panics. The check still reports WorkerPanicked (containment), which
    // shows the trigger grammar works end-to-end through the pipeline.
    let herd = Herd::new(ModelChoice::Lkmm).with_jobs(1);
    let test = library::by_name("SB").unwrap().test();

    let guard = faultpoint::arm("worker.panic=2");
    match herd.check_governed(&test).outcome {
        CheckOutcome::Inconclusive { reason: InconclusiveReason::WorkerPanicked, partial } => {
            assert_eq!(partial.candidates, 1, "exactly the first candidate completed");
        }
        other => panic!("expected WorkerPanicked on the 2nd candidate, got {other:?}"),
    }
    drop(guard);
}

// --- TCP server faultpoints (ISSUE 9 satellite 3) ---------------------

mod server_faults {
    use lkmm_core::faultpoint;
    use linux_kernel_memory_model::exec::model::AllowAll;
    use linux_kernel_memory_model::server::{serve_tcp, ServerConfig, ServerSummary};
    use linux_kernel_memory_model::service::ShardedStore;
    use std::io::{BufRead, BufReader, Write};
    use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
    use std::sync::Arc;
    use std::thread;

    fn start(
        store: Arc<ShardedStore>,
        workers: usize,
    ) -> (SocketAddr, thread::JoinHandle<ServerSummary>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let config = ServerConfig { workers, ..ServerConfig::default() };
        let handle = thread::spawn(move || {
            serve_tcp(listener, &|| Box::new(AllowAll), "fault-tcp", store, &config)
                .expect("faults are contained, the server survives")
        });
        (addr, handle)
    }

    fn roundtrip(addr: SocketAddr, lines: &[&str]) -> Vec<String> {
        let mut stream = TcpStream::connect(addr).unwrap();
        for line in lines {
            let _ = writeln!(stream, "{line}");
        }
        let _ = stream.shutdown(Shutdown::Write);
        BufReader::new(stream).lines().map_while(Result::ok).collect()
    }

    #[test]
    fn poisoned_shard_quarantines_without_killing_the_server() {
        let store = Arc::new(ShardedStore::in_memory(4));
        // The first append fails: exactly one shard poisons itself.
        let guard = faultpoint::arm("shard.append=1");
        let (addr, handle) = start(store.clone(), 1);
        let responses = roundtrip(
            addr,
            &[r#"{"op":"batch","names":["SB","MP","LB","R","S","WRC","RWC","ISA2"]}"#],
        );
        assert_eq!(responses.len(), 1);
        // Verdicts keep flowing even though one append was eaten.
        assert!(responses[0].contains("\"ok\":true"), "{}", responses[0]);
        let stats = roundtrip(addr, &[r#"{"op":"stats"}"#]);
        assert!(stats[0].contains("\"poisoned\""), "stats surface the quarantine: {}", stats[0]);
        let _ = roundtrip(addr, &[r#"{"op":"shutdown"}"#]);
        handle.join().unwrap();
        drop(guard);
        let shard_stats = store.stats();
        let poisoned: Vec<_> = shard_stats.iter().filter(|s| s.poisoned.is_some()).collect();
        assert_eq!(poisoned.len(), 1, "exactly one shard quarantined");
        let healthy_records: usize = shard_stats
            .iter()
            .filter(|s| s.poisoned.is_none())
            .map(|s| s.records)
            .sum();
        assert!(healthy_records > 0, "the other shards kept appending");
    }

    #[test]
    fn injected_accept_failure_drops_one_connection_not_the_server() {
        let store = Arc::new(ShardedStore::in_memory(1));
        let guard = faultpoint::arm("server.accept=1");
        let (addr, handle) = start(store, 2);
        // The first connection is accepted at the TCP level, then
        // dropped by the armed faultpoint: EOF, no responses.
        let responses = roundtrip(addr, &[r#"{"op":"stats"}"#]);
        assert!(responses.is_empty(), "dropped connection answers nothing: {responses:?}");
        // The very next connection is served normally.
        let responses = roundtrip(addr, &[r#"{"op":"stats"}"#]);
        assert_eq!(responses.len(), 1);
        assert!(responses[0].contains("\"ok\":true"), "{}", responses[0]);
        let _ = roundtrip(addr, &[r#"{"op":"shutdown"}"#]);
        let summary = handle.join().unwrap();
        drop(guard);
        assert_eq!(summary.connections, 2, "only the faulted accept was lost");
    }
}
