//! Cross-validation between independent subsystems: the axiomatic models,
//! the operational simulators, the host runner and the RCU machinery must
//! tell one consistent story.

use linux_kernel_memory_model::{Herd, ModelChoice};
use lkmm_exec::Verdict;
use lkmm_generator::{cycles_up_to, default_alphabet, generate};
use lkmm_klitmus::{run_on_host, HostConfig};
use lkmm_litmus::library;
use lkmm_sim::{run_test, Arch, RunConfig};

/// Simulators never observe LKMM-forbidden outcomes — on the paper's
/// tests *and* a sweep of generated ones.
#[test]
fn simulator_soundness_on_generated_tests() {
    let herd = Herd::new(ModelChoice::Lkmm);
    let cycles = cycles_up_to(4, &default_alphabet());
    let mut forbidden_checked = 0usize;
    for (i, cycle) in cycles.iter().enumerate() {
        if i % 5 != 0 {
            continue; // sample for test-suite speed; benches sweep all
        }
        let test = generate(cycle).unwrap();
        if herd.check(&test).unwrap().result.verdict == Verdict::Forbidden {
            for arch in Arch::ALL {
                let stats =
                    run_test(&test, arch, &RunConfig { iterations: 300, seed: 11 }).unwrap();
                assert_eq!(stats.observed, 0, "{} on {}", test.name, arch.name());
            }
            forbidden_checked += 1;
        }
    }
    assert!(forbidden_checked > 5);
}

/// The host runner (real threads, real silicon) is likewise sound.
#[test]
fn host_soundness_on_paper_tests() {
    let herd = Herd::new(ModelChoice::Lkmm);
    for pt in library::table5() {
        let test = pt.test();
        if herd.check(&test).unwrap().result.verdict == Verdict::Forbidden {
            let stats = run_on_host(&test, &HostConfig { iterations: 5_000 }).unwrap();
            assert_eq!(stats.observed, 0, "{} observed on the host", pt.name);
        }
    }
}

/// TSO (the axiomatic model) and the x86 simulator (operational) agree on
/// observability direction: anything the simulator observes, the
/// axiomatic TSO model allows.
#[test]
fn x86_simulator_within_axiomatic_tso() {
    let tso = Herd::new(ModelChoice::Tso);
    for pt in library::all().iter().filter(|p| !p.name.starts_with("RCU")) {
        let test = pt.test();
        let stats = run_test(&test, Arch::X86, &RunConfig { iterations: 3_000, seed: 23 })
            .unwrap();
        if stats.observed > 0 {
            assert_eq!(
                tso.check(&test).unwrap().result.verdict,
                Verdict::Allowed,
                "{}: x86 sim observed an outcome axiomatic TSO forbids",
                pt.name
            );
        }
    }
}

/// The §4.1 "RCU is stronger than fences" contrast: swapping the reads
/// preserves the RCU verdict but flips the fence verdict.
#[test]
fn rcu_stronger_than_fences() {
    let herd = Herd::new(ModelChoice::Lkmm);
    // Fence version of RCU-deferred-free's shape: allowed.
    let fences = herd
        .check_source(
            "C deferred-free-fences\n{ x=0; y=0; }\n\
             P0(int *x, int *y) { int r1; int r2; r1 = READ_ONCE(*y); smp_rmb(); \
             r2 = READ_ONCE(*x); }\n\
             P1(int *x, int *y) { WRITE_ONCE(*x, 1); smp_wmb(); WRITE_ONCE(*y, 1); }\n\
             exists (0:r1=1 /\\ 0:r2=0)",
        )
        .unwrap();
    assert!(!fences.allowed(), "MP shape is forbidden with fences");
    // Swap the reads: with fences the outcome becomes allowed...
    let swapped = herd
        .check_source(
            "C deferred-free-fences-swapped\n{ x=0; y=0; }\n\
             P0(int *x, int *y) { int r1; int r2; r1 = READ_ONCE(*x); smp_rmb(); \
             r2 = READ_ONCE(*y); }\n\
             P1(int *x, int *y) { WRITE_ONCE(*x, 1); smp_wmb(); WRITE_ONCE(*y, 1); }\n\
             exists (0:r2=1 /\\ 0:r1=0)",
        )
        .unwrap();
    assert!(swapped.allowed(), "fences do not order the swapped reads");
    // ...but with RCU it stays forbidden (Figure 11 vs Figure 10).
    for name in ["RCU-MP", "RCU-deferred-free"] {
        let t = library::by_name(name).unwrap().test();
        assert!(!herd.check(&t).unwrap().allowed(), "{name}");
    }
}
