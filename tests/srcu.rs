//! SRCU (sleepable RCU): per-domain grace periods, the signature property
//! being that **domains are independent** — a grace period of one domain
//! does not wait for read-side critical sections of another. An extension
//! beyond the paper (its §7 future-work direction; the kernel's LKMM
//! gained SRCU support in 2019).

use linux_kernel_memory_model::{Herd, ModelChoice};
use lkmm_exec::Verdict;
use lkmm_klitmus::{run_on_host, HostConfig};
use lkmm_sim::{run_test, Arch, RunConfig};

fn lkmm(source: &str) -> Verdict {
    Herd::new(ModelChoice::Lkmm).check_source(source).unwrap().result.verdict
}

const SRCU_MP: &str = "C SRCU-MP\n{ ss=0; x=0; y=0; }\n\
     P0(srcu_struct *ss, int *x, int *y) { int r1; int r2; srcu_read_lock(ss); \
     r1 = READ_ONCE(*x); r2 = READ_ONCE(*y); srcu_read_unlock(ss); }\n\
     P1(srcu_struct *ss, int *x, int *y) { WRITE_ONCE(*y, 1); \
     synchronize_srcu(ss); WRITE_ONCE(*x, 1); }\n\
     exists (0:r1=1 /\\ 0:r2=0)";

/// Same-domain SRCU gives the RCU-MP guarantee.
#[test]
fn same_domain_srcu_mp_is_forbidden() {
    assert_eq!(lkmm(SRCU_MP), Verdict::Forbidden);
}

/// The independence property: a reader in domain `ss1` is *not* waited
/// for by `synchronize_srcu(ss2)` — the same shape across domains is
/// allowed.
#[test]
fn cross_domain_srcu_is_independent() {
    let cross = "C SRCU-MP-cross\n{ ss1=0; ss2=0; x=0; y=0; }\n\
         P0(srcu_struct *ss1, int *x, int *y) { int r1; int r2; srcu_read_lock(ss1); \
         r1 = READ_ONCE(*x); r2 = READ_ONCE(*y); srcu_read_unlock(ss1); }\n\
         P1(srcu_struct *ss2, int *x, int *y) { WRITE_ONCE(*y, 1); \
         synchronize_srcu(ss2); WRITE_ONCE(*x, 1); }\n\
         exists (0:r1=1 /\\ 0:r2=0)";
    assert_eq!(lkmm(cross), Verdict::Allowed, "different domains must not interact");
}

/// RCU critical sections are likewise not ordered by SRCU grace periods
/// (and vice versa).
#[test]
fn srcu_and_rcu_are_independent() {
    let mixed = "C RCU-vs-SRCU\n{ ss=0; x=0; y=0; }\n\
         P0(int *x, int *y) { int r1; int r2; rcu_read_lock(); \
         r1 = READ_ONCE(*x); r2 = READ_ONCE(*y); rcu_read_unlock(); }\n\
         P1(srcu_struct *ss, int *x, int *y) { WRITE_ONCE(*y, 1); \
         synchronize_srcu(ss); WRITE_ONCE(*x, 1); }\n\
         exists (0:r1=1 /\\ 0:r2=0)";
    assert_eq!(lkmm(mixed), Verdict::Allowed);
    let mixed2 = "C SRCU-vs-RCU\n{ ss=0; x=0; y=0; }\n\
         P0(srcu_struct *ss, int *x, int *y) { int r1; int r2; srcu_read_lock(ss); \
         r1 = READ_ONCE(*x); r2 = READ_ONCE(*y); srcu_read_unlock(ss); }\n\
         P1(int *x, int *y) { WRITE_ONCE(*y, 1); synchronize_rcu(); \
         WRITE_ONCE(*x, 1); }\n\
         exists (0:r1=1 /\\ 0:r2=0)";
    assert_eq!(lkmm(mixed2), Verdict::Allowed);
}

/// synchronize_srcu still carries strong-fence ordering (the kernel's
/// documented guarantee): it can stand in for smp_mb like
/// synchronize_rcu does.
#[test]
fn synchronize_srcu_is_a_strong_fence() {
    let sb = "C SB+srcu-sync+mb\n{ ss=0; x=0; y=0; }\n\
         P0(srcu_struct *ss, int *x, int *y) { int r0; WRITE_ONCE(*x, 1); \
         synchronize_srcu(ss); r0 = READ_ONCE(*y); }\n\
         P1(int *x, int *y) { int r0; WRITE_ONCE(*y, 1); smp_mb(); \
         r0 = READ_ONCE(*x); }\n\
         exists (0:r0=0 /\\ 1:r0=0)";
    assert_eq!(lkmm(sb), Verdict::Forbidden);
}

/// Nested same-domain sections match at the outermost pair.
#[test]
fn nested_srcu_sections() {
    let nested = "C SRCU-nested\n{ ss=0; x=0; y=0; }\n\
         P0(srcu_struct *ss, int *x, int *y) { int r1; int r2; srcu_read_lock(ss); \
         srcu_read_lock(ss); r1 = READ_ONCE(*x); srcu_read_unlock(ss); \
         r2 = READ_ONCE(*y); srcu_read_unlock(ss); }\n\
         P1(srcu_struct *ss, int *x, int *y) { WRITE_ONCE(*y, 1); \
         synchronize_srcu(ss); WRITE_ONCE(*x, 1); }\n\
         exists (0:r1=1 /\\ 0:r2=0)";
    assert_eq!(lkmm(nested), Verdict::Forbidden, "outermost matching spans both reads");
}

/// Unbalanced SRCU sections are rejected.
#[test]
fn unbalanced_srcu_rejected() {
    let herd = Herd::new(ModelChoice::Lkmm);
    let err = herd
        .check_source(
            "C bad\n{ ss=0; x=0; }\nP0(srcu_struct *ss, int *x) { srcu_read_lock(ss); \
             WRITE_ONCE(*x, 1); }\nexists (x=1)",
        )
        .unwrap_err();
    assert!(err.to_string().contains("unbalanced"), "{err}");
}

/// Theorem 1 extends to SRCU: the per-domain axiom and the per-domain law
/// agree on every candidate execution of the SRCU tests here.
#[test]
fn theorem1_holds_with_srcu() {
    use lkmm_exec::enumerate::{for_each_execution, EnumOptions};
    let t = lkmm_litmus::parse(SRCU_MP).unwrap();
    let mut n = 0;
    for_each_execution(&t, &EnumOptions::default(), &mut |x| {
        assert!(lkmm_rcu::check_equivalence(x).agree(), "{x}");
        n += 1;
    })
    .unwrap();
    assert!(n > 0);
}

/// Operational and host soundness: the same-domain forbidden pattern is
/// never observed; the cross-domain one is observable on the simulators.
#[test]
fn srcu_on_simulators_and_host() {
    let same = lkmm_litmus::parse(SRCU_MP).unwrap();
    for arch in Arch::ALL {
        let stats = run_test(&same, arch, &RunConfig { iterations: 2_000, seed: 3 }).unwrap();
        assert_eq!(stats.observed, 0, "SRCU-MP observed on {}", arch.name());
    }
    let stats = run_on_host(&same, &HostConfig { iterations: 3_000 }).unwrap();
    assert_eq!(stats.observed, 0, "SRCU-MP observed on the host");
}
