//! Budget determinism and governance guarantees (ISSUE satellite 4).
//!
//! The contract under test: a generous budget changes *nothing* (bit-
//! identical results at any job count), an exhausted budget yields a
//! structured `Inconclusive` whose partial tallies are themselves
//! deterministic across job counts (only the single-threaded enumerator
//! spends candidate fuel), and no governance path ever panics or hangs.

use linux_kernel_memory_model::exec::{ConsistencyModel, Execution};
use linux_kernel_memory_model::litmus::library;
use linux_kernel_memory_model::service::{BatchChecker, Provenance, VerdictStore};
use linux_kernel_memory_model::{
    Budget, BudgetKind, CancelToken, CheckOutcome, Herd, InconclusiveReason, ModelChoice,
};
use std::time::Duration;

/// A budget far above anything the paper library needs, on every axis.
fn generous() -> Budget {
    Budget::default()
        .with_max_candidates(100_000_000)
        .with_max_eval_steps(10_000_000_000)
        .with_time_limit(Duration::from_secs(3600))
}

#[test]
fn generous_budget_is_bit_identical_to_sequential_at_every_job_count() {
    let baseline = Herd::new(ModelChoice::Lkmm);
    for jobs in [1, 2, 8] {
        let governed = Herd::new(ModelChoice::Lkmm).with_jobs(jobs).with_budget(generous());
        for paper in library::all() {
            let test = paper.test();
            let expected = baseline.check(&test).unwrap();
            let got = governed.check_governed(&test);
            let report = got.report().unwrap_or_else(|| {
                panic!("{} at jobs={jobs}: generous budget went inconclusive", paper.name)
            });
            assert_eq!(report.result, expected.result, "{} at jobs={jobs}", paper.name);
        }
    }
}

#[test]
fn candidate_fuel_partial_tallies_are_identical_across_job_counts() {
    let budget = Budget::default().with_max_candidates(1);
    for paper in library::all() {
        let test = paper.test();
        // Tests with a single candidate complete within the fuel; the
        // interesting cases are the ones that trip it.
        let total = Herd::new(ModelChoice::Lkmm).check(&test).unwrap().result.candidates;
        if total <= 1 {
            continue;
        }
        let mut outcomes = Vec::new();
        for jobs in [1, 2, 8] {
            let herd = Herd::new(ModelChoice::Lkmm).with_jobs(jobs).with_budget(budget.clone());
            let got = herd.check_governed(&test);
            match &got.outcome {
                CheckOutcome::Inconclusive { reason, partial } => {
                    assert_eq!(
                        *reason,
                        InconclusiveReason::BudgetExceeded(BudgetKind::Candidates),
                        "{} at jobs={jobs}",
                        paper.name
                    );
                    assert_eq!(partial.candidates, 1, "{} at jobs={jobs}", paper.name);
                }
                CheckOutcome::Complete(r) => {
                    panic!("{} at jobs={jobs}: completed ({r:?}) despite 1-candidate fuel", paper.name)
                }
            }
            outcomes.push(got.outcome);
        }
        assert_eq!(outcomes[0], outcomes[1], "{}: jobs 1 vs 2", paper.name);
        assert_eq!(outcomes[0], outcomes[2], "{}: jobs 1 vs 8", paper.name);
    }
}

#[test]
fn eval_step_fuel_exhaustion_is_inconclusive() {
    // The cat interpreter burns fixpoint instructions as eval steps; one
    // step of fuel cannot possibly evaluate a candidate under LKMM-cat.
    let herd =
        Herd::new(ModelChoice::LkmmCat).with_budget(Budget::default().with_max_eval_steps(1));
    let test = library::by_name("SB").unwrap().test();
    match herd.check_governed(&test).outcome {
        CheckOutcome::Inconclusive {
            reason: InconclusiveReason::BudgetExceeded(BudgetKind::EvalSteps),
            ..
        } => {}
        other => panic!("expected eval-step exhaustion, got {other:?}"),
    }
}

#[test]
fn zero_time_limit_is_inconclusive_wall_clock() {
    let herd = Herd::new(ModelChoice::Lkmm)
        .with_budget(Budget::default().with_time_limit(Duration::ZERO));
    let test = library::by_name("SB").unwrap().test();
    match herd.check_governed(&test).outcome {
        CheckOutcome::Inconclusive {
            reason: InconclusiveReason::BudgetExceeded(BudgetKind::WallClock),
            ..
        } => {}
        other => panic!("expected wall-clock trip, got {other:?}"),
    }
}

#[test]
fn pre_cancelled_token_is_inconclusive_cancelled() {
    let token = CancelToken::new();
    token.cancel();
    let herd =
        Herd::new(ModelChoice::Lkmm).with_budget(Budget::default().with_cancel(token.clone()));
    let test = library::by_name("MP").unwrap().test();
    match herd.check_governed(&test).outcome {
        CheckOutcome::Inconclusive {
            reason: InconclusiveReason::BudgetExceeded(BudgetKind::Cancelled),
            ..
        } => {}
        other => panic!("expected cancellation, got {other:?}"),
    }
    assert!(token.is_cancelled());
}

/// A model whose evaluation panics on every candidate.
struct PanickingModel;

impl ConsistencyModel for PanickingModel {
    fn name(&self) -> &str {
        "panicking"
    }

    fn allows(&self, _: &Execution) -> bool {
        panic!("deliberate test panic inside model evaluation")
    }
}

#[test]
fn worker_panic_is_contained_and_the_process_continues() {
    use linux_kernel_memory_model::exec::{
        check_test_governed, EnumOptions, PipelineOptions,
    };
    let test = library::by_name("SB").unwrap().test();
    let opts = EnumOptions::default();
    for jobs in [1, 4] {
        let pipe = PipelineOptions { jobs, ..PipelineOptions::default() };
        match check_test_governed(&PanickingModel, &test, &opts, &pipe) {
            CheckOutcome::Inconclusive { reason: InconclusiveReason::WorkerPanicked, .. } => {}
            other => panic!("jobs={jobs}: expected WorkerPanicked, got {other:?}"),
        }
    }
    // The process is intact: an ordinary check still completes. (SB
    // without fences is Allowed under LKMM — Figure 4.)
    let report = Herd::new(ModelChoice::Lkmm).check(&test).unwrap();
    assert!(report.allowed());
}

#[test]
fn inconclusive_is_never_cached_and_a_bigger_budget_recomputes() {
    let model = linux_kernel_memory_model::model::Lkmm::new();
    let test = library::by_name("SB").unwrap().test();

    let mut checker = BatchChecker::new(&model, VerdictStore::in_memory(), "budget-test")
        .with_budget(Budget::default().with_max_candidates(1));
    let starved = checker.check_one(&test).unwrap();
    assert!(starved.result().is_none(), "starved check must be inconclusive");
    assert_eq!(checker.store().len(), 0, "inconclusive verdicts must not be stored");
    assert_eq!(checker.session_inconclusive(), 1);

    // Retry with an unlimited budget: must recompute (miss), then hit.
    checker.set_budget(Budget::unlimited());
    let computed = checker.check_one(&test).unwrap();
    assert_eq!(computed.provenance, Provenance::Computed);
    assert!(computed.result().is_some());
    assert_eq!(checker.store().len(), 1);

    let hit = checker.check_one(&test).unwrap();
    assert_eq!(hit.provenance, Provenance::Hit);
    assert_eq!(hit.result(), computed.result());
}

#[test]
fn generous_budget_library_batch_matches_unbudgeted_batch() {
    let model = linux_kernel_memory_model::model::Lkmm::new();

    let mut plain = BatchChecker::new(&model, VerdictStore::in_memory(), "s");
    let plain_report = plain.check_library().unwrap();

    let mut governed = BatchChecker::new(&model, VerdictStore::in_memory(), "s")
        .with_budget(generous())
        .with_jobs(2);
    let governed_report = governed.check_library().unwrap();

    assert_eq!(governed_report.inconclusive, 0);
    assert_eq!(governed_report.computed, plain_report.computed);
    assert_eq!(governed_report.deduped, plain_report.deduped);
    assert_eq!(
        governed_report.candidates_enumerated,
        plain_report.candidates_enumerated
    );
    for (a, b) in plain_report.outcomes.iter().zip(governed_report.outcomes.iter()) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.key, b.key, "{}: budget must not perturb cache keys", a.name);
        assert_eq!(a.result(), b.result(), "{}", a.name);
    }
}
