//! Crash-survival integration tests: drive the real `herd-rs` binary
//! through kill/suspend/resume cycles and assert the invariant the
//! whole resilience layer exists for — a resumed campaign's JSON
//! report is byte-identical to an uninterrupted run's.
//!
//! The always-on tests use the clean `--stop-after` suspend and the
//! advisory store lock. The crash tests (killing mid-campaign via
//! `campaign.kill`, tearing a checkpoint frame, crashing mid-compaction,
//! poisoning a unit) need the injection sites compiled in:
//! `cargo test --features fault-injection --test resume`.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

const BIN: &str = env!("CARGO_BIN_EXE_herd-rs");

/// Campaign flags shared by every test: the library-only corpus
/// (33 units), simulators off, instant retries, a frame every 4 units.
const CAMPAIGN: &[&str] = &[
    "--max-cycle-len",
    "0",
    "--sim-iterations",
    "0",
    "--retry-base-ms",
    "0",
    "--json",
];

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lkmm-resume-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Run `herd-rs` with `args`, optionally with `LKMM_FAULTPOINTS=spec`.
/// The variable is explicitly cleared otherwise so a fault-armed parent
/// can never leak faults into a run that must succeed.
fn herd(args: &[&str], faults: Option<&str>) -> Output {
    let mut cmd = Command::new(BIN);
    cmd.args(args).env_remove("LKMM_FAULTPOINTS");
    if let Some(spec) = faults {
        cmd.env("LKMM_FAULTPOINTS", spec);
    }
    cmd.output().expect("spawn herd-rs")
}

fn campaign_args<'a>(
    store: &'a str,
    ckpt: &'a str,
    jobs: &'a str,
    extra: &[&'a str],
) -> Vec<&'a str> {
    let mut args = CAMPAIGN.to_vec();
    args.extend_from_slice(&[
        "--store",
        store,
        "--checkpoint",
        ckpt,
        "--checkpoint-every",
        "4",
        "--jobs",
        jobs,
    ]);
    args.extend_from_slice(extra);
    args.push("conformance");
    args
}

fn stdout(out: &Output) -> String {
    String::from_utf8(out.stdout.clone()).unwrap()
}

fn stderr(out: &Output) -> String {
    String::from_utf8(out.stderr.clone()).unwrap()
}

/// The uninterrupted reference report for this corpus. Runs in its own
/// directory so its store can't warm anyone else's run.
fn reference_json(dir: &Path) -> String {
    let store = dir.join("ref.vstore");
    let ckpt = dir.join("ref.ck");
    let out = herd(
        &campaign_args(store.to_str().unwrap(), ckpt.to_str().unwrap(), "2", &[]),
        None,
    );
    assert_eq!(out.status.code(), Some(0), "reference run failed: {}", stderr(&out));
    stdout(&out)
}

fn assert_scrub_clean(store: &str) {
    let out = herd(&["store", "scrub", store], None);
    assert_eq!(out.status.code(), Some(0), "scrub: {}", stderr(&out));
    assert!(stdout(&out).contains("clean"), "scrub output: {}", stdout(&out));
}

#[test]
fn stop_after_then_resume_is_byte_identical() {
    let dir = temp_dir("stop");
    let reference = reference_json(&dir);
    let store = dir.join("s.vstore");
    let store = store.to_str().unwrap();
    let ckpt = dir.join("s.ck");
    let ckpt = ckpt.to_str().unwrap();

    let out = herd(&campaign_args(store, ckpt, "2", &["--stop-after", "7"]), None);
    assert_eq!(out.status.code(), Some(0), "suspend is a clean exit: {}", stderr(&out));
    assert!(stdout(&out).is_empty(), "a suspended campaign prints no report");
    assert!(
        stderr(&out).contains("suspended at unit 7/33"),
        "stderr: {}",
        stderr(&out)
    );

    let out = herd(&campaign_args(store, ckpt, "2", &["--resume"]), None);
    assert_eq!(out.status.code(), Some(0), "resume: {}", stderr(&out));
    assert_eq!(stdout(&out), reference, "resumed JSON must be byte-identical");
    assert!(stderr(&out).contains("resumed from checkpoint at unit 7"));
    assert_scrub_clean(store);
}

#[test]
fn resume_refuses_a_checkpoint_from_a_different_config() {
    let dir = temp_dir("mismatch");
    let store = dir.join("s.vstore");
    let store = store.to_str().unwrap();
    let ckpt = dir.join("s.ck");
    let ckpt = ckpt.to_str().unwrap();

    let out = herd(&campaign_args(store, ckpt, "2", &["--stop-after", "5"]), None);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));

    // Same checkpoint, different corpus salt: exit 2, no report.
    let out = herd(
        &campaign_args(store, ckpt, "2", &["--resume", "--salt", "other"]),
        None,
    );
    assert_eq!(out.status.code(), Some(2), "{}", stderr(&out));
    assert!(stderr(&out).contains("refusing to resume"), "stderr: {}", stderr(&out));
}

#[test]
fn live_lock_holder_is_refused_with_exit_9() {
    let dir = temp_dir("locked");
    let store = dir.join("s.vstore");
    // This test process holds the lock; it is very much alive.
    std::fs::write(
        dir.join("s.vstore.lock"),
        format!("{}\n", std::process::id()),
    )
    .unwrap();
    let store = store.to_str().unwrap();
    let ckpt = dir.join("s.ck");

    let out = herd(
        &campaign_args(store, ckpt.to_str().unwrap(), "1", &[]),
        None,
    );
    assert_eq!(out.status.code(), Some(9), "campaign on a held store: {}", stderr(&out));
    assert!(stderr(&out).contains("locked by live process"), "{}", stderr(&out));

    let out = herd(&["store", "scrub", store], None);
    assert_eq!(out.status.code(), Some(9), "scrub on a held store: {}", stderr(&out));
}

#[test]
fn store_verbs_roundtrip_a_campaign_store() {
    let dir = temp_dir("verbs");
    let store = dir.join("s.vstore");
    let store = store.to_str().unwrap();
    let ckpt = dir.join("s.ck");
    let out = herd(&campaign_args(store, ckpt.to_str().unwrap(), "2", &[]), None);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    assert_scrub_clean(store);

    let out = herd(&["store", "compact", store], None);
    assert_eq!(out.status.code(), Some(0), "compact: {}", stderr(&out));
    assert_scrub_clean(store);

    let exported = dir.join("export.vstore");
    let exported = exported.to_str().unwrap();
    let out = herd(&["store", "export", store, exported], None);
    assert_eq!(out.status.code(), Some(0), "export: {}", stderr(&out));
    assert_scrub_clean(exported);

    let merged = dir.join("merged.vstore");
    let merged = merged.to_str().unwrap();
    let out = herd(&["store", "merge", merged, store, exported], None);
    assert_eq!(out.status.code(), Some(0), "merge: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("0 merged") && text.contains("unchanged"), "second source is a no-op: {text}");
    assert_scrub_clean(merged);
}

/// The crash tests proper: these arm injection sites in the child via
/// `LKMM_FAULTPOINTS`, so they only exist when the sites are compiled in.
#[cfg(feature = "fault-injection")]
mod crash {
    use super::*;

    #[test]
    fn kill_mid_campaign_then_resume_is_byte_identical_at_every_job_count() {
        let dir = temp_dir("kill");
        let reference = reference_json(&dir);
        for (kill_at, jobs) in [("3", "1"), ("3", "2"), ("3", "8"), ("12", "2"), ("25", "8")] {
            let tag = format!("kill{kill_at}-j{jobs}");
            let store = dir.join(format!("{tag}.vstore"));
            let store = store.to_str().unwrap();
            let ckpt = dir.join(format!("{tag}.ck"));
            let ckpt = ckpt.to_str().unwrap();

            // `campaign.kill=N` aborts the process at the Nth unit
            // boundary — a SIGKILL stand-in with no cleanup, no flush.
            let killed = herd(
                &campaign_args(store, ckpt, jobs, &[]),
                Some(&format!("campaign.kill={kill_at}")),
            );
            assert!(!killed.status.success(), "{tag}: the killed run must die");

            let resumed = herd(&campaign_args(store, ckpt, jobs, &["--resume"]), None);
            assert_eq!(resumed.status.code(), Some(0), "{tag}: {}", stderr(&resumed));
            assert_eq!(stdout(&resumed), reference, "{tag}: resumed JSON differs");
            assert_scrub_clean(store);
        }
    }

    #[test]
    fn torn_checkpoint_frame_falls_back_to_the_previous_frame() {
        let dir = temp_dir("torn-ckpt");
        let reference = reference_json(&dir);
        let store = dir.join("s.vstore");
        let store = store.to_str().unwrap();
        let ckpt = dir.join("s.ck");
        let ckpt = ckpt.to_str().unwrap();

        // Frame 1 (unit 4) lands; the append of frame 2 (unit 8) tears
        // mid-write. The campaign surfaces it as a checkpoint error.
        let out = herd(&campaign_args(store, ckpt, "2", &[]), Some("ckpt.torn=2"));
        assert_eq!(out.status.code(), Some(5), "torn frame is a store-class failure");
        assert!(stderr(&out).contains("checkpoint"), "{}", stderr(&out));

        // Resume: the torn tail is truncated, frame 1 wins, and the
        // report still comes out byte-identical.
        let out = herd(&campaign_args(store, ckpt, "2", &["--resume"]), None);
        assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
        assert!(stderr(&out).contains("resumed from checkpoint at unit 4"), "{}", stderr(&out));
        assert_eq!(stdout(&out), reference);
        assert_scrub_clean(store);
    }

    #[test]
    fn crash_mid_compaction_preserves_the_original_store() {
        let dir = temp_dir("compact-crash");
        let reference = reference_json(&dir);
        let store = dir.join("s.vstore");
        let store = store.to_str().unwrap();
        let ckpt = dir.join("s.ck");
        let ckpt = ckpt.to_str().unwrap();
        let out = herd(&campaign_args(store, ckpt, "2", &[]), None);
        assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));

        // The crash hits after half the snapshot reaches the temp file
        // and before the rename: the original must be untouched.
        let out = herd(&["store", "compact", store], Some("store.compact.crash"));
        assert_eq!(out.status.code(), Some(5), "injected crash: {}", stderr(&out));
        assert_scrub_clean(store);

        // And the store still answers: a warm re-run replays every
        // verdict from it, byte-identical.
        let out = herd(&campaign_args(store, ckpt, "2", &[]), None);
        assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
        assert_eq!(stdout(&out), reference);
    }

    #[test]
    fn transient_fault_storm_is_retried_into_a_clean_report() {
        let dir = temp_dir("storm-recovered");
        let reference = reference_json(&dir);
        let store = dir.join("s.vstore");
        let store = store.to_str().unwrap();
        let ckpt = dir.join("s.ck");
        let ckpt = ckpt.to_str().unwrap();

        // Two injected failures, --max-retries 2: the third attempt at
        // unit 0 succeeds and the storm leaves no trace in the report.
        let out = herd(
            &campaign_args(store, ckpt, "2", &["--max-retries", "2"]),
            Some("worker.transient=1:2"),
        );
        assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
        assert_eq!(stdout(&out), reference);
    }

    #[test]
    fn poisoned_unit_is_quarantined_and_the_campaign_degrades() {
        let dir = temp_dir("quarantine");
        let store = dir.join("s.vstore");
        let store = store.to_str().unwrap();
        let ckpt = dir.join("s.ck");
        let ckpt = ckpt.to_str().unwrap();

        // Three injected failures swallow attempts 1..=3 of unit 0:
        // quarantine, but the other 32 units complete.
        let out = herd(
            &campaign_args(store, ckpt, "2", &["--max-retries", "2"]),
            Some("worker.transient=1:3"),
        );
        assert_eq!(out.status.code(), Some(8), "degraded exit: {}", stderr(&out));
        let json = stdout(&out);
        assert!(json.contains("\"partial\":true"), "{json}");
        assert!(
            json.contains("\"kind\":\"transient-io\"") && json.contains("\"attempts\":3"),
            "{json}"
        );
        assert!(stderr(&out).contains("quarantined") || json.contains("failed_units"));
        assert_scrub_clean(store);

        // The quarantine is sticky across resume (no doomed re-retries),
        // and a fresh fault-free run of the same store heals the row.
        let out = herd(
            &campaign_args(store, ckpt, "2", &["--max-retries", "2"]),
            None,
        );
        assert_eq!(out.status.code(), Some(0), "warm fault-free rerun: {}", stderr(&out));
        assert!(stdout(&out).contains("\"partial\":false"), "{}", stdout(&out));
    }
}
