//! End-to-end TCP server tests (ISSUE 9 satellite 4): whatever mix of
//! concurrent clients, worker jobs, and store shards serves the
//! library, the resulting verdict log must be byte-identical (after a
//! key-ordered export) to the sequential `--store` pipeline's — and
//! warm stores must be interchangeable between the two paths in both
//! directions.

use linux_kernel_memory_model::litmus::library;
use linux_kernel_memory_model::model::Lkmm;
use linux_kernel_memory_model::server::{serve_tcp, ServerConfig, ServerSummary};
use linux_kernel_memory_model::service::{BatchChecker, ShardedStore, VerdictStore};
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::thread;

/// Must match on both paths: cache keys fold the salt in.
const SALT: &str = "server-it";

fn temp_base(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("lkmm-server-it-{tag}-{}", std::process::id()));
    cleanup(&p);
    p
}

fn cleanup(base: &Path) {
    for n in 1..=8 {
        for path in ShardedStore::shard_paths(base, n) {
            let _ = std::fs::remove_file(&path);
        }
    }
}

/// Run a file-backed server on an ephemeral port. The store lives (and
/// dies) inside the server thread, so its locks are released by the
/// time `join` returns.
fn start_server(
    base: PathBuf,
    shards: usize,
    jobs: usize,
) -> (SocketAddr, thread::JoinHandle<ServerSummary>) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let handle = thread::spawn(move || {
        let store = Arc::new(ShardedStore::open(&base, shards).unwrap());
        let config = ServerConfig { workers: 4, jobs, ..ServerConfig::default() };
        serve_tcp(listener, &|| Box::new(Lkmm::new()), SALT, store, &config).unwrap()
    });
    (addr, handle)
}

/// One client connection: request `names` as a single batch, return the
/// response lines.
fn batch_client(addr: SocketAddr, names: &[&str]) -> Vec<String> {
    let quoted: Vec<String> = names.iter().map(|n| format!("\"{n}\"")).collect();
    let req = format!("{{\"op\":\"batch\",\"names\":[{}]}}", quoted.join(","));
    let mut stream = TcpStream::connect(addr).unwrap();
    writeln!(stream, "{req}").unwrap();
    stream.shutdown(Shutdown::Write).unwrap();
    BufReader::new(stream).lines().map_while(Result::ok).collect()
}

fn shutdown_server(addr: SocketAddr) {
    let mut stream = TcpStream::connect(addr).unwrap();
    let _ = writeln!(stream, "{}", r#"{"op":"shutdown"}"#);
    let _ = stream.shutdown(Shutdown::Write);
    let _ = BufReader::new(stream).lines().map_while(Result::ok).count();
}

/// The library names split round-robin into `n` disjoint slices.
fn partition(n: usize) -> Vec<Vec<&'static str>> {
    let mut parts = vec![Vec::new(); n];
    for (i, pt) in library::all().iter().enumerate() {
        parts[i % n].push(pt.name);
    }
    parts
}

/// The sequential pipeline's export of a full-library store: the
/// reference bytes every server configuration must reproduce.
fn sequential_export() -> Vec<u8> {
    let base = temp_base("seq");
    let model = Lkmm::new();
    let mut checker = BatchChecker::new(&model, VerdictStore::open(&base).unwrap(), SALT);
    checker.check_library().unwrap();
    checker.flush().unwrap();
    drop(checker);
    let out = temp_base("seq-export");
    VerdictStore::export(&base, &out).unwrap();
    let bytes = std::fs::read(&out).unwrap();
    cleanup(&base);
    cleanup(&out);
    bytes
}

#[test]
fn concurrent_clients_match_the_sequential_store_byte_for_byte() {
    let want = sequential_export();
    // The ISSUE matrix: jobs 1/2/8 per worker, shards 1/4, several
    // concurrent clients splitting the library between them.
    for &(clients, jobs, shards) in
        &[(1, 1, 1), (2, 2, 1), (8, 8, 1), (2, 1, 4), (4, 2, 4), (8, 8, 4)]
    {
        let base = temp_base(&format!("matrix-{clients}-{jobs}-{shards}"));
        let (addr, handle) = start_server(base.clone(), shards, jobs);
        let parts = partition(clients);
        thread::scope(|scope| {
            let handles: Vec<_> = parts
                .iter()
                .map(|names| scope.spawn(move || batch_client(addr, names)))
                .collect();
            for (i, h) in handles.into_iter().enumerate() {
                let responses = h.join().unwrap();
                assert_eq!(responses.len(), 1, "client {i}: one batch, one response");
                assert!(
                    responses[0].contains("\"ok\":true"),
                    "client {i} of ({clients},{jobs},{shards}): {}",
                    responses[0]
                );
            }
        });
        shutdown_server(addr);
        handle.join().unwrap();
        let out = temp_base(&format!("matrix-out-{clients}-{jobs}-{shards}"));
        ShardedStore::export_merged(&base, &out).unwrap();
        assert_eq!(
            std::fs::read(&out).unwrap(),
            want,
            "({clients} clients, {jobs} jobs, {shards} shards) diverged from sequential"
        );
        cleanup(&base);
        cleanup(&out);
    }
}

#[test]
fn warm_stores_interchange_between_sequential_and_server_paths() {
    // Sequential-written store, replayed by a sharded server: after
    // promotion into a 4-way family every request is a cache hit and
    // the family still exports the same bytes.
    let seq = temp_base("warm-seq");
    {
        let model = Lkmm::new();
        let mut checker = BatchChecker::new(&model, VerdictStore::open(&seq).unwrap(), SALT);
        checker.check_library().unwrap();
        checker.flush().unwrap();
    }
    let want = {
        let out = temp_base("warm-seq-export");
        VerdictStore::export(&seq, &out).unwrap();
        let bytes = std::fs::read(&out).unwrap();
        cleanup(&out);
        bytes
    };
    let family = temp_base("warm-family");
    ShardedStore::merge_into_shards(&family, 4, &seq).unwrap();
    let (addr, handle) = start_server(family.clone(), 4, 1);
    let names: Vec<&str> = library::all().iter().map(|pt| pt.name).collect();
    let responses = batch_client(addr, &names);
    assert_eq!(responses.len(), 1);
    // Everything answers from cache (two library tests share a key, so
    // one replays as an in-batch dedup rather than a store hit).
    assert!(responses[0].contains("\"computed\":0"), "warm replay: {}", responses[0]);
    shutdown_server(addr);
    handle.join().unwrap();
    let out = temp_base("warm-family-export");
    ShardedStore::export_merged(&family, &out).unwrap();
    assert_eq!(std::fs::read(&out).unwrap(), want, "warm replay must not change the store");
    cleanup(&family);
    cleanup(&out);

    // Server-written store, replayed by the sequential pipeline: a
    // 1-shard server log opens as a plain store and answers the whole
    // library from cache.
    let served = temp_base("warm-served");
    let (addr, handle) = start_server(served.clone(), 1, 2);
    let responses = batch_client(addr, &names);
    assert!(responses[0].contains("\"ok\":true"), "{}", responses[0]);
    shutdown_server(addr);
    handle.join().unwrap();
    let model = Lkmm::new();
    let mut checker = BatchChecker::new(&model, VerdictStore::open(&served).unwrap(), SALT);
    let report = checker.check_library().unwrap();
    assert_eq!(report.computed, 0, "server-written store must replay sequentially");
    assert_eq!(report.hits + report.deduped, names.len());
    cleanup(&seq);
    cleanup(&served);
}
