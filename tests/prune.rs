//! Differential equivalence of the consistency-driven enumerator
//! (ISSUE 6): the pruned strategy must emit exactly the witnesses the
//! naive generate-then-judge path emits — same `(rf, co)` pairs, same
//! order — across the paper library and generated diy cycles, and its
//! checker results must stay bit-identical at every job count,
//! including under budget exhaustion.

use linux_kernel_memory_model::exec::enumerate::{
    enumerate, EnumOptions, EnumStats, EnumStrategy,
};
use linux_kernel_memory_model::exec::{check_test, check_test_pipelined, PipelineOptions};
use linux_kernel_memory_model::generator::{
    cycles_up_to, default_alphabet, generate, generate_contended,
};
use linux_kernel_memory_model::litmus::library;
use linux_kernel_memory_model::litmus::Test;
use linux_kernel_memory_model::{
    Budget, BudgetKind, CheckOutcome, Herd, InconclusiveReason, ModelChoice,
};
use std::sync::Arc;

fn with_strategy(strategy: EnumStrategy) -> EnumOptions {
    EnumOptions { strategy, ..Default::default() }
}

/// The `(rf, co)` witness sequence of a test under one strategy.
fn witnesses(t: &Test, strategy: EnumStrategy) -> Vec<(Vec<(usize, usize)>, Vec<(usize, usize)>)> {
    enumerate(t, &with_strategy(strategy))
        .unwrap()
        .iter()
        .map(|x| (x.rf.iter().collect(), x.co.iter().collect()))
        .collect()
}

fn assert_same_witnesses(t: &Test, name: &str) {
    let pruned = witnesses(t, EnumStrategy::Pruned);
    let naive = witnesses(t, EnumStrategy::Naive);
    assert_eq!(
        pruned.len(),
        naive.len(),
        "{name}: pruned emitted {} candidates, naive {}",
        pruned.len(),
        naive.len()
    );
    for (i, (p, n)) in pruned.iter().zip(&naive).enumerate() {
        assert_eq!(p, n, "{name}: witness {i} differs between strategies");
    }
}

#[test]
fn library_witnesses_match_naive_exactly() {
    for pt in library::all() {
        assert_same_witnesses(&pt.test(), pt.name);
    }
}

#[test]
fn generated_cycles_up_to_len_5_match_naive_exactly() {
    let cycles = cycles_up_to(5, &default_alphabet());
    assert!(!cycles.is_empty());
    for cycle in &cycles {
        let t = generate(cycle).unwrap();
        assert_same_witnesses(&t, &t.name);
    }
}

#[test]
fn contended_twins_match_naive_exactly() {
    // Contended twins (one location, colliding write values, cycle
    // repeated to the contention budget) are where the two strategies'
    // internal search trees diverge most — the naive path visits an
    // order of magnitude more leaves — so the emitted sequences
    // agreeing here is the strongest equivalence evidence. The naive
    // twin is expensive under the debug profile, so sample the cycle
    // set deterministically; the release-profile prune bench asserts
    // emitted-count equality over the full corpus.
    let cycles = cycles_up_to(5, &default_alphabet());
    let sampled: Vec<_> = cycles.iter().step_by(25).collect();
    assert!(sampled.len() > 100);
    for cycle in sampled {
        let t = generate_contended(cycle).unwrap();
        assert_same_witnesses(&t, &t.name);
    }
}

#[test]
fn algorithm_family_programs_match_naive_exactly() {
    // The refcount and seqlock families exercise shapes the cycle
    // corpus never generates — atomic RMW chains ending in a
    // final-drop acquire, and `__assume`-bounded retry loops — so they
    // probe the pruned enumerator's forced-coherence saturation on
    // multi-write RMW locations.
    use linux_kernel_memory_model::algorithms::{programs, FamilyId, FamilyParams};
    // Default size plus a deeper retry loop; three-thread expansions are
    // left to the release-profile algorithms bench — the naive twin's
    // permutation product makes them minutes-slow under the debug
    // profile.
    let sizes = [
        FamilyParams::default(),
        FamilyParams { retries: 2, ..FamilyParams::default() },
    ];
    for family in [FamilyId::Refcount, FamilyId::Seqlock] {
        for params in &sizes {
            for p in programs(family, params).unwrap() {
                assert_same_witnesses(&p.test, &p.test.name);
            }
        }
    }
}

#[test]
fn raw_mode_ignores_the_strategy_knob() {
    // `prune_scpv: false` must keep the full unfiltered candidate set
    // regardless of strategy: the pruned enumerator only exists behind
    // the Scpv filter.
    for name in ["SB", "MP", "LB+ctrl+mb", "CoRR"] {
        let Some(pt) = library::by_name(name) else { continue };
        let t = pt.test();
        let raw_pruned = enumerate(
            &t,
            &EnumOptions { prune_scpv: false, strategy: EnumStrategy::Pruned, ..Default::default() },
        )
        .unwrap();
        let raw_naive = enumerate(
            &t,
            &EnumOptions { prune_scpv: false, strategy: EnumStrategy::Naive, ..Default::default() },
        )
        .unwrap();
        assert_eq!(raw_pruned.len(), raw_naive.len(), "{name}: raw candidate sets differ");
    }
}

#[test]
fn pipelined_results_are_identical_between_strategies_at_all_job_counts() {
    let model = ModelChoice::Lkmm.model();
    for pt in library::all() {
        let t = pt.test();
        let seq = check_test(model.as_ref(), &t, &with_strategy(EnumStrategy::Naive)).unwrap();
        for strategy in [EnumStrategy::Pruned, EnumStrategy::Naive] {
            for jobs in [1, 2, 8] {
                let got = check_test_pipelined(
                    model.as_ref(),
                    &t,
                    &with_strategy(strategy),
                    &PipelineOptions { jobs, ..Default::default() },
                )
                .unwrap();
                assert_eq!(
                    got, seq,
                    "{} diverged under {strategy:?} with jobs={jobs}",
                    pt.name
                );
            }
        }
    }
}

#[test]
fn budget_trips_yield_job_count_deterministic_partial_tallies() {
    // Candidate fuel is spent per *emitted* candidate, and both
    // strategies emit the identical sequence — so a fuel trip must
    // surface the same partial tally at every job count and under
    // either strategy.
    let budget = Budget::default().with_max_candidates(2);
    let mut tests: Vec<Test> = ["SB", "MP", "LB", "IRIW"]
        .iter()
        .filter_map(|name| library::by_name(name).map(|pt| pt.test()))
        .collect();
    // A contended twin trips the budget mid-way through a search tree
    // the two strategies traverse very differently.
    let mp = linux_kernel_memory_model::generator::parse_cycle("PodWW Rfe PodRR Fre").unwrap();
    tests.push(generate_contended(&mp).unwrap());
    for test in &tests {
        let name = &test.name;
        let total = Herd::new(ModelChoice::Lkmm).check(test).unwrap().result.candidates;
        if total <= 2 {
            continue;
        }
        let mut outcomes = Vec::new();
        for strategy in [EnumStrategy::Pruned, EnumStrategy::Naive] {
            for jobs in [1, 2, 8] {
                let herd = Herd::new(ModelChoice::Lkmm)
                    .with_options(with_strategy(strategy))
                    .with_jobs(jobs)
                    .with_budget(budget.clone());
                let got = herd.check_governed(&test);
                match &got.outcome {
                    CheckOutcome::Inconclusive { reason, partial } => {
                        assert_eq!(
                            *reason,
                            InconclusiveReason::BudgetExceeded(BudgetKind::Candidates),
                            "{name} under {strategy:?} at jobs={jobs}"
                        );
                        assert_eq!(
                            partial.candidates, 2,
                            "{name} under {strategy:?} at jobs={jobs}"
                        );
                    }
                    CheckOutcome::Complete(r) => panic!(
                        "{name} under {strategy:?} at jobs={jobs}: completed ({r:?}) \
                         despite 2-candidate fuel"
                    ),
                }
                outcomes.push(got.outcome);
            }
        }
        for o in &outcomes[1..] {
            assert_eq!(outcomes[0], *o, "{name}: partial tallies diverged");
        }
    }
}

#[test]
fn pruning_counters_report_real_work() {
    let stats = Arc::new(EnumStats::default());
    let opts = EnumOptions { stats: Some(Arc::clone(&stats)), ..Default::default() };
    let mut emitted = 0usize;
    for pt in library::all() {
        emitted += enumerate(&pt.test(), &opts).unwrap().len();
    }
    let snap = stats.snapshot();
    assert_eq!(snap.candidates_emitted, emitted as u64);
    // The pruned path tests exactly the leaves it emits: saturation
    // means no leaf is built only to be filtered.
    assert_eq!(snap.co_leaves_tested, snap.candidates_emitted);
    assert!(snap.rf_prefixes_pruned > 0, "library has doomed rf prefixes");
    assert!(snap.co_pairs_saturated > 0, "library has forced co pairs");

    // The naive twin visits strictly more leaves on the same corpus.
    let naive_stats = Arc::new(EnumStats::default());
    let naive_opts = EnumOptions {
        strategy: EnumStrategy::Naive,
        stats: Some(Arc::clone(&naive_stats)),
        ..Default::default()
    };
    for pt in library::all() {
        let _ = enumerate(&pt.test(), &naive_opts).unwrap();
    }
    let naive_snap = naive_stats.snapshot();
    assert_eq!(naive_snap.candidates_emitted, snap.candidates_emitted);
    assert!(
        naive_snap.co_leaves_tested > snap.co_leaves_tested,
        "naive tested {} leaves, pruned {} — pruning should cut leaves",
        naive_snap.co_leaves_tested,
        snap.co_leaves_tested
    );
}
