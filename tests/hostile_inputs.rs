//! Hostile-input smoke tests (ISSUE satellite 3): malformed litmus and
//! malformed serve JSON must produce structured errors, never panics,
//! stack overflows, or unbounded buffering.

use linux_kernel_memory_model::litmus::parse;
use linux_kernel_memory_model::service::{
    serve_with, BatchChecker, ServeOptions, VerdictStore,
};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Inputs the parser must reject with a structured error.
fn certainly_invalid_litmus() -> Vec<String> {
    let mut corpus: Vec<String> = [
        "",
        " ",
        "\0\0\0\0",
        "C",
        "C name { x=0; } P0(int *x) {",
        "C name { x=0; } P0(int *x) { WRITE_ONCE(*x, 1); } exists",
        "C name { x=0; } P0(int *x) { WRITE_ONCE(*x, 1); } exists (",
        "C name { x=0; } P0(int *x) { WRITE_ONCE(*x, 1); } exists (0:r0=",
        "C name { x=0; } P0(int *x) { garbage tokens @@@ here; } exists (0:r0=0)",
        "exists (0:r0=0)",
        "{ x=0; } exists (0:r0=0)",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();

    // Pathological nesting: must be a parse error, not a stack overflow.
    corpus.push(format!(
        "C deep {{ x=0; }} P0(int *x) {{ }} exists ({}0:r0=0{})",
        "(".repeat(100_000),
        ")".repeat(100_000)
    ));
    corpus.push(format!(
        "C deepif {{ x=0; }} P0(int *x) {{ {} }} exists (0:r0=0)",
        "if (1) { ".repeat(100_000)
    ));
    corpus.push("! ".repeat(100_000));
    corpus
}

/// Inputs that are odd but may legally parse (lenient grammar corners);
/// the only requirement is that the parser does not panic on them.
fn odd_but_tolerated_litmus() -> Vec<String> {
    vec![
        "C name".to_string(),
        "C name { x=0; }".to_string(),
        "C name { x=0; } P0(int *x) { WRITE_ONCE(*x, 1); }".to_string(),
        "C name { x=0 } P0(int *x) { } exists (0:r0=0)".to_string(),
        "C name { x=0; } P99(int *x) { } exists (42:r7=1)".to_string(),
        "C dup { x=0; } P0(int *x) { } P0(int *x) { } exists (0:r0=0)".to_string(),
        format!("C long {{ x=0; }} P0(int *x) {{ {} }}", "r0 = 1; ".repeat(50_000)),
    ]
}

#[test]
fn malformed_litmus_errors_without_panicking() {
    for (i, source) in certainly_invalid_litmus().into_iter().enumerate() {
        let outcome = catch_unwind(AssertUnwindSafe(|| parse(&source)));
        match outcome {
            Ok(Err(_)) => {} // structured parse error: the contract
            Ok(Ok(test)) => panic!("invalid[{i}] unexpectedly parsed as {:?}", test.name),
            Err(_) => panic!("invalid[{i}] panicked the parser"),
        }
    }
    for (i, source) in odd_but_tolerated_litmus().into_iter().enumerate() {
        if catch_unwind(AssertUnwindSafe(|| parse(&source))).is_err() {
            panic!("odd[{i}] panicked the parser");
        }
    }
}

fn serve_session(input: &str, opts: &ServeOptions) -> (Vec<String>, usize, usize) {
    let model = linux_kernel_memory_model::model::Lkmm::new();
    let mut checker = BatchChecker::new(&model, VerdictStore::in_memory(), "hostile");
    let mut out = Vec::new();
    let summary = serve_with(&mut checker, input.as_bytes(), &mut out, opts)
        .expect("transport to in-memory buffers cannot fail");
    let responses =
        String::from_utf8(out).unwrap().lines().map(|l| l.to_string()).collect::<Vec<_>>();
    (responses, summary.requests, summary.errors)
}

#[test]
fn malformed_serve_requests_are_error_responses_not_crashes() {
    let hostile_lines = [
        "",
        "not json at all",
        "{",
        "}",
        "[]",
        "42",
        "null",
        "\"just a string\"",
        "{\"op\":\"unknown\"}",
        "{\"op\":\"check\"}",
        "{\"op\":\"check\",\"litmus\":42}",
        "{\"op\":\"check\",\"litmus\":\"not litmus\"}",
        "{\"op\":\"batch\",\"tests\":\"not an array\"}",
        "{\"op\":\"check\",\"litmus\":\"C x\",\"extra\":{\"a\":[1,2,{\"b\":null}]}}",
    ];
    let input = hostile_lines.join("\n");
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        serve_session(&input, &ServeOptions::default())
    }));
    let (responses, requests, errors) = outcome.expect("serve loop must not panic");
    // Empty lines are skipped; everything else is answered.
    assert_eq!(responses.len(), requests);
    assert_eq!(errors, requests, "every hostile request is an error response");
    for r in &responses {
        assert!(r.starts_with("{\"ok\":false"), "unexpected response {r}");
    }
}

#[test]
fn deeply_nested_serve_json_is_an_error_not_a_stack_overflow() {
    let depth = 100_000;
    let bomb = format!("{}{}", "[".repeat(depth), "]".repeat(depth));
    let input = format!("{{\"op\":\"check\",\"litmus\":{bomb}}}\n{bomb}\n");
    let (responses, _, errors) = serve_session(&input, &ServeOptions::default());
    assert_eq!(errors, 2);
    for r in &responses {
        assert!(r.starts_with("{\"ok\":false"), "unexpected response {r}");
    }
}

#[test]
fn oversized_request_lines_are_rejected_under_a_tiny_cap() {
    let opts = ServeOptions { max_request_bytes: 64, ..ServeOptions::default() };
    let huge = format!("{{\"op\":\"check\",\"litmus\":\"{}\"}}", "x".repeat(1 << 20));
    let input = format!("{huge}\n{{\"op\":\"stats\"}}\n");
    let (responses, requests, errors) = serve_session(&input, &opts);
    // The oversized line is drained and answered; the next request on the
    // same connection still works.
    assert_eq!(requests, 2);
    assert_eq!(errors, 1);
    assert!(responses[0].starts_with("{\"ok\":false"));
    assert!(responses[0].contains("request line exceeds"), "got {}", responses[0]);
    assert!(responses[1].starts_with("{\"ok\":true"), "got {}", responses[1]);
}

#[test]
fn invalid_utf8_request_is_an_error_response() {
    let model = linux_kernel_memory_model::model::Lkmm::new();
    let mut checker = BatchChecker::new(&model, VerdictStore::in_memory(), "hostile");
    let mut input = b"{\"op\":\"stats\"}\n".to_vec();
    input.extend_from_slice(&[0xff, 0xfe, 0x80, b'\n']);
    input.extend_from_slice(b"{\"op\":\"stats\"}\n");
    let mut out = Vec::new();
    let summary =
        serve_with(&mut checker, &input[..], &mut out, &ServeOptions::default()).unwrap();
    assert_eq!(summary.requests, 3);
    assert_eq!(summary.errors, 1);
    let text = String::from_utf8(out).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines[0].starts_with("{\"ok\":true"));
    assert!(lines[1].starts_with("{\"ok\":false"));
    assert!(lines[2].starts_with("{\"ok\":true"));
}
