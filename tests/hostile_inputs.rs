//! Hostile-input smoke tests (ISSUE satellite 3): malformed litmus and
//! malformed serve JSON must produce structured errors, never panics,
//! stack overflows, or unbounded buffering.

use linux_kernel_memory_model::litmus::parse;
use linux_kernel_memory_model::service::{
    serve_with, BatchChecker, ServeOptions, VerdictStore,
};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Inputs the parser must reject with a structured error.
fn certainly_invalid_litmus() -> Vec<String> {
    let mut corpus: Vec<String> = [
        "",
        " ",
        "\0\0\0\0",
        "C",
        "C name { x=0; } P0(int *x) {",
        "C name { x=0; } P0(int *x) { WRITE_ONCE(*x, 1); } exists",
        "C name { x=0; } P0(int *x) { WRITE_ONCE(*x, 1); } exists (",
        "C name { x=0; } P0(int *x) { WRITE_ONCE(*x, 1); } exists (0:r0=",
        "C name { x=0; } P0(int *x) { garbage tokens @@@ here; } exists (0:r0=0)",
        "exists (0:r0=0)",
        "{ x=0; } exists (0:r0=0)",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();

    // Pathological nesting: must be a parse error, not a stack overflow.
    corpus.push(format!(
        "C deep {{ x=0; }} P0(int *x) {{ }} exists ({}0:r0=0{})",
        "(".repeat(100_000),
        ")".repeat(100_000)
    ));
    corpus.push(format!(
        "C deepif {{ x=0; }} P0(int *x) {{ {} }} exists (0:r0=0)",
        "if (1) { ".repeat(100_000)
    ));
    corpus.push("! ".repeat(100_000));
    corpus
}

/// Inputs that are odd but may legally parse (lenient grammar corners);
/// the only requirement is that the parser does not panic on them.
fn odd_but_tolerated_litmus() -> Vec<String> {
    vec![
        "C name".to_string(),
        "C name { x=0; }".to_string(),
        "C name { x=0; } P0(int *x) { WRITE_ONCE(*x, 1); }".to_string(),
        "C name { x=0 } P0(int *x) { } exists (0:r0=0)".to_string(),
        "C name { x=0; } P99(int *x) { } exists (42:r7=1)".to_string(),
        "C dup { x=0; } P0(int *x) { } P0(int *x) { } exists (0:r0=0)".to_string(),
        format!("C long {{ x=0; }} P0(int *x) {{ {} }}", "r0 = 1; ".repeat(50_000)),
    ]
}

#[test]
fn malformed_litmus_errors_without_panicking() {
    for (i, source) in certainly_invalid_litmus().into_iter().enumerate() {
        let outcome = catch_unwind(AssertUnwindSafe(|| parse(&source)));
        match outcome {
            Ok(Err(_)) => {} // structured parse error: the contract
            Ok(Ok(test)) => panic!("invalid[{i}] unexpectedly parsed as {:?}", test.name),
            Err(_) => panic!("invalid[{i}] panicked the parser"),
        }
    }
    for (i, source) in odd_but_tolerated_litmus().into_iter().enumerate() {
        if catch_unwind(AssertUnwindSafe(|| parse(&source))).is_err() {
            panic!("odd[{i}] panicked the parser");
        }
    }
}

fn serve_session(input: &str, opts: &ServeOptions) -> (Vec<String>, usize, usize) {
    let model = linux_kernel_memory_model::model::Lkmm::new();
    let mut checker = BatchChecker::new(&model, VerdictStore::in_memory(), "hostile");
    let mut out = Vec::new();
    let summary = serve_with(&mut checker, input.as_bytes(), &mut out, opts)
        .expect("transport to in-memory buffers cannot fail");
    let responses =
        String::from_utf8(out).unwrap().lines().map(|l| l.to_string()).collect::<Vec<_>>();
    (responses, summary.requests, summary.errors)
}

#[test]
fn malformed_serve_requests_are_error_responses_not_crashes() {
    let hostile_lines = [
        "",
        "not json at all",
        "{",
        "}",
        "[]",
        "42",
        "null",
        "\"just a string\"",
        "{\"op\":\"unknown\"}",
        "{\"op\":\"check\"}",
        "{\"op\":\"check\",\"litmus\":42}",
        "{\"op\":\"check\",\"litmus\":\"not litmus\"}",
        "{\"op\":\"batch\",\"tests\":\"not an array\"}",
        "{\"op\":\"check\",\"litmus\":\"C x\",\"extra\":{\"a\":[1,2,{\"b\":null}]}}",
    ];
    let input = hostile_lines.join("\n");
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        serve_session(&input, &ServeOptions::default())
    }));
    let (responses, requests, errors) = outcome.expect("serve loop must not panic");
    // Empty lines are skipped; everything else is answered.
    assert_eq!(responses.len(), requests);
    assert_eq!(errors, requests, "every hostile request is an error response");
    for r in &responses {
        assert!(r.starts_with("{\"ok\":false"), "unexpected response {r}");
    }
}

#[test]
fn deeply_nested_serve_json_is_an_error_not_a_stack_overflow() {
    let depth = 100_000;
    let bomb = format!("{}{}", "[".repeat(depth), "]".repeat(depth));
    let input = format!("{{\"op\":\"check\",\"litmus\":{bomb}}}\n{bomb}\n");
    let (responses, _, errors) = serve_session(&input, &ServeOptions::default());
    assert_eq!(errors, 2);
    for r in &responses {
        assert!(r.starts_with("{\"ok\":false"), "unexpected response {r}");
    }
}

#[test]
fn oversized_request_lines_are_rejected_under_a_tiny_cap() {
    let opts = ServeOptions { max_request_bytes: 64, ..ServeOptions::default() };
    let huge = format!("{{\"op\":\"check\",\"litmus\":\"{}\"}}", "x".repeat(1 << 20));
    let input = format!("{huge}\n{{\"op\":\"stats\"}}\n");
    let (responses, requests, errors) = serve_session(&input, &opts);
    // The oversized line is drained and answered; the next request on the
    // same connection still works.
    assert_eq!(requests, 2);
    assert_eq!(errors, 1);
    assert!(responses[0].starts_with("{\"ok\":false"));
    assert!(responses[0].contains("request line exceeds"), "got {}", responses[0]);
    assert!(responses[1].starts_with("{\"ok\":true"), "got {}", responses[1]);
}

#[test]
fn invalid_utf8_request_is_an_error_response() {
    let model = linux_kernel_memory_model::model::Lkmm::new();
    let mut checker = BatchChecker::new(&model, VerdictStore::in_memory(), "hostile");
    let mut input = b"{\"op\":\"stats\"}\n".to_vec();
    input.extend_from_slice(&[0xff, 0xfe, 0x80, b'\n']);
    input.extend_from_slice(b"{\"op\":\"stats\"}\n");
    let mut out = Vec::new();
    let summary =
        serve_with(&mut checker, &input[..], &mut out, &ServeOptions::default()).unwrap();
    assert_eq!(summary.requests, 3);
    assert_eq!(summary.errors, 1);
    let text = String::from_utf8(out).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines[0].starts_with("{\"ok\":true"));
    assert!(lines[1].starts_with("{\"ok\":false"));
    assert!(lines[2].starts_with("{\"ok\":true"));
}

// --- TCP listener hardening (ISSUE 9 satellite 3) ---------------------
//
// The same contracts as the stdio loop, plus the network-only attack
// surface: a hostile connection may cost itself, never the server or
// its other clients.

mod tcp {
    use linux_kernel_memory_model::exec::model::AllowAll;
    use linux_kernel_memory_model::server::{serve_tcp, ServerConfig, ServerSummary};
    use linux_kernel_memory_model::service::{ServeOptions, ShardedStore};
    use lkmm_core::quota::ClientQuota;
    use std::io::{BufRead, BufReader, Read, Write};
    use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    fn start(config: ServerConfig) -> (SocketAddr, thread::JoinHandle<ServerSummary>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = thread::spawn(move || {
            let store = Arc::new(ShardedStore::in_memory(2));
            serve_tcp(listener, &|| Box::new(AllowAll), "hostile-tcp", store, &config)
                .expect("server survives hostile clients")
        });
        (addr, handle)
    }

    fn roundtrip(addr: SocketAddr, lines: &[&str]) -> Vec<String> {
        let mut stream = TcpStream::connect(addr).unwrap();
        for line in lines {
            let _ = writeln!(stream, "{line}");
        }
        let _ = stream.shutdown(Shutdown::Write);
        BufReader::new(stream).lines().map_while(Result::ok).collect()
    }

    fn shutdown(addr: SocketAddr) {
        let _ = roundtrip(addr, &[r#"{"op":"shutdown"}"#]);
    }

    #[test]
    fn oversized_tcp_line_is_rejected_and_the_connection_survives() {
        let config = ServerConfig {
            serve: ServeOptions { max_request_bytes: 64, ..ServeOptions::default() },
            ..ServerConfig::default()
        };
        let (addr, handle) = start(config);
        let huge = format!("{{\"op\":\"check\",\"litmus\":\"{}\"}}", "x".repeat(1 << 20));
        let responses = roundtrip(addr, &[&huge, r#"{"op":"stats"}"#]);
        assert_eq!(responses.len(), 2, "oversized line answered, connection kept");
        assert!(responses[0].contains("request line exceeds"), "{}", responses[0]);
        assert!(responses[1].contains("\"ok\":true"), "{}", responses[1]);
        shutdown(addr);
        handle.join().unwrap();
    }

    #[test]
    fn mid_request_disconnect_costs_only_that_client() {
        let (addr, handle) = start(ServerConfig::default());
        // Half a request line, then the connection dies without a newline.
        {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream.write_all(b"{\"op\":\"check\",\"litm").unwrap();
            // Drop without shutdown: the torn line dies with the socket.
        }
        // The server still answers the next client.
        let responses = roundtrip(addr, &[r#"{"op":"stats"}"#]);
        assert_eq!(responses.len(), 1);
        assert!(responses[0].contains("\"ok\":true"), "{}", responses[0]);
        shutdown(addr);
        handle.join().unwrap();
    }

    #[test]
    fn slowloris_trickle_is_dropped_by_the_idle_timeout() {
        let config = ServerConfig {
            idle_timeout: Some(Duration::from_millis(100)),
            ..ServerConfig::default()
        };
        let (addr, handle) = start(config);
        let mut stream = TcpStream::connect(addr).unwrap();
        // Trickle a request one byte at a time with gaps longer than the
        // inter-byte timeout: the server must hang up on us.
        let mut dropped = false;
        for _ in 0..20 {
            if stream.write_all(b"{").is_err() {
                dropped = true;
                break;
            }
            thread::sleep(Duration::from_millis(300));
        }
        if !dropped {
            // The write side may buffer; the read side sees the close.
            let mut buf = Vec::new();
            let _ = stream.take(1024).read_to_end(&mut buf);
            assert!(buf.is_empty(), "no response to an unfinished line");
        }
        // A well-behaved client is still served.
        let responses = roundtrip(addr, &[r#"{"op":"stats"}"#]);
        assert_eq!(responses.len(), 1);
        assert!(responses[0].contains("\"ok\":true"), "{}", responses[0]);
        shutdown(addr);
        handle.join().unwrap();
    }

    #[test]
    fn over_quota_tcp_client_is_rejected_with_typed_errors() {
        let config = ServerConfig {
            quota: ClientQuota::default().with_max_requests(1),
            ..ServerConfig::default()
        };
        let (addr, handle) = start(config);
        let responses =
            roundtrip(addr, &[r#"{"op":"stats"}"#, r#"{"op":"stats"}"#, r#"{"op":"stats"}"#]);
        assert_eq!(responses.len(), 3, "rejections are answers, not hangups");
        assert!(responses[0].contains("\"ok\":true"), "{}", responses[0]);
        for r in &responses[1..] {
            assert!(r.contains("\"code\":\"over-quota\""), "{r}");
        }
        // The quota is per connection, not per server.
        let fresh = roundtrip(addr, &[r#"{"op":"stats"}"#]);
        assert!(fresh[0].contains("\"ok\":true"), "{}", fresh[0]);
        shutdown(addr);
        let summary = handle.join().unwrap();
        assert_eq!(summary.over_quota, 2);
    }
}
