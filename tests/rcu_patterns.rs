//! Additional RCU patterns beyond Figures 10/11: multiple readers,
//! multiple grace periods, RCU mixed with fences, and the classic
//! pointer-publish idiom with `rcu_dereference`/`rcu_assign_pointer`
//! (Table 4).

use linux_kernel_memory_model::{Herd, ModelChoice};
use lkmm_exec::Verdict;
use lkmm_sim::{run_test, Arch, RunConfig};

fn lkmm(source: &str) -> Verdict {
    Herd::new(ModelChoice::Lkmm).check_source(source).unwrap().result.verdict
}

fn assert_sim_sound(source: &str) {
    let test = lkmm_litmus::parse(source).unwrap();
    for arch in Arch::ALL {
        let stats = run_test(&test, arch, &RunConfig { iterations: 2_000, seed: 13 }).unwrap();
        assert_eq!(stats.observed, 0, "{} on {}", test.name, arch.name());
    }
}

/// Two independent readers against one updater: both readers' critical
/// sections are protected by the same grace period.
#[test]
fn two_readers_one_updater() {
    let src = "C RCU-MP-two-readers\n{ x=0; y=0; }\n\
         P0(int *x, int *y) { int r1; int r2; rcu_read_lock(); \
         r1 = READ_ONCE(*x); r2 = READ_ONCE(*y); rcu_read_unlock(); }\n\
         P1(int *x, int *y) { int r1; int r2; rcu_read_lock(); \
         r1 = READ_ONCE(*x); r2 = READ_ONCE(*y); rcu_read_unlock(); }\n\
         P2(int *x, int *y) { WRITE_ONCE(*y, 1); synchronize_rcu(); \
         WRITE_ONCE(*x, 1); }\n\
         exists (0:r1=1 /\\ 0:r2=0)";
    assert_eq!(lkmm(src), Verdict::Forbidden);
    assert_sim_sound(src);
    // The second reader independently too.
    let src2 = src.replace("exists (0:r1=1 /\\ 0:r2=0)", "exists (1:r1=1 /\\ 1:r2=0)");
    assert_eq!(lkmm(&src2), Verdict::Forbidden);
}

/// The classic publish idiom: rcu_assign_pointer is a release store and
/// rcu_dereference carries the Alpha barrier, so a reader dereferencing
/// the new pointer must see the initialised payload.
#[test]
fn pointer_publish_with_rcu_primitives() {
    let src = "C rcu-publish\n{ p=&z; z=0; w=0; }\n\
         P0(int **p, int *w) { WRITE_ONCE(*w, 1); rcu_assign_pointer(*p, &w); }\n\
         P1(int **p) { int *r1; int r2; rcu_read_lock(); \
         r1 = rcu_dereference(*p); r2 = READ_ONCE(*r1); rcu_read_unlock(); }\n\
         exists (1:r1=&w /\\ 1:r2=0)";
    assert_eq!(lkmm(src), Verdict::Forbidden, "publish must not expose stale payload");
    assert_sim_sound(src);
    // With a plain READ_ONCE of the pointer the outcome is allowed (the
    // Alpha gap again: no rb-dep).
    let src2 = src
        .replace("r1 = rcu_dereference(*p);", "r1 = READ_ONCE(*p);")
        .replace("C rcu-publish", "C rcu-publish-plain");
    assert_eq!(lkmm(&src2), Verdict::Allowed);
}

/// A grace period between two updates seen from inside one RSCS: the
/// reader may not see the second update *before* the first (reads in
/// either order).
#[test]
fn rscs_cannot_straddle_two_writes_separated_by_gp() {
    for (name, reads) in [
        ("fwd", "r1 = READ_ONCE(*x); r2 = READ_ONCE(*y);"),
        ("rev", "r2 = READ_ONCE(*y); r1 = READ_ONCE(*x);"),
    ] {
        let src = format!(
            "C rcu-straddle-{name}\n{{ x=0; y=0; }}\n\
             P0(int *x, int *y) {{ int r1; int r2; rcu_read_lock(); {reads} \
             rcu_read_unlock(); }}\n\
             P1(int *x, int *y) {{ WRITE_ONCE(*y, 1); synchronize_rcu(); \
             WRITE_ONCE(*x, 1); }}\n\
             exists (0:r1=1 /\\ 0:r2=0)"
        );
        assert_eq!(lkmm(&src), Verdict::Forbidden, "{name}");
    }
}

/// Unlike a grace period, a full fence on the updater side with an
/// *unordered* reader does not forbid the pattern — the RSCS is what
/// makes both read orders forbidden (the §4.1 "stronger than fences"
/// point, exercised beyond Figure 11).
#[test]
fn fences_cannot_replace_the_critical_section() {
    let src = "C no-rscs\n{ x=0; y=0; }\n\
         P0(int *x, int *y) { int r1; int r2; \
         r2 = READ_ONCE(*y); r1 = READ_ONCE(*x); }\n\
         P1(int *x, int *y) { WRITE_ONCE(*y, 1); smp_mb(); WRITE_ONCE(*x, 1); }\n\
         exists (0:r1=1 /\\ 0:r2=0)";
    assert_eq!(lkmm(src), Verdict::Allowed, "no RSCS, reversed reads: allowed");
    let src2 = src
        .replace(
            "r2 = READ_ONCE(*y); r1 = READ_ONCE(*x); }",
            "rcu_read_lock(); r2 = READ_ONCE(*y); r1 = READ_ONCE(*x); rcu_read_unlock(); }",
        )
        .replace("smp_mb();", "synchronize_rcu();")
        .replace("C no-rscs", "C with-rscs");
    assert_eq!(lkmm(&src2), Verdict::Forbidden, "RSCS + GP forbids both orders");
}

/// Two grace periods in one updater: transitively protects a three-write
/// chain from one reader.
#[test]
fn two_grace_periods_chain() {
    let src = "C rcu-two-gps\n{ x=0; y=0; z=0; }\n\
         P0(int *x, int *z) { int r1; int r2; rcu_read_lock(); \
         r1 = READ_ONCE(*x); r2 = READ_ONCE(*z); rcu_read_unlock(); }\n\
         P1(int *x, int *y, int *z) { WRITE_ONCE(*z, 1); synchronize_rcu(); \
         WRITE_ONCE(*y, 1); synchronize_rcu(); WRITE_ONCE(*x, 1); }\n\
         exists (0:r1=1 /\\ 0:r2=0)";
    assert_eq!(lkmm(src), Verdict::Forbidden);
    assert_sim_sound(src);
}

/// An RSCS in *each* of two readers with a GP between the updater's
/// writes: a cycle through both RSCSes and one GP is allowed (one GP
/// cannot order two independent critical sections against each other) —
/// the "counting" side of Theorem 1: #RSCS > #GP.
#[test]
fn one_gp_cannot_order_two_rscs() {
    let src = "C rcu-2rscs-1gp\n{ x=0; y=0; z=0; w=0; }\n\
         P0(int *x, int *y) { int r1; rcu_read_lock(); WRITE_ONCE(*x, 1); \
         r1 = READ_ONCE(*y); rcu_read_unlock(); }\n\
         P1(int *y, int *z) { WRITE_ONCE(*y, 1); synchronize_rcu(); \
         WRITE_ONCE(*z, 1); }\n\
         P2(int *x, int *z) { int r1; int r2; rcu_read_lock(); \
         r1 = READ_ONCE(*z); r2 = READ_ONCE(*x); rcu_read_unlock(); }\n\
         exists (0:r1=0 /\\ 2:r1=1 /\\ 2:r2=0)";
    assert_eq!(lkmm(src), Verdict::Allowed, "two RSCSes, one GP: cycle permitted");
    // A second grace period tips the count: #GP >= #RSCS forbids it.
    let src2 = src
        .replace(
            "P2(int *x, int *z) { int r1; int r2; rcu_read_lock(); \
         r1 = READ_ONCE(*z); r2 = READ_ONCE(*x); rcu_read_unlock(); }",
            "P2(int *x, int *z) { int r1; int r2; \
         r1 = READ_ONCE(*z); synchronize_rcu(); r2 = READ_ONCE(*x); }",
        )
        .replace("C rcu-2rscs-1gp", "C rcu-1rscs-2gp");
    assert_eq!(lkmm(&src2), Verdict::Forbidden, "one RSCS, two GPs: forbidden");
}
