//! The arithmetic RMW family (`atomic_add_return` and friends, the
//! kernel's atomic-ops semantics document \[69\] that the paper's Table 3
//! builds on): orderings and atomicity across the axiomatic model, the
//! simulators, and the host runner.

use linux_kernel_memory_model::{Herd, ModelChoice};
use lkmm_exec::Verdict;

fn lkmm(source: &str) -> Verdict {
    Herd::new(ModelChoice::Lkmm).check_source(source).unwrap().result.verdict
}

/// Two concurrent increments never lose an update (the At axiom).
#[test]
fn concurrent_increments_are_atomic() {
    let v = lkmm(
        "C inc-inc\n{ c=0; }\n\
         P0(atomic_t *c) { int r0; r0 = atomic_add_return(1, c); }\n\
         P1(atomic_t *c) { int r0; r0 = atomic_add_return(1, c); }\n\
         exists (c=1)",
    );
    assert_eq!(v, Verdict::Forbidden, "an increment was lost");
    let v2 = lkmm(
        "C inc-inc2\n{ c=0; }\n\
         P0(atomic_t *c) { int r0; r0 = atomic_add_return(1, c); }\n\
         P1(atomic_t *c) { int r0; r0 = atomic_add_return(1, c); }\n\
         exists (c=2 /\\ 0:r0=1 /\\ 1:r0=2)",
    );
    assert_eq!(v2, Verdict::Allowed, "serialised increments return 1 then 2");
}

/// `atomic_add_return()` (no suffix) is fully ordered: it forbids store
/// buffering like `smp_mb` (Table 3's xchg pattern extends to the whole
/// value-returning family).
#[test]
fn full_atomic_add_return_orders_like_mb() {
    let v = lkmm(
        "C SB+add-returns\n{ x=0; y=0; c=0; d=0; }\n\
         P0(int *x, int *y, atomic_t *c) { int t; int r0; WRITE_ONCE(*x, 1); \
         t = atomic_add_return(1, c); r0 = READ_ONCE(*y); }\n\
         P1(int *x, int *y, atomic_t *d) { int t; int r0; WRITE_ONCE(*y, 1); \
         t = atomic_add_return(1, d); r0 = READ_ONCE(*x); }\n\
         exists (0:r0=0 /\\ 1:r0=0)",
    );
    assert_eq!(v, Verdict::Forbidden);
    // The relaxed variant provides no such ordering.
    let v2 = lkmm(
        "C SB+add-return-relaxed\n{ x=0; y=0; c=0; d=0; }\n\
         P0(int *x, int *y, atomic_t *c) { int t; int r0; WRITE_ONCE(*x, 1); \
         t = atomic_add_return_relaxed(1, c); r0 = READ_ONCE(*y); }\n\
         P1(int *x, int *y, atomic_t *d) { int t; int r0; WRITE_ONCE(*y, 1); \
         t = atomic_add_return_relaxed(1, d); r0 = READ_ONCE(*x); }\n\
         exists (0:r0=0 /\\ 1:r0=0)",
    );
    assert_eq!(v2, Verdict::Allowed);
}

/// Void `atomic_add()` provides no ordering at all ([69]: "void atomic
/// operations give no ordering guarantees").
#[test]
fn void_atomic_add_is_unordered() {
    let v = lkmm(
        "C MP+atomic-add\n{ x=0; y=0; c=0; }\n\
         P0(int *x, int *y, atomic_t *c) { WRITE_ONCE(*x, 1); atomic_add(1, c); \
         WRITE_ONCE(*y, 1); }\n\
         P1(int *x, int *y) { int r0; int r1; r0 = READ_ONCE(*y); smp_rmb(); \
         r1 = READ_ONCE(*x); }\n\
         exists (1:r0=1 /\\ 1:r1=0)",
    );
    assert_eq!(v, Verdict::Allowed);
}

/// `atomic_fetch_add` returns the old value, `atomic_add_return` the new.
#[test]
fn fetch_vs_return_values() {
    let v = lkmm(
        "C fetch-vs-return\n{ c=5; }\n\
         P0(atomic_t *c) { int old; int new; old = atomic_fetch_add_relaxed(2, c); \
         new = atomic_add_return_relaxed(3, c); }\n\
         exists (0:old=5 /\\ 0:new=10 /\\ c=10)",
    );
    assert_eq!(v, Verdict::Allowed);
    let v2 = lkmm(
        "C fetch-wrong\n{ c=5; }\n\
         P0(atomic_t *c) { int old; old = atomic_fetch_add_relaxed(2, c); }\n\
         exists (0:old=7)",
    );
    assert_eq!(v2, Verdict::Forbidden, "fetch_add must return the old value");
}

/// Release/acquire variants chain like store-release/load-acquire.
#[test]
fn acquire_release_atomic_ops_give_message_passing() {
    let v = lkmm(
        "C MP+add-rel+add-acq\n{ x=0; c=0; }\n\
         P0(int *x, atomic_t *c) { int t; WRITE_ONCE(*x, 1); \
         t = atomic_add_return_release(1, c); }\n\
         P1(int *x, atomic_t *c) { int t; int r1; t = atomic_fetch_add_acquire(0, c); \
         r1 = READ_ONCE(*x); }\n\
         exists (1:t=1 /\\ 1:r1=0)",
    );
    assert_eq!(v, Verdict::Forbidden);
}

/// The simulators and the host agree: no lost updates, full-ordered SB
/// never observed.
#[test]
fn atomic_ops_on_simulators_and_host() {
    use lkmm_klitmus::{run_on_host, HostConfig};
    use lkmm_sim::{run_test, Arch, RunConfig};
    let lost_update = lkmm_litmus::parse(
        "C inc-inc\n{ c=0; }\n\
         P0(atomic_t *c) { int r0; r0 = atomic_add_return(1, c); }\n\
         P1(atomic_t *c) { int r0; r0 = atomic_add_return(1, c); }\n\
         exists (c=1)",
    )
    .unwrap();
    for arch in Arch::ALL {
        let stats =
            run_test(&lost_update, arch, &RunConfig { iterations: 3_000, seed: 77 }).unwrap();
        assert_eq!(stats.observed, 0, "lost update on {}", arch.name());
    }
    let stats = run_on_host(&lost_update, &HostConfig { iterations: 20_000 }).unwrap();
    assert_eq!(stats.observed, 0, "lost update on the host");
}

/// Round-trip through the pretty-printer.
#[test]
fn atomic_ops_round_trip() {
    let src = "C rt\n{ c=0; }\n\
         P0(atomic_t *c) { int a; int b; a = atomic_fetch_add_acquire(1, c); \
         b = atomic_sub_return_release(2, c); atomic_xor(3, c); }\n\
         exists (c=2)";
    let t = lkmm_litmus::parse(src).unwrap();
    let printed = t.to_litmus_string();
    let reparsed = lkmm_litmus::parse(&printed).unwrap_or_else(|e| panic!("{printed}\n{e}"));
    assert_eq!(t, reparsed, "{printed}");
}
