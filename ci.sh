#!/bin/sh
# Offline-safe CI: tier-1 build + tests, then the library cross-checks
# that guard the parallel pipeline. No network, no extra dependencies.
set -eu

echo "== tier-1: release build =="
cargo build --workspace --release

echo "== tier-1: test suite =="
cargo test --workspace --quiet

echo "== pipeline cross-check: library verdicts at jobs 1/2/8 =="
cargo test --release --test pipeline --quiet

echo "== herd-rs --library is job-count invariant =="
BIN=target/release/herd-rs
cargo build --release --bin herd-rs
"$BIN" --library --jobs 1 > /tmp/lkmm-library-j1.out
"$BIN" --library --jobs 4 > /tmp/lkmm-library-j4.out
"$BIN" --library           > /tmp/lkmm-library-auto.out
cmp /tmp/lkmm-library-j1.out /tmp/lkmm-library-j4.out
cmp /tmp/lkmm-library-j1.out /tmp/lkmm-library-auto.out
rm -f /tmp/lkmm-library-j1.out /tmp/lkmm-library-j4.out /tmp/lkmm-library-auto.out

echo "== ci.sh: all green =="
