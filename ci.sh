#!/bin/sh
# Offline-safe CI: tier-1 build + tests, then the library cross-checks
# that guard the parallel pipeline. No network, no extra dependencies.
set -eu

echo "== tier-1: release build =="
cargo build --workspace --release

echo "== tier-1: test suite =="
cargo test --workspace --quiet

echo "== pipeline cross-check: library verdicts at jobs 1/2/8 =="
cargo test --release --test pipeline --quiet

echo "== herd-rs --library is job-count invariant =="
BIN=target/release/herd-rs
cargo build --release --bin herd-rs
"$BIN" --library --jobs 1 > /tmp/lkmm-library-j1.out
"$BIN" --library --jobs 4 > /tmp/lkmm-library-j4.out
"$BIN" --library           > /tmp/lkmm-library-auto.out
cmp /tmp/lkmm-library-j1.out /tmp/lkmm-library-j4.out
cmp /tmp/lkmm-library-j1.out /tmp/lkmm-library-auto.out

echo "== verdict store: cold/warm library round-trip is byte-identical =="
STORE=/tmp/lkmm-ci-store.bin
rm -f "$STORE"
"$BIN" --library --store "$STORE" > /tmp/lkmm-library-cold.out 2> /tmp/lkmm-store-cold.err
"$BIN" --library --store "$STORE" > /tmp/lkmm-library-warm.out 2> /tmp/lkmm-store-warm.err
# Store runs match each other AND the storeless output, byte for byte.
cmp /tmp/lkmm-library-cold.out /tmp/lkmm-library-warm.out
cmp /tmp/lkmm-library-j1.out /tmp/lkmm-library-cold.out
# The warm pass must be pure replay: zero candidate enumerations.
grep -q ' 0 computed, .* 0 candidates enumerated' /tmp/lkmm-store-warm.err

echo "== serve mode: JSON-lines smoke test over the warm store =="
printf '%s\n' \
    '{"op":"check","name":"SB"}' \
    '{"op":"check","name":"MP+wmb+rmb"}' \
    '{"op":"batch","library":true}' \
    '{"op":"stats"}' \
    '{"op":"flush"}' \
    | "$BIN" serve --store "$STORE" > /tmp/lkmm-serve.out 2> /dev/null
test "$(wc -l < /tmp/lkmm-serve.out)" -eq 5
grep -q '"name":"SB".*"verdict":"Allow".*"cache":"hit"' /tmp/lkmm-serve.out
grep -q '"name":"MP+wmb+rmb".*"verdict":"Forbid".*"cache":"hit"' /tmp/lkmm-serve.out
grep -q '"op":"batch".*"computed":0.*"candidates_enumerated":0' /tmp/lkmm-serve.out
grep -q '"op":"stats"' /tmp/lkmm-serve.out
if grep -q '"ok":false' /tmp/lkmm-serve.out; then
    echo "serve smoke test produced an error response" >&2
    exit 1
fi
rm -f "$STORE" /tmp/lkmm-library-j1.out /tmp/lkmm-library-j4.out /tmp/lkmm-library-auto.out \
    /tmp/lkmm-library-cold.out /tmp/lkmm-library-warm.out \
    /tmp/lkmm-store-cold.err /tmp/lkmm-store-warm.err /tmp/lkmm-serve.out

echo "== budgets: governed checking stays deterministic and bounded =="
# A starved check is a structured inconclusive verdict with a distinct
# exit code, not a hang or an abort.
printf 'C ci-sb\n{ x=0; y=0; }\nP0(int *x, int *y) { WRITE_ONCE(*x, 1); int r0; r0 = READ_ONCE(*y); }\nP1(int *x, int *y) { WRITE_ONCE(*y, 1); int r0; r0 = READ_ONCE(*x); }\nexists (0:r0=0 /\\ 1:r0=0)\n' \
    > /tmp/lkmm-ci-budget.litmus
set +e
"$BIN" --budget-candidates 1 /tmp/lkmm-ci-budget.litmus > /dev/null 2> /tmp/lkmm-ci-budget.err
BUDGET_STATUS=$?
set -e
test "$BUDGET_STATUS" -eq 6
grep -q 'inconclusive: candidate budget exhausted' /tmp/lkmm-ci-budget.err
# A generous budget changes nothing: library output stays byte-identical.
"$BIN" --library --budget-candidates 100000000 --budget-ms 3600000 \
    > /tmp/lkmm-library-budgeted.out
"$BIN" --library > /tmp/lkmm-library-plain.out
cmp /tmp/lkmm-library-plain.out /tmp/lkmm-library-budgeted.out
rm -f /tmp/lkmm-ci-budget.litmus /tmp/lkmm-ci-budget.err \
    /tmp/lkmm-library-budgeted.out /tmp/lkmm-library-plain.out

echo "== multi-model: one enumeration pass, byte-identical to per-model runs =="
printf 'C ci-multi\n{ x=0; y=0; }\nP0(int *x, int *y) { WRITE_ONCE(*x, 1); int r0; r0 = READ_ONCE(*y); }\nP1(int *x, int *y) { WRITE_ONCE(*y, 1); int r0; r0 = READ_ONCE(*x); }\nexists (0:r0=0 /\\ 1:r0=0)\n' \
    > /tmp/lkmm-ci-multi.litmus
ALL_MODELS="lkmm lkmm-cat sc tso armv8 power c11"
"$BIN" --models "$(echo "$ALL_MODELS" | tr ' ' ',')" /tmp/lkmm-ci-multi.litmus \
    > /tmp/lkmm-multi.out
for M in $ALL_MODELS; do
    "$BIN" --model "$M" /tmp/lkmm-ci-multi.litmus
done > /tmp/lkmm-multi-seq.out
cmp /tmp/lkmm-multi.out /tmp/lkmm-multi-seq.out
# The shared pass stays job-count invariant like everything else.
"$BIN" --models lkmm,sc,c11 --jobs 1 /tmp/lkmm-ci-multi.litmus > /tmp/lkmm-multi-j1.out
"$BIN" --models lkmm,sc,c11 --jobs 4 /tmp/lkmm-ci-multi.litmus > /tmp/lkmm-multi-j4.out
cmp /tmp/lkmm-multi-j1.out /tmp/lkmm-multi-j4.out
# An unknown model name is rejected at parse time: usage error, exit 2.
set +e
"$BIN" --models lkmm,bogus /tmp/lkmm-ci-multi.litmus > /dev/null 2> /tmp/lkmm-multi.err
MULTI_STATUS=$?
set -e
test "$MULTI_STATUS" -eq 2
grep -q 'unknown model `bogus`' /tmp/lkmm-multi.err
rm -f /tmp/lkmm-ci-multi.litmus /tmp/lkmm-multi.out /tmp/lkmm-multi-seq.out \
    /tmp/lkmm-multi-j1.out /tmp/lkmm-multi-j4.out /tmp/lkmm-multi.err

echo "== serve hardening: hostile input, request limits, bounded wall-clock =="
SERVE_CMD="$BIN serve --max-request-bytes 4096 --budget-ms 5000"
if command -v timeout > /dev/null 2>&1; then
    SERVE_CMD="timeout 60 $SERVE_CMD"
fi
{ printf '%s\n' 'not json' '{"op":"check","litmus":"C broken {"}'; \
  head -c 8192 /dev/zero | tr '\0' 'x'; printf '\n'; \
  printf '%s\n' '{"op":"check","name":"SB"}'; } \
    | $SERVE_CMD > /tmp/lkmm-serve-hostile.out 2> /dev/null
test "$(wc -l < /tmp/lkmm-serve-hostile.out)" -eq 4
test "$(grep -c '"ok":false' /tmp/lkmm-serve-hostile.out)" -eq 3
grep -q 'request line exceeds' /tmp/lkmm-serve-hostile.out
grep -q '"name":"SB".*"verdict":"Allow"' /tmp/lkmm-serve-hostile.out
rm -f /tmp/lkmm-serve-hostile.out

echo "== conformance: short campaign is clean, warm replay is byte-identical =="
CONF_STORE=/tmp/lkmm-ci-conf-store.bin
rm -f "$CONF_STORE"
"$BIN" conformance --max-cycle-len 4 --sim-iterations 50 --json --store "$CONF_STORE" \
    > /tmp/lkmm-conf-cold.json 2> /dev/null
"$BIN" conformance --max-cycle-len 4 --sim-iterations 50 --json --store "$CONF_STORE" \
    > /tmp/lkmm-conf-warm.json 2> /tmp/lkmm-conf-warm.err
# The report is a pure function of the config: cold and warm runs agree
# byte for byte, and every oracle held.
cmp /tmp/lkmm-conf-cold.json /tmp/lkmm-conf-warm.json
grep -q '"clean":true' /tmp/lkmm-conf-warm.json
grep -q '"discrepancies":\[\]' /tmp/lkmm-conf-warm.json
# The warm matrix passes are pure replay: zero candidate enumerations.
grep -q 'lkmm: .* 0 candidates enumerated' /tmp/lkmm-conf-warm.err
grep -q 'c11: .* 0 candidates enumerated' /tmp/lkmm-conf-warm.err
rm -f "$CONF_STORE" /tmp/lkmm-conf-cold.json /tmp/lkmm-conf-warm.json /tmp/lkmm-conf-warm.err

echo "== enumerator pruning: pruned and naive strategies emit identical witnesses =="
cargo test --release --test prune --quiet

echo "== conformance: contended corpus with enumeration counters opted in =="
# The contended twins (one location, colliding write values) are where
# the pruned enumerator diverges hardest from generate-then-judge; the
# campaign must stay clean across every model and oracle, and the
# opted-in counters must land on stderr, not in the JSON report.
"$BIN" conformance --max-cycle-len 4 --contended --sim-iterations 0 --no-shrink \
    --enum-stats --json > /tmp/lkmm-conf-ctd.json 2> /tmp/lkmm-conf-ctd.err
grep -q '"clean":true' /tmp/lkmm-conf-ctd.json
grep -q '"contended":true' /tmp/lkmm-conf-ctd.json
grep -q '"enumeration":' /tmp/lkmm-conf-ctd.json
grep -q 'enumeration: .* rf prefixes pruned' /tmp/lkmm-conf-ctd.err
rm -f /tmp/lkmm-conf-ctd.json /tmp/lkmm-conf-ctd.err

echo "== conformance: cycle-length-6 campaign completes cleanly =="
# The routine deep workload the pruned enumerator makes affordable:
# every diy cycle up to length 6 through all seven models and the
# oracle matrix, no sim, no shrinking.
"$BIN" conformance --max-cycle-len 6 --sim-iterations 0 --no-shrink --json \
    > /tmp/lkmm-conf-len6.json 2> /dev/null
grep -q '"clean":true' /tmp/lkmm-conf-len6.json
grep -q '"discrepancies":\[\]' /tmp/lkmm-conf-len6.json
rm -f /tmp/lkmm-conf-len6.json

echo "== conformance --algorithms: family campaign is clean, warm replay byte-identical =="
# The real-algorithm tier: every family at the default size through all
# seven axiomatic columns, family safety, the simulators, real host
# threads, and exhaustive interleaving. The JSON report is a pure
# function of the config (host runs contribute only their violation
# count, zero for a sound model), so cold and warm agree byte for byte.
ALGO_STORE=/tmp/lkmm-ci-algo-store.bin
rm -f "$ALGO_STORE"
"$BIN" conformance --algorithms --sim-iterations 50 --json --store "$ALGO_STORE" \
    > /tmp/lkmm-algo-cold.json 2> /dev/null
"$BIN" conformance --algorithms --sim-iterations 50 --json --store "$ALGO_STORE" \
    > /tmp/lkmm-algo-warm.json 2> /tmp/lkmm-algo-warm.err
cmp /tmp/lkmm-algo-cold.json /tmp/lkmm-algo-warm.json
grep -q '"op":"conformance-algorithms"' /tmp/lkmm-algo-warm.json
grep -q '"clean":true' /tmp/lkmm-algo-warm.json
grep -q '"discrepancies":\[\]' /tmp/lkmm-algo-warm.json
grep -q '"family":"ticket"' /tmp/lkmm-algo-warm.json
grep -q '"oracle":"interleave-agreement"' /tmp/lkmm-algo-warm.json
# The warm matrix passes are pure replay: zero candidate enumerations.
grep -q 'lkmm: .* 0 candidates enumerated' /tmp/lkmm-algo-warm.err
# Family names are validated at parse time: usage error, exit 2.
set +e
"$BIN" conformance --algorithms --families bogus > /dev/null 2> /tmp/lkmm-algo.err
ALGO_STATUS=$?
set -e
test "$ALGO_STATUS" -eq 2
grep -q 'unknown algorithm family `bogus`' /tmp/lkmm-algo.err
"$BIN" --list-algorithms | grep -q 'mutual exclusion'
rm -f "$ALGO_STORE" /tmp/lkmm-algo-cold.json /tmp/lkmm-algo-warm.json \
    /tmp/lkmm-algo-warm.err /tmp/lkmm-algo.err

echo "== fault injection: armed faults are contained, disarmed builds are clean =="
cargo test --features fault-injection --test fault_injection --quiet
cargo test --features fault-injection --test resume --quiet
cargo build --release --features fault-injection --bin herd-rs
printf 'C ci-fault\n{ x=0; }\nP0(int *x) { WRITE_ONCE(*x, 1); }\nexists (0:r0=0)\n' \
    > /tmp/lkmm-ci-fault.litmus
set +e
LKMM_FAULTPOINTS=enum.budget target/release/herd-rs /tmp/lkmm-ci-fault.litmus \
    > /dev/null 2> /tmp/lkmm-ci-fault.err
FAULT_STATUS=$?
set -e
test "$FAULT_STATUS" -eq 6
grep -q 'inconclusive' /tmp/lkmm-ci-fault.err
rm -f /tmp/lkmm-ci-fault.litmus /tmp/lkmm-ci-fault.err
# A misjudging cat checker is caught by the conformance oracles and
# shrunk to a minimal discriminating witness, exit code 7. Run with NO
# store: a store would cache the poisoned verdicts.
set +e
LKMM_FAULTPOINTS=cat.misjudge target/release/herd-rs conformance \
    --max-cycle-len 0 --sim-iterations 0 \
    > /tmp/lkmm-ci-misjudge.out 2> /dev/null
MISJUDGE_STATUS=$?
set -e
test "$MISJUDGE_STATUS" -eq 7
grep -q 'DISCREPANCIES' /tmp/lkmm-ci-misjudge.out
grep -q 'native-cat-agreement' /tmp/lkmm-ci-misjudge.out
grep -q 'minimal witness' /tmp/lkmm-ci-misjudge.out
rm -f /tmp/lkmm-ci-misjudge.out
# A weakened lock family — the safe ticket variant silently generated
# with relaxed orderings while still claiming Forbidden — is caught by
# the family-safety oracle and shrunk to a minimal wrong-verdict
# witness, exit code 7. Storeless for the same poisoned-verdict reason.
set +e
LKMM_FAULTPOINTS=algo.weaken target/release/herd-rs conformance --algorithms \
    --families ticket --sim-iterations 0 \
    > /tmp/lkmm-ci-weaken.out 2> /dev/null
WEAKEN_STATUS=$?
set -e
test "$WEAKEN_STATUS" -eq 7
grep -q 'DISCREPANCIES' /tmp/lkmm-ci-weaken.out
grep -q 'family-safety' /tmp/lkmm-ci-weaken.out
grep -q 'minimal witness' /tmp/lkmm-ci-weaken.out
rm -f /tmp/lkmm-ci-weaken.out
# Crash storm: kill the campaign at a unit boundary mid-run, resume from
# the checkpoint, and the final JSON must be byte-identical to an
# uninterrupted (storeless, checkpointless) reference run; the store the
# crashed process left behind must scrub clean.
CRASH_STORE=/tmp/lkmm-ci-crash-store.bin
CRASH_CKPT=/tmp/lkmm-ci-crash.ck
rm -f "$CRASH_STORE" "$CRASH_CKPT"
target/release/herd-rs conformance --max-cycle-len 4 --sim-iterations 0 --no-shrink --json \
    > /tmp/lkmm-ci-crash-ref.json 2> /dev/null
set +e
LKMM_FAULTPOINTS=campaign.kill=120 target/release/herd-rs conformance \
    --max-cycle-len 4 --sim-iterations 0 --no-shrink --json \
    --store "$CRASH_STORE" --checkpoint "$CRASH_CKPT" > /dev/null 2>&1
KILL_STATUS=$?
set -e
test "$KILL_STATUS" -ge 128   # died by signal (simulated SIGKILL), not a clean exit
target/release/herd-rs conformance --max-cycle-len 4 --sim-iterations 0 --no-shrink --json \
    --store "$CRASH_STORE" --checkpoint "$CRASH_CKPT" --resume \
    > /tmp/lkmm-ci-crash-resumed.json 2> /tmp/lkmm-ci-crash-resumed.err
cmp /tmp/lkmm-ci-crash-ref.json /tmp/lkmm-ci-crash-resumed.json
grep -q 'resumed from checkpoint at unit' /tmp/lkmm-ci-crash-resumed.err
target/release/herd-rs store scrub "$CRASH_STORE" | grep -q ': clean'
rm -f "$CRASH_STORE" "$CRASH_CKPT" /tmp/lkmm-ci-crash-ref.json \
    /tmp/lkmm-ci-crash-resumed.json /tmp/lkmm-ci-crash-resumed.err
# Graceful degradation: a unit that keeps faulting past the retry budget
# is quarantined, not fatal — the campaign completes with a typed
# failed_units entry, partial:true, and the distinct exit code 8.
set +e
LKMM_FAULTPOINTS=worker.transient=1:3 target/release/herd-rs conformance \
    --max-cycle-len 0 --sim-iterations 0 --no-shrink --json \
    > /tmp/lkmm-ci-degraded.json 2> /dev/null
DEGRADED_STATUS=$?
set -e
test "$DEGRADED_STATUS" -eq 8
grep -q '"partial":true' /tmp/lkmm-ci-degraded.json
grep -q '"kind":"transient-io"' /tmp/lkmm-ci-degraded.json
grep -q '"attempts":3' /tmp/lkmm-ci-degraded.json
rm -f /tmp/lkmm-ci-degraded.json
# Rebuild without the feature so later consumers get the fault-free binary.
cargo build --release --bin herd-rs

echo "== store maintenance: scrub/compact/export/merge round-trip =="
MAINT_A=/tmp/lkmm-ci-maint-a.bin
MAINT_B=/tmp/lkmm-ci-maint-b.bin
MAINT_M=/tmp/lkmm-ci-maint-merged.bin
rm -f "$MAINT_A" "$MAINT_B" "$MAINT_M"
"$BIN" --library --store "$MAINT_A" > /tmp/lkmm-maint-cold.out 2> /dev/null
"$BIN" store scrub "$MAINT_A" | grep -q ': clean'
"$BIN" store compact "$MAINT_A" | grep -q 'records'
# A compacted store still replays byte-identically, with zero enumerations.
"$BIN" --library --store "$MAINT_A" > /tmp/lkmm-maint-warm.out 2> /tmp/lkmm-maint-warm.err
cmp /tmp/lkmm-maint-cold.out /tmp/lkmm-maint-warm.out
grep -q ' 0 computed, .* 0 candidates enumerated' /tmp/lkmm-maint-warm.err
# Export copies without touching the source; merging the export into an
# empty store reproduces every verdict.
"$BIN" store export "$MAINT_A" "$MAINT_B" | grep -q 'records'
"$BIN" store merge "$MAINT_M" "$MAINT_B" | grep -q 'merged'
"$BIN" store scrub "$MAINT_M" | grep -q ': clean'
"$BIN" --library --store "$MAINT_M" > /tmp/lkmm-maint-merged.out 2> /tmp/lkmm-maint-merged.err
cmp /tmp/lkmm-maint-cold.out /tmp/lkmm-maint-merged.out
grep -q ' 0 computed, .* 0 candidates enumerated' /tmp/lkmm-maint-merged.err
rm -f "$MAINT_A" "$MAINT_B" "$MAINT_M" /tmp/lkmm-maint-cold.out /tmp/lkmm-maint-warm.out \
    /tmp/lkmm-maint-warm.err /tmp/lkmm-maint-merged.out /tmp/lkmm-maint-merged.err

echo "== verdict server: 4 concurrent clients over 4 shards match the sequential store =="
SRV_STORE=/tmp/lkmm-ci-srv-store.bin
SEQ_STORE=/tmp/lkmm-ci-srv-seq.bin
rm -f "$SRV_STORE" "$SRV_STORE".shard* "$SEQ_STORE" /tmp/lkmm-ci-srv-*.out
"$BIN" serve --listen 127.0.0.1:0 --shards 4 --store "$SRV_STORE" \
    2> /tmp/lkmm-srv.err &
SRV_PID=$!
# The server announces its bound port on stderr before serving.
PORT=""
for _ in $(seq 1 100); do
    PORT=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' /tmp/lkmm-srv.err)
    if [ -n "$PORT" ]; then break; fi
    sleep 0.1
done
test -n "$PORT"
# Four concurrent clients, each pushing the full library batch; the
# store dedupes shared keys, so the family must end up with exactly the
# sequential run's contents.
CLIENT_PIDS=""
for C in 1 2 3 4; do
    printf '%s\n' '{"op":"batch","library":true}' \
        | "$BIN" client --connect 127.0.0.1:"$PORT" > /tmp/lkmm-ci-srv-c$C.out &
    CLIENT_PIDS="$CLIENT_PIDS $!"
done
for P in $CLIENT_PIDS; do wait "$P"; done
for C in 1 2 3 4; do
    grep -q '"ok":true' /tmp/lkmm-ci-srv-c$C.out
done
# Satellite: the server holds the shard locks for its whole lifetime, so
# concurrent maintenance is refused with the distinct exit code 9 and a
# message naming the holder.
set +e
"$BIN" store compact "$SRV_STORE" > /dev/null 2> /tmp/lkmm-ci-srv-locked.err
LOCKED_STATUS=$?
set -e
test "$LOCKED_STATUS" -eq 9
grep -q "locked by pid $SRV_PID" /tmp/lkmm-ci-srv-locked.err
printf '%s\n' '{"op":"shutdown"}' | "$BIN" client --connect 127.0.0.1:"$PORT" > /dev/null
wait "$SRV_PID"
# Merged family export vs the sequential single-store pipeline: byte-identical.
"$BIN" --library --store "$SEQ_STORE" > /dev/null 2> /dev/null
"$BIN" store export "$SRV_STORE" /tmp/lkmm-ci-srv-family.exp | grep -q 'records'
"$BIN" store export "$SEQ_STORE" /tmp/lkmm-ci-srv-seq.exp | grep -q 'records'
cmp /tmp/lkmm-ci-srv-family.exp /tmp/lkmm-ci-srv-seq.exp
# Per-shard observability: stats names every member and totals the index.
"$BIN" store stats "$SRV_STORE" > /tmp/lkmm-ci-srv-stats.out
grep -q 'shard 0 of 4' /tmp/lkmm-ci-srv-stats.out
grep -q '4 shard(s),' /tmp/lkmm-ci-srv-stats.out
# Over-quota clients get typed rejections and the distinct exit code 10.
"$BIN" serve --listen 127.0.0.1:0 --quota-requests 1 2> /tmp/lkmm-srv-q.err &
SRVQ_PID=$!
QPORT=""
for _ in $(seq 1 100); do
    QPORT=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' /tmp/lkmm-srv-q.err)
    if [ -n "$QPORT" ]; then break; fi
    sleep 0.1
done
test -n "$QPORT"
set +e
printf '%s\n' '{"op":"check","name":"SB"}' '{"op":"check","name":"MP"}' \
    | "$BIN" client --connect 127.0.0.1:"$QPORT" > /tmp/lkmm-ci-srv-quota.out
QUOTA_STATUS=$?
set -e
test "$QUOTA_STATUS" -eq 10
grep -q '"code":"over-quota"' /tmp/lkmm-ci-srv-quota.out
printf '%s\n' '{"op":"shutdown"}' | "$BIN" client --connect 127.0.0.1:"$QPORT" > /dev/null
wait "$SRVQ_PID"
rm -f "$SRV_STORE" "$SRV_STORE".shard* "$SEQ_STORE" /tmp/lkmm-srv.err /tmp/lkmm-srv-q.err \
    /tmp/lkmm-ci-srv-c1.out /tmp/lkmm-ci-srv-c2.out /tmp/lkmm-ci-srv-c3.out \
    /tmp/lkmm-ci-srv-c4.out /tmp/lkmm-ci-srv-locked.err /tmp/lkmm-ci-srv-family.exp \
    /tmp/lkmm-ci-srv-seq.exp /tmp/lkmm-ci-srv-stats.out /tmp/lkmm-ci-srv-quota.out

echo "== budget-overhead bench: governed vs ungoverned =="
# Run from /tmp so a noisy CI box exercises the bench (and its
# identical-results assertions) without clobbering the recorded
# BENCH_BUDGET.json; regenerate that deliberately, from the repo root.
BENCH_DIR=$(mktemp -d /tmp/lkmm-bench-budget.XXXXXX)
REPO_ROOT=$(pwd)
cargo build --release -q -p lkmm-bench --bin budget
( cd "$BENCH_DIR" && "$REPO_ROOT/target/release/budget" --iters 10 )
rm -rf "$BENCH_DIR"

echo "== conformance bench: cold vs store-warm campaign throughput =="
# Same isolation dance as the budget bench: the run asserts clean
# campaigns and pure warm replay, the recorded BENCH_CONFORMANCE.json is
# regenerated deliberately from the repo root.
BENCH_DIR=$(mktemp -d /tmp/lkmm-bench-conformance.XXXXXX)
cargo build --release -q -p lkmm-bench --bin conformance
( cd "$BENCH_DIR" && "$REPO_ROOT/target/release/conformance" --iters 3 )
rm -rf "$BENCH_DIR"

echo "== multi-model bench: single enumeration vs sequential columns =="
# The run asserts cell-identical verdicts and the >=3x enumeration
# reduction; the recorded BENCH_MULTIMODEL.json is regenerated
# deliberately from the repo root.
BENCH_DIR=$(mktemp -d /tmp/lkmm-bench-multimodel.XXXXXX)
cargo build --release -q -p lkmm-bench --bin multimodel
( cd "$BENCH_DIR" && "$REPO_ROOT/target/release/multimodel" --iters 3 )
rm -rf "$BENCH_DIR"

echo "== pruning bench: consistency-driven vs generate-then-judge enumeration =="
# The run asserts identical emitted candidate counts between strategies
# over the full contended corpus and the >=5x candidate reduction at
# cycle length 4; the recorded BENCH_PRUNE.json (which sweeps to length
# 6) is regenerated deliberately from the repo root.
BENCH_DIR=$(mktemp -d /tmp/lkmm-bench-prune.XXXXXX)
cargo build --release -q -p lkmm-bench --bin prune
( cd "$BENCH_DIR" && "$REPO_ROOT/target/release/prune" --iters 1 --max-cycle-len 5 )
rm -rf "$BENCH_DIR"

echo "== algorithms bench: cold vs store-warm family campaign =="
# The run asserts clean campaigns, pure warm matrix replay, and
# cold/warm report identity over the algorithm families; the recorded
# BENCH_ALGOS.json is regenerated deliberately from the repo root.
BENCH_DIR=$(mktemp -d /tmp/lkmm-bench-algorithms.XXXXXX)
cargo build --release -q -p lkmm-bench --bin algorithms
( cd "$BENCH_DIR" && "$REPO_ROOT/target/release/algorithms" --iters 3 )
rm -rf "$BENCH_DIR"

echo "== resume bench: checkpoint restart vs cold campaign =="
# The run asserts the resumed report is byte-identical to the cold one
# and that resuming at ~90% completion costs at most 15% of a cold
# campaign; the recorded BENCH_RESUME.json is regenerated deliberately
# from the repo root.
BENCH_DIR=$(mktemp -d /tmp/lkmm-bench-resume.XXXXXX)
cargo build --release -q -p lkmm-bench --bin resume
( cd "$BENCH_DIR" && "$REPO_ROOT/target/release/resume" --iters 3 )
rm -rf "$BENCH_DIR"

echo "== serve bench: 4 concurrent clients, shard scaling, byte-identity =="
# The run asserts every server round's merged export byte-identical to
# the sequential store and that sharding never loses throughput; the
# recorded BENCH_SERVE.json is regenerated deliberately from the repo
# root (the scaling ceiling is host-dependent — see EXPERIMENTS.md).
BENCH_DIR=$(mktemp -d /tmp/lkmm-bench-serve.XXXXXX)
cargo build --release -q -p lkmm-bench --bin serve
( cd "$BENCH_DIR" && "$REPO_ROOT/target/release/serve" --iters 2 --tests 512 )
rm -rf "$BENCH_DIR"

echo "== pipeline perf smoke: parallel checking is never slower than sequential =="
# The sweep cross-checks verdicts across all configurations while
# timing, then enforces the speedup bar on every workload's pipeline-j2
# row. On a multi-core host two workers must beat sequential outright
# (bar 1.0); a single-hardware-thread host clamps every job count to
# the inline path, where parity is the theoretical ceiling, so the bar
# backs off to the measured noise floor. The recorded
# BENCH_PIPELINE.json is regenerated deliberately from the repo root.
BENCH_DIR=$(mktemp -d /tmp/lkmm-bench-sweep.XXXXXX)
cargo build --release -q -p lkmm-bench --bin sweep
if [ "$(nproc 2>/dev/null || echo 1)" -gt 1 ]; then SWEEP_BAR=1.0; else SWEEP_BAR=0.95; fi
( cd "$BENCH_DIR" && "$REPO_ROOT/target/release/sweep" --iters 7 --assert-bar "$SWEEP_BAR" )
rm -rf "$BENCH_DIR"

echo "== relation kernel bench: in-place kernels never slower than naive =="
# Asserts equal results and that the word-parallel in-place kernels are
# never slower than the naive per-element reference at every universe
# size; the recorded BENCH_RELATION.json is regenerated deliberately
# from the repo root.
BENCH_DIR=$(mktemp -d /tmp/lkmm-bench-relation.XXXXXX)
cargo build --release -q -p lkmm-bench --bin relation
( cd "$BENCH_DIR" && "$REPO_ROOT/target/release/relation" --reps 5 )
rm -rf "$BENCH_DIR"

echo "== ci.sh: all green =="
