#!/bin/sh
# Offline-safe CI: tier-1 build + tests, then the library cross-checks
# that guard the parallel pipeline. No network, no extra dependencies.
set -eu

echo "== tier-1: release build =="
cargo build --workspace --release

echo "== tier-1: test suite =="
cargo test --workspace --quiet

echo "== pipeline cross-check: library verdicts at jobs 1/2/8 =="
cargo test --release --test pipeline --quiet

echo "== herd-rs --library is job-count invariant =="
BIN=target/release/herd-rs
cargo build --release --bin herd-rs
"$BIN" --library --jobs 1 > /tmp/lkmm-library-j1.out
"$BIN" --library --jobs 4 > /tmp/lkmm-library-j4.out
"$BIN" --library           > /tmp/lkmm-library-auto.out
cmp /tmp/lkmm-library-j1.out /tmp/lkmm-library-j4.out
cmp /tmp/lkmm-library-j1.out /tmp/lkmm-library-auto.out

echo "== verdict store: cold/warm library round-trip is byte-identical =="
STORE=/tmp/lkmm-ci-store.bin
rm -f "$STORE"
"$BIN" --library --store "$STORE" > /tmp/lkmm-library-cold.out 2> /tmp/lkmm-store-cold.err
"$BIN" --library --store "$STORE" > /tmp/lkmm-library-warm.out 2> /tmp/lkmm-store-warm.err
# Store runs match each other AND the storeless output, byte for byte.
cmp /tmp/lkmm-library-cold.out /tmp/lkmm-library-warm.out
cmp /tmp/lkmm-library-j1.out /tmp/lkmm-library-cold.out
# The warm pass must be pure replay: zero candidate enumerations.
grep -q ' 0 computed, .* 0 candidates enumerated' /tmp/lkmm-store-warm.err

echo "== serve mode: JSON-lines smoke test over the warm store =="
printf '%s\n' \
    '{"op":"check","name":"SB"}' \
    '{"op":"check","name":"MP+wmb+rmb"}' \
    '{"op":"batch","library":true}' \
    '{"op":"stats"}' \
    '{"op":"flush"}' \
    | "$BIN" serve --store "$STORE" > /tmp/lkmm-serve.out 2> /dev/null
test "$(wc -l < /tmp/lkmm-serve.out)" -eq 5
grep -q '"name":"SB".*"verdict":"Allow".*"cache":"hit"' /tmp/lkmm-serve.out
grep -q '"name":"MP+wmb+rmb".*"verdict":"Forbid".*"cache":"hit"' /tmp/lkmm-serve.out
grep -q '"op":"batch".*"computed":0.*"candidates_enumerated":0' /tmp/lkmm-serve.out
grep -q '"op":"stats"' /tmp/lkmm-serve.out
if grep -q '"ok":false' /tmp/lkmm-serve.out; then
    echo "serve smoke test produced an error response" >&2
    exit 1
fi
rm -f "$STORE" /tmp/lkmm-library-j1.out /tmp/lkmm-library-j4.out /tmp/lkmm-library-auto.out \
    /tmp/lkmm-library-cold.out /tmp/lkmm-library-warm.out \
    /tmp/lkmm-store-cold.err /tmp/lkmm-store-warm.err /tmp/lkmm-serve.out

echo "== ci.sh: all green =="
